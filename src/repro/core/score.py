"""The generic score model and its feasibility properties (Section 3.3).

A score function usable by the S3k algorithm must expose:

1. **Relationship with path proximity** — the bounded social proximity
   ``prox≤n`` must be computable incrementally:
   ``prox≤n = prox≤n−1 + Uprox(prox≤n−1, ppSetn, n)``;
2. **Long-path attenuation** — a bound ``B>n → 0`` with
   ``prox − prox≤n ≤ B>n``;
3. **Score soundness** — the score is monotone and continuous in the
   proximity function;
4. **Score convergence** — a bound ``Bscore(q, B)`` on the score of any
   document all of whose connection sources have proximity ≤ ``B``, with
   ``Bscore → 0`` as ``B → 0``.

:class:`FeasibleScore` is the abstract interface; the paper's concrete
instantiation lives in :mod:`repro.core.concrete_score`.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence, Tuple


class FeasibleScore(abc.ABC):
    """Interface required by the S3k query answering algorithm.

    A connection tuple is ``(keyword_index, type, distance, prox)`` where
    ``distance = |pos(d, f)|`` and ``prox`` is the (possibly bounded)
    social proximity from the seeker to the connection source.
    """

    # -- ⊕path ----------------------------------------------------------
    @abc.abstractmethod
    def aggregate_paths(self, pairs: Iterable[Tuple[float, int]]) -> float:
        """``⊕path``: aggregate ``(path proximity, length)`` pairs."""

    @abc.abstractmethod
    def prox_increment(
        self, previous: float, path_proximities: Iterable[float], n: int
    ) -> float:
        """``Uprox``: the increment from the length-``n`` paths.

        Returns the value to *add* to ``prox≤n−1`` to obtain ``prox≤n``
        (feasibility property 1).
        """

    # -- attenuation ------------------------------------------------------
    @abc.abstractmethod
    def prox_tail_bound(self, n: int) -> float:
        """``B>n``: upper bound on ``prox − prox≤n`` (property 2)."""

    @abc.abstractmethod
    def unexplored_source_bound(self, n: int) -> float:
        """Upper bound on ``prox(u, src)`` for any connection source of a
        document in a component not yet discovered after iteration ``n``.

        Such a source is at social distance ≥ n from the seeker (it is in
        the unexplored component or one network edge away from it), hence
        its proximity is bounded by the mass of paths of length ≥ n.
        """

    # -- ⊕gen -------------------------------------------------------------
    @abc.abstractmethod
    def combine(
        self,
        keyword_count: int,
        tuples: Iterable[Tuple[int, object, int, float]],
    ) -> float:
        """``⊕gen``: aggregate connection tuples into a score.

        *keyword_count* is ``|φ|``; each tuple carries the index of its
        query keyword so the aggregator can group per keyword.
        """

    @abc.abstractmethod
    def score_bound(self, keyword_weight_bounds: Sequence[float], prox_bound: float) -> float:
        """``Bscore(q, B)``: bound on the score of a document whose every
        source has proximity ≤ *prox_bound* (property 4).

        *keyword_weight_bounds* holds, for each query keyword ``k``, an
        upper bound on ``Σ_{(t,f,src)∈con(d,k)} η^{|pos(d,f)|}`` over all
        documents ``d``.
        """

    # -- structural weighting ----------------------------------------------
    @abc.abstractmethod
    def structural_weight(self, distance: int) -> float:
        """Weight of a fragment at structural distance ``|pos(d, f)|``."""

    # -- precomputed schedules over the iteration count --------------------
    # The S3k loop evaluates ``B>n`` and ``Bscore(q, B>n)`` once per
    # iteration per query; under batched lock-step execution every active
    # query asks for the same ``n``.  The values depend only on ``n`` (and,
    # for the threshold, the per-keyword weight bounds), so they are grown
    # lazily into per-instance schedules and looked up in O(1).  Each entry
    # is produced by calling the exact same scalar hook the per-iteration
    # code used to call — bit-identity is by construction, not by hoping a
    # vectorized re-derivation rounds the same way.

    def tail_bound_at(self, n: int) -> float:
        """``B>n`` from a lazily grown schedule (same bits as
        :meth:`prox_tail_bound`)."""
        schedule = self.__dict__.get("_tail_bound_schedule")
        if schedule is None:
            schedule = self.__dict__["_tail_bound_schedule"] = []
        while len(schedule) <= n:
            schedule.append(self.prox_tail_bound(len(schedule)))
        return schedule[n]

    def threshold_at(self, keyword_weight_bounds: Sequence[float], n: int) -> float:
        """``Bscore(q, unexplored_source_bound(n))`` from a schedule keyed
        by the per-keyword weight bounds (same bits as calling
        :meth:`score_bound` with :meth:`unexplored_source_bound`)."""
        schedules = self.__dict__.get("_threshold_schedules")
        if schedules is None:
            schedules = self.__dict__["_threshold_schedules"] = {}
        key = tuple(keyword_weight_bounds)
        schedule = schedules.get(key)
        if schedule is None:
            schedule = schedules[key] = []
        while len(schedule) <= n:
            schedule.append(
                self.score_bound(key, self.unexplored_source_bound(len(schedule)))
            )
        return schedule[n]
