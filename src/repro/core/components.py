"""Connected-component index over documents and tags (Section 5.2).

*"Reachability by [S3:partOf, S3:commentsOn, S3:commentsOn̄, S3:hasSubject,
S3:hasSubject̄] edges defines a partition of the documents into connected
components. [...] a fragment matches the query keywords iff its component
matches it, leading to an efficient pruning procedure: we compute and store
the partitions, and test that each keyword (or extension thereof) is
present in every component."*

The index is built once per instance with a union-find over document nodes
and tags, and records for each component its member nodes, member tags,
document roots and the set of keywords present (node contents plus tag
keywords).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set

from ..rdf.terms import Term, URI, coerce_term
from .instance import S3Instance


class _UnionFind:
    """Path-halving union-find over URIs."""

    def __init__(self) -> None:
        self._parent: Dict[URI, URI] = {}

    def find(self, item: URI) -> URI:
        parent = self._parent
        if item not in parent:
            parent[item] = item
            return item
        root = item
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def union(self, a: URI, b: URI) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


class Component:
    """One connected component of documents and tags."""

    __slots__ = ("ident", "nodes", "tags", "roots", "keywords", "comment_edges")

    def __init__(self, ident: int):
        self.ident = ident
        #: document node URIs in the component
        self.nodes: Set[URI] = set()
        #: tag URIs in the component
        self.tags: Set[URI] = set()
        #: root document URIs (trees whose nodes belong here)
        self.roots: Set[URI] = set()
        #: keywords present in node contents or tag keywords
        self.keywords: Set[Term] = set()
        #: number of commentsOn edges internal to the component
        self.comment_edges: int = 0

    def matches(self, extensions: Iterable[Set[Term]]) -> bool:
        """True iff every keyword extension intersects this component.

        This is the pruning test: a document of the component can only have
        a non-zero (product) score if every query keyword — or a keyword of
        its extension — appears somewhere in the component.
        """
        return all(not self.keywords.isdisjoint(ext) for ext in extensions)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Component(#{self.ident}, nodes={len(self.nodes)}, "
            f"tags={len(self.tags)}, roots={len(self.roots)})"
        )


class ComponentIndex:
    """Partition of documents and tags, with keyword summaries."""

    def __init__(self, instance: S3Instance):
        self._instance = instance
        union = _UnionFind()

        # partOf: all nodes of a tree collapse onto their root.
        for root_uri, document in instance.documents.items():
            for node in document.nodes():
                union.union(root_uri, node.uri)
        # commentsOn: comment roots join the commented fragment.
        for target, comments in instance._comments_of.items():
            for comment in comments:
                union.union(target, comment)
        # hasSubject: tags join their subject (fragment or tag).
        for tag_uri, tag in instance.tags.items():
            union.union(tag.subject, tag_uri)

        members: Dict[URI, List[URI]] = defaultdict(list)
        for uri in list(instance.node_to_document) + list(instance.tags):
            members[union.find(uri)].append(uri)

        self._components: List[Component] = []
        self._component_of: Dict[URI, int] = {}
        for ident, (_, uris) in enumerate(sorted(members.items())):
            component = Component(ident)
            for uri in uris:
                self._component_of[uri] = ident
                if instance.is_tag(uri):
                    component.tags.add(uri)
                    keyword = instance.tags[uri].keyword
                    if keyword is not None:
                        component.keywords.add(coerce_term(keyword))
                else:
                    component.nodes.add(uri)
                    root = instance.node_to_document[uri]
                    component.roots.add(root)
                    node = instance.documents[root].node(uri)
                    component.keywords.update(
                        coerce_term(keyword) for keyword in node.keywords
                    )
            component.comment_edges = sum(
                len(instance.comments_on(node)) for node in component.nodes
            )
            self._components.append(component)

    # ------------------------------------------------------------------
    # Delta patching (incremental maintenance)
    #
    # Both patches are exact re-partitions for their delta shape: a tag
    # grafts under its subject's existing root and a same-component (or
    # non-member) comment edge never moves any member between groups, so
    # the union-find of a from-scratch rebuild would assign identical
    # roots, hence identical dense idents.  Any other shape (subject not
    # a member, cross-component comment) returns ``None`` — the caller
    # must rebuild the partition.
    # ------------------------------------------------------------------
    def apply_tag(self, tag) -> Optional[int]:
        """Graft a new tag into its subject's component; return the ident."""
        component = self.component_of(tag.subject)
        if component is None:
            return None
        component.tags.add(tag.uri)
        if tag.keyword is not None:
            component.keywords.add(coerce_term(tag.keyword))
        self._component_of[tag.uri] = component.ident
        return component.ident

    def apply_comment_edge(self, comment: URI, target: URI) -> Optional[int]:
        """Absorb a new comment edge; return the target's component ident."""
        component = self.component_of(target)
        if component is None:
            return None
        comment_ident = self._component_of.get(comment)
        if comment_ident is not None and comment_ident != component.ident:
            return None  # would merge two components: idents shift
        if target in component.nodes:
            component.comment_edges += 1
        return component.ident

    # ------------------------------------------------------------------
    def component_of(self, uri: URI) -> Optional[Component]:
        """The component containing the document node or tag *uri*."""
        ident = self._component_of.get(uri)
        if ident is None:
            return None
        return self._components[ident]

    def component(self, ident: int) -> Component:
        """The component with identifier *ident* (idents are dense)."""
        return self._components[ident]

    def components(self) -> List[Component]:
        """All components."""
        return list(self._components)

    def __len__(self) -> int:
        return len(self._components)
