"""Precomputed per-keyword connection evidence (the ConnectionIndex).

:class:`~repro.core.connections.ComponentConnections` evaluates the
``con(d, k)`` rules of Section 3.2 as a worklist fixpoint *at query time*,
once per (component, extended keyword set).  Under unique-query traffic
that fixpoint dominates the gather phase: every distinct ``(keywords,
semantic)`` pair pays it again even though nothing about it depends on the
seeker.  This module moves the whole computation offline.

**Soundness.**  The propagation rules never mix keywords: every rule's
premise tests membership of a *single* keyword in the extension (contains,
keyword tags) or non-emptiness of an existing connection set
(endorsements, tags-on-tags, comments), and every derivation tree
therefore bottoms out in base facts of exactly one atomic keyword.  Hence
for any extension ``Ext(k) = {a1, .., am}``::

    fixpoint(Ext(k))  ==  fixpoint({a1}) ∪ .. ∪ fixpoint({am})

so evidence precomputed per *atom* (each keyword occurring in a
component's contents or tags) is exact: the query-time ``con(d, k)`` is
the union of the per-atom slices of the atoms in ``Ext(k)``, with zero
fixpoint work.

**Offline build.**  Per component the build is vectorized over the atom
dimension instead of re-running one worklist per keyword:

* *phase 1* computes, for every document node / tag and every atom,
  whether its connection set is non-empty, as a sparse boolean fixpoint
  over scipy CSR adjacency matrices (contains, tag-keyword, tags-on-tags,
  endorsement-subject, tag-subject, ancestor-or-self and comment-membership
  incidence) — a handful of mat-mat products per round, like
  :class:`~repro.core.prox.ProximityIndex`;
* *phase 2* resolves the exact ``(type, src)`` pairs by propagating
  per-source boolean *atom masks* along the (gate-free, linear) source-flow
  edges, using phase 1's final activity for the endorsement gates — valid
  because the fixpoint is a least fixed point, so a rule gated on
  non-emptiness fires iff its gate holds in the final state.

Evidence is stored as flat CSR-style arrays — per (component, atom) a
slice of attachment nodes, per node a slice of interned ``(type, src)``
pairs — plus a per-(node, atom) *coverage* matrix (does the node's subtree
hold evidence?) from which candidate extraction becomes a vectorized
boolean AND/OR instead of a per-tree Python walk.
"""

from __future__ import annotations

import hashlib
import io
import json
import time
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np
from scipy import sparse

from ..rdf.namespaces import S3_COMMENTS_ON, S3_CONTAINS, S3_RELATED_TO
from ..rdf.terms import Literal, Term, URI, coerce_term
from .components import Component, ComponentIndex
from .connections import _SELF
from .instance import S3Instance

#: Interned connection types: evidence pairs store a code, not a URI.
_TYPES: Tuple[URI, ...] = (S3_CONTAINS, S3_RELATED_TO, S3_COMMENTS_ON)
_CONTAINS, _RELATED_TO, _COMMENTS_ON = 0, 1, 2


class StaleIndexError(RuntimeError):
    """A persisted index slab no longer matches the instance it is being
    adopted into.

    Raised on strict adoption (``Engine.from_store(...,
    stale_slabs="error")`` / ``SQLiteStore.load_connection_index(...,
    strict=True)``): the instance content changed after ``python -m
    repro index`` persisted the slabs, so the warm start the operator
    expects is gone.  Re-run ``python -m repro index`` against the
    current instance, or opt into lazy rebuilding with
    ``stale_slabs="rebuild"``.
    """


def _readonly_array(array: np.ndarray) -> np.ndarray:
    """A non-writeable view of *array* (zero-copy).

    Adopted slab arrays may be shm segments or mmap'd sidecar pages that
    every forked worker shares; freezing them on adoption turns an
    accidental in-place write into an immediate ``ValueError`` instead
    of silent cross-shard corruption.
    """
    if array.flags.writeable:
        array = array.view()
        array.flags.writeable = False
    return array


def _encode_term(term: Term) -> List[str]:
    return ["u" if isinstance(term, URI) else "l", str(term)]


def _decode_term(pair: List[str]) -> Term:
    kind, value = pair
    return URI(value) if kind == "u" else Literal(value)


def _component_fingerprint(instance: S3Instance, component: Component) -> str:
    """Digest of everything the evidence of *component* depends on.

    Covers the document structure (node parents), per-node keyword
    contents, tags (subject / author / keyword) and comment edges — a
    persisted slab is only adopted when this matches, so an index saved
    against different content can never be silently reused.
    """
    digest = hashlib.sha256()
    for uri in sorted(component.nodes):
        node = instance.documents[instance.node_to_document[uri]].node(uri)
        parent = node.parent.uri if node.parent is not None else ""
        digest.update(f"n|{uri}|{parent}".encode())
        for keyword in sorted(_encode_term(coerce_term(k)) for k in set(node.keywords)):
            digest.update(f"k|{keyword}".encode())
        for comment in sorted(instance.comments_on(uri)):
            digest.update(f"c|{uri}|{comment}".encode())
    for tag_uri in sorted(component.tags):
        tag = instance.tags[tag_uri]
        keyword = (
            "|".join(_encode_term(coerce_term(tag.keyword)))
            if tag.keyword is not None
            else ""
        )
        digest.update(f"t|{tag_uri}|{tag.subject}|{tag.author}|{keyword}".encode())
    return digest.hexdigest()


def _bool_csr(
    rows: List[int], cols: List[int], shape: Tuple[int, int]
) -> sparse.csr_matrix:
    """A 0/1 float CSR matrix (floats so that ``@`` counts, then clamps)."""
    matrix = sparse.csr_matrix(
        (np.ones(len(rows), dtype=np.float64), (rows, cols)),
        shape=shape,
        dtype=np.float64,
    )
    matrix.data[:] = 1.0
    return matrix


def _clamp(matrix: sparse.spmatrix) -> sparse.csr_matrix:
    """Clamp a counting matrix back to 0/1 membership."""
    matrix = matrix.tocsr()
    matrix.eliminate_zeros()
    matrix.data[:] = 1.0
    return matrix


def _row_mask(matrix: sparse.csr_matrix, row: int, width: int) -> np.ndarray:
    """Dense boolean mask of one CSR row."""
    mask = np.zeros(width, dtype=bool)
    mask[matrix.indices[matrix.indptr[row] : matrix.indptr[row + 1]]] = True
    return mask


def _merge_mask(bucket: Dict, key, mask: np.ndarray) -> bool:
    """OR *mask* into ``bucket[key]``; True when anything new appeared."""
    current = bucket.get(key)
    if current is None:
        if mask.any():
            bucket[key] = mask.copy()
            return True
        return False
    missing = mask & ~current
    if missing.any():
        current |= missing
        return True
    return False


class _ComponentSlab:
    """Flat per-component evidence arrays (one atom = one CSR slice).

    For atom ``a`` the attachment nodes live in
    ``ev_node[atom_ptr[a]:atom_ptr[a+1]]`` (local node ids, ascending) and
    entry ``e`` holds the interned pair ids ``ev_pair[ev_ptr[e]:ev_ptr[e+1]]``.
    ``coverage[n, a]`` is True when node ``n``'s subtree holds evidence for
    atom ``a``; ``candidate_order`` lists local node ids in the post-order-
    per-sorted-root emission order of
    :func:`~repro.core.connections.covering_candidates`.
    """

    __slots__ = (
        "ident",
        "version",
        "fingerprint",
        "atoms",
        "atom_of",
        "node_uris",
        "node_of",
        "pair_types",
        "pair_sources",
        "atom_ptr",
        "ev_node",
        "ev_ptr",
        "ev_pair",
        "coverage",
        "candidate_order",
        "tag_uris",
        "node_activity",
        "tag_activity",
    )

    def __init__(self) -> None:
        self.ident: int = -1
        self.version: int = -1
        self.fingerprint: str = ""
        self.atoms: List[Term] = []
        self.atom_of: Dict[Term, int] = {}
        self.node_uris: List[URI] = []
        self.node_of: Dict[URI, int] = {}
        self.pair_types: np.ndarray = np.empty(0, dtype=np.int8)
        self.pair_sources: List[URI] = []
        self.atom_ptr: np.ndarray = np.zeros(1, dtype=np.intp)
        self.ev_node: np.ndarray = np.empty(0, dtype=np.int32)
        self.ev_ptr: np.ndarray = np.zeros(1, dtype=np.intp)
        self.ev_pair: np.ndarray = np.empty(0, dtype=np.int32)
        self.coverage: np.ndarray = np.zeros((0, 0), dtype=bool)
        self.candidate_order: np.ndarray = np.empty(0, dtype=np.int32)
        # Warm-start state for delta patching (never persisted; slabs
        # adopted from a store carry none and rebuild cold when touched).
        self.tag_uris: List[URI] = []
        self.node_activity: Optional[sparse.csr_matrix] = None
        self.tag_activity: Optional[sparse.csr_matrix] = None

    # -- stats ----------------------------------------------------------
    @property
    def n_entries(self) -> int:
        return int(self.ev_node.size)

    @property
    def nbytes(self) -> int:
        arrays = (
            self.pair_types,
            self.atom_ptr,
            self.ev_node,
            self.ev_ptr,
            self.ev_pair,
            self.coverage,
            self.candidate_order,
        )
        strings = sum(len(str(u)) for u in self.node_uris)
        strings += sum(len(str(u)) for u in self.pair_sources)
        strings += sum(len(str(a)) for a in self.atoms)
        return int(sum(a.nbytes for a in arrays)) + strings

    # -- serialization / placement --------------------------------------
    #: numeric arrays that may be placed in shared memory or mmap'd files
    #: (the header strings are decoded per process — they are tiny).
    ARRAY_FIELDS = (
        "pair_types",
        "atom_ptr",
        "ev_node",
        "ev_ptr",
        "ev_pair",
        "coverage",
        "candidate_order",
    )

    def header(self) -> str:
        """The JSON header: identity, fingerprint and interned strings."""
        return json.dumps(
            {
                "ident": self.ident,
                "fingerprint": self.fingerprint,
                "atoms": [_encode_term(a) for a in self.atoms],
                "nodes": [str(u) for u in self.node_uris],
                "pair_sources": [str(u) for u in self.pair_sources],
            }
        )

    def arrays(self) -> Dict[str, np.ndarray]:
        """The numeric evidence arrays (immutable once built)."""
        return {name: getattr(self, name) for name in self.ARRAY_FIELDS}

    def to_payload(self) -> Tuple[str, bytes]:
        """``(header JSON, npz blob)`` — everything needed to reload."""
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **self.arrays())
        return self.header(), buffer.getvalue()

    @classmethod
    def from_arrays(
        cls, header: str, arrays: "Dict[str, np.ndarray]"
    ) -> "_ComponentSlab":
        """Rebuild a slab around externally placed arrays (zero-copy:
        the arrays are adopted as-is, e.g. read-only mmap views)."""
        meta = json.loads(header)
        slab = cls()
        slab.ident = int(meta["ident"])
        slab.fingerprint = meta.get("fingerprint", "")
        slab.atoms = [_decode_term(pair) for pair in meta["atoms"]]
        slab.atom_of = {atom: i for i, atom in enumerate(slab.atoms)}
        slab.node_uris = [URI(u) for u in meta["nodes"]]
        slab.node_of = {u: i for i, u in enumerate(slab.node_uris)}
        slab.pair_sources = [URI(u) for u in meta["pair_sources"]]
        for name in cls.ARRAY_FIELDS:
            setattr(slab, name, _readonly_array(arrays[name]))
        return slab

    @classmethod
    def from_payload(cls, header: str, blob: bytes) -> "_ComponentSlab":
        with np.load(io.BytesIO(blob)) as arrays:
            return cls.from_arrays(header, {k: arrays[k] for k in cls.ARRAY_FIELDS})


class ConnectionIndex:
    """Instance-level precomputed ``con(d, k)`` evidence, built per atom.

    Components build lazily on first touch (or eagerly via
    :meth:`ensure_all`); each slab records the instance version it was
    built against and rebuilds transparently after mutations.  Warm slabs
    can be persisted through
    :meth:`repro.storage.sqlite_store.SQLiteStore.save_connection_index`.
    """

    def __init__(
        self,
        instance: S3Instance,
        component_index: Optional[ComponentIndex] = None,
    ):
        if not instance.is_saturated:
            instance.saturate()
        self._instance = instance
        self.component_index = (
            component_index if component_index is not None else ComponentIndex(instance)
        )
        self._slabs: Dict[int, _ComponentSlab] = {}
        #: cumulative seconds spent building slabs (reported by the CLI)
        self.build_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Slab lifecycle
    # ------------------------------------------------------------------
    def ensure_all(self) -> "ConnectionIndex":
        """Eagerly build every component's slab (the CLI ``index`` path)."""
        for component in self.component_index.components():
            self.slab(component.ident)
        return self

    def invalidate(self) -> None:
        """Drop every built slab (they rebuild lazily on next use)."""
        self._slabs.clear()

    def slab(self, ident: int) -> _ComponentSlab:
        """The (fresh) slab of component *ident*, building if needed."""
        slab = self._slabs.get(ident)
        if slab is None or slab.version != self._instance.version:
            started = time.perf_counter()
            slab = self._build_slab(self.component_index.component(ident))
            self.build_seconds += time.perf_counter() - started
            self._slabs[ident] = slab
        return slab

    def apply_delta(self, touched: Iterable[int]) -> Dict[str, float]:
        """Re-align built slabs after component-local mutations.

        Contract: the caller (the kernel delta path) has already patched
        ``component_index`` in place and certified that only the
        components in *touched* gained base facts.  Touched slabs that
        were already built are rebuilt with a warm fixpoint seed — the
        previous slab's final boolean activity re-seeded alongside the
        new base facts, which converges to the same least fixpoint in a
        round or two and yields bit-identical arrays (the oracle sweep
        asserts this against from-scratch builds).  Every other slab is
        carried forward copy-on-patch: only its version stamp moves,
        its arrays — possibly adopted shm/mmap segments — are never
        written.
        """
        version = self._instance.version
        touched = set(touched)
        patched = 0
        started = time.perf_counter()
        for ident, slab in self._slabs.items():
            if ident not in touched:
                slab.version = version
        for ident in touched:
            old = self._slabs.pop(ident, None)
            if old is None:
                continue  # never built — leave it to the lazy path
            self._slabs[ident] = self._build_slab(
                self.component_index.component(ident), warm=old
            )
            patched += 1
        elapsed = time.perf_counter() - started
        self.build_seconds += elapsed
        return {"components_patched": patched, "patch_seconds": elapsed}

    # -- persistence hooks ---------------------------------------------
    def payloads(self) -> Iterator[Tuple[int, str, bytes]]:
        """Serialized built slabs, for the SQLite store."""
        for ident in sorted(self._slabs):
            header, blob = self._slabs[ident].to_payload()
            yield ident, header, blob

    def adopt_payload(self, header: str, blob: bytes, strict: bool = False) -> bool:
        """Load one persisted slab, verifying it matches this instance.

        A slab whose component shape (node set / atom set) or content
        fingerprint no longer matches is skipped (it will rebuild
        lazily) — or, with *strict*, rejected with a
        :class:`StaleIndexError` naming the mismatch, so a cold start
        that was supposed to be warm cannot pass silently.
        """
        return self._adopt(_ComponentSlab.from_payload(header, blob), strict)

    def adopt_arrays(
        self, header: str, arrays: Dict[str, np.ndarray], strict: bool = False
    ) -> bool:
        """Adopt one slab around externally placed arrays (shm / mmap
        views), under the same shape and fingerprint guards as
        :meth:`adopt_payload` — placement never weakens staleness
        detection."""
        return self._adopt(_ComponentSlab.from_arrays(header, arrays), strict)

    def export_slabs(self, store) -> int:
        """Place every built slab into a
        :class:`~repro.storage.slab_store.SlabStore` (one
        ``component_<ident>`` bundle each, header as meta); returns the
        number placed."""
        count = 0
        for ident in sorted(self._slabs):
            slab = self._slabs[ident]
            store.put(f"component_{ident}", slab.arrays(), meta=slab.header())
            count += 1
        return count

    def adopt_slab_store(self, store, strict: bool = False) -> int:
        """Adopt every ``component_*`` bundle of a slab store (the worker
        side of :meth:`export_slabs`); returns the number adopted."""
        count = 0
        for name in store.names():
            if not name.startswith("component_"):
                continue
            header = store.meta(name)
            if header is None:
                raise StaleIndexError(
                    f"slab bundle {name!r} has no header metadata; it cannot "
                    "be fingerprint-checked and will not be adopted"
                )
            if self.adopt_arrays(header, store.get(name), strict=strict):
                count += 1
        return count

    def _adopt(self, slab: _ComponentSlab, strict: bool) -> bool:
        mismatch: Optional[str] = None
        component: Optional[Component] = None
        if slab.ident >= len(self.component_index):
            mismatch = (
                f"component {slab.ident} does not exist in the current "
                f"partition ({len(self.component_index)} components)"
            )
        else:
            component = self.component_index.component(slab.ident)
            if slab.node_uris != sorted(component.nodes):
                mismatch = f"component {slab.ident}: node set changed"
            elif slab.atoms != sorted(component.keywords):
                mismatch = f"component {slab.ident}: keyword atom set changed"
            elif slab.fingerprint != _component_fingerprint(
                self._instance, component
            ):
                mismatch = (
                    f"component {slab.ident}: content fingerprint mismatch "
                    f"(instance version {self._instance.version})"
                )
        if mismatch is not None:
            if strict:
                raise StaleIndexError(
                    f"persisted ConnectionIndex slab is stale — {mismatch}. "
                    "The instance changed after the index was persisted; "
                    "re-run `python -m repro index`, or load with "
                    "stale_slabs='rebuild' to rebuild lazily."
                )
            return False
        slab.version = self._instance.version
        self._slabs[slab.ident] = slab
        return True

    def stats(self) -> Dict[str, float]:
        """Aggregate size / build-cost counters (CLI + bench reporting)."""
        return {
            "components_built": len(self._slabs),
            "components_total": len(self.component_index),
            "atoms": sum(len(s.atoms) for s in self._slabs.values()),
            "evidence_entries": sum(s.n_entries for s in self._slabs.values()),
            "size_bytes": sum(s.nbytes for s in self._slabs.values()),
            "build_seconds": self.build_seconds,
        }

    # ------------------------------------------------------------------
    # Query-time lookups (no fixpoint work)
    # ------------------------------------------------------------------
    def keyword_evidence(
        self, ident: int, extension: Iterable[Term]
    ) -> Dict[URI, Set[Tuple[URI, URI]]]:
        """``con`` evidence of one query keyword: union of its atom slices.

        Exactly equals ``ComponentConnections._fixpoint(extension)`` (the
        property tests assert this per atom and per union).
        """
        slab = self.slab(ident)
        atom_ids = sorted(
            {slab.atom_of[atom] for atom in extension if atom in slab.atom_of}
        )
        evidence: Dict[URI, Set[Tuple[URI, URI]]] = {}
        node_uris = slab.node_uris
        pair_types = slab.pair_types
        pair_sources = slab.pair_sources
        for atom_id in atom_ids:
            for entry in range(slab.atom_ptr[atom_id], slab.atom_ptr[atom_id + 1]):
                uri = node_uris[slab.ev_node[entry]]
                pairs = evidence.get(uri)
                if pairs is None:
                    pairs = evidence[uri] = set()
                for pair_id in slab.ev_pair[
                    slab.ev_ptr[entry] : slab.ev_ptr[entry + 1]
                ]:
                    pairs.add((_TYPES[pair_types[pair_id]], pair_sources[pair_id]))
        return evidence

    def candidate_documents(
        self, ident: int, extensions: Dict[Term, Set[Term]]
    ) -> List[URI]:
        """Candidates with evidence for every keyword — one boolean gather.

        Per keyword the covered-node mask is an OR over its atoms' coverage
        columns; the candidate set is the AND across keywords, emitted in
        the shared post-order-per-sorted-root order.
        """
        slab = self.slab(ident)
        mask: Optional[np.ndarray] = None
        for extension in extensions.values():
            atom_ids = sorted(
                {slab.atom_of[atom] for atom in extension if atom in slab.atom_of}
            )
            if not atom_ids:
                return []
            covered = slab.coverage[:, atom_ids].any(axis=1)
            mask = covered if mask is None else (mask & covered)
            if not mask.any():
                return []
        if mask is None:
            return []
        order = slab.candidate_order
        selected = order[mask[order]]
        node_uris = slab.node_uris
        return [node_uris[i] for i in selected.tolist()]

    # ------------------------------------------------------------------
    # Offline build
    # ------------------------------------------------------------------
    @staticmethod
    def _warm_activity_seed(
        warm: _ComponentSlab,
        slab: "_ComponentSlab",
        tag_of: Dict[URI, int],
        n_nodes: int,
        n_tags: int,
        n_atoms: int,
    ) -> Optional[Tuple[sparse.csr_matrix, sparse.csr_matrix]]:
        """The previous final activity remapped into the new slab's axes.

        Valid only when the old node set is unchanged and the old atom /
        tag sets embed in the new ones (exactly the shape of a patchable
        tag or comment-edge delta); anything else means no seed — the
        fixpoint simply starts cold, which is always sound.
        """
        if warm.node_activity is None or warm.tag_activity is None:
            return None
        if warm.node_uris != slab.node_uris:
            return None
        if any(atom not in slab.atom_of for atom in warm.atoms):
            return None
        if any(uri not in tag_of for uri in warm.tag_uris):
            return None
        atom_map = np.asarray(
            [slab.atom_of[atom] for atom in warm.atoms], dtype=np.intp
        )
        tag_map = np.asarray([tag_of[uri] for uri in warm.tag_uris], dtype=np.intp)

        def remap(
            matrix: sparse.csr_matrix,
            row_map: Optional[np.ndarray],
            shape: Tuple[int, int],
        ) -> sparse.csr_matrix:
            coo = matrix.tocoo()
            rows = coo.row if row_map is None else row_map[coo.row]
            cols = atom_map[coo.col]
            return _bool_csr(rows, cols, shape)

        node_seed = remap(warm.node_activity, None, (n_nodes, n_atoms))
        tag_seed = remap(warm.tag_activity, tag_map, (n_tags, n_atoms))
        return node_seed, tag_seed

    def _build_slab(
        self, component: Component, warm: Optional[_ComponentSlab] = None
    ) -> _ComponentSlab:
        instance = self._instance
        slab = _ComponentSlab()
        slab.ident = component.ident
        slab.version = instance.version
        slab.fingerprint = _component_fingerprint(instance, component)
        slab.node_uris = sorted(component.nodes)
        slab.node_of = {uri: i for i, uri in enumerate(slab.node_uris)}
        slab.atoms = sorted(component.keywords)
        slab.atom_of = {atom: i for i, atom in enumerate(slab.atoms)}
        tag_uris = sorted(component.tags)
        tag_of = {uri: j for j, uri in enumerate(tag_uris)}
        n_nodes, n_tags, n_atoms = len(slab.node_uris), len(tag_uris), len(slab.atoms)
        node_of, atom_of = slab.node_of, slab.atom_of

        # -- incidence matrices (all 0/1 CSR) ---------------------------
        c_rows: List[int] = []  # node contains atom
        c_cols: List[int] = []
        a_rows: List[int] = []  # ancestor-or-self
        a_cols: List[int] = []
        order: List[int] = []  # post-order per sorted root
        for root in sorted(component.roots):
            document = instance.documents[root]
            for node in document.nodes():
                node_id = node_of[node.uri]
                for keyword in set(node.keywords):
                    c_rows.append(node_id)
                    c_cols.append(atom_of[coerce_term(keyword)])
                current = node
                while current is not None:
                    a_rows.append(node_of[current.uri])
                    a_cols.append(node_id)
                    current = current.parent
            stack = [(document.root, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node_of[node.uri])
                    continue
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))
        slab.candidate_order = np.asarray(order, dtype=np.int32)

        tk_rows: List[int] = []  # tag has keyword atom
        tk_cols: List[int] = []
        ftt_rows: List[int] = []  # tag <- tag-on-it source flow
        ftt_cols: List[int] = []
        end_nd_rows: List[int] = []  # keyword-less tag gated on node subtree
        end_nd_cols: List[int] = []
        end_tg_rows: List[int] = []  # keyword-less tag gated on subject tag
        end_tg_cols: List[int] = []
        dep_rows: List[int] = []  # node <- tag relatedTo deposit
        dep_cols: List[int] = []
        tag_feeders: List[List[int]] = [[] for _ in range(n_tags)]
        tag_deposits: List[Tuple[int, int]] = []
        for j, tag_uri in enumerate(tag_uris):
            tag = instance.tags[tag_uri]
            if tag.keyword is not None:
                tk_rows.append(j)
                tk_cols.append(atom_of[coerce_term(tag.keyword)])
            subject_node = node_of.get(tag.subject)
            subject_tag = tag_of.get(tag.subject)
            if tag.keyword is None:
                if subject_node is not None:
                    end_nd_rows.append(j)
                    end_nd_cols.append(subject_node)
                elif subject_tag is not None:
                    end_tg_rows.append(j)
                    end_tg_cols.append(subject_tag)
            if subject_tag is not None:
                ftt_rows.append(subject_tag)
                ftt_cols.append(j)
                tag_feeders[subject_tag].append(j)
            if subject_node is not None:
                dep_rows.append(subject_node)
                dep_cols.append(j)
                tag_deposits.append((subject_node, j))

        cm_rows: List[int] = []  # commented node <- comment-doc member
        cm_cols: List[int] = []
        comment_flows: List[Tuple[int, URI, List[int]]] = []
        for uri in slab.node_uris:
            comments = instance.comments_on(uri)
            if not comments:
                continue
            node_id = node_of[uri]
            for comment in comments:
                if comment not in instance.documents:
                    continue
                members = [
                    node_of[n.uri]
                    for n in instance.documents[comment].nodes()
                    if n.uri in node_of
                ]
                comment_flows.append((node_id, comment, members))
                for member in members:
                    cm_rows.append(node_id)
                    cm_cols.append(member)

        contains = _bool_csr(c_rows, c_cols, (n_nodes, n_atoms))
        ancestors = _bool_csr(a_rows, a_cols, (n_nodes, n_nodes))
        tag_kw = _bool_csr(tk_rows, tk_cols, (n_tags, n_atoms))
        flow_tt = _bool_csr(ftt_rows, ftt_cols, (n_tags, n_tags))
        endorse_nd = _bool_csr(end_nd_rows, end_nd_cols, (n_tags, n_nodes))
        endorse_tg = _bool_csr(end_tg_rows, end_tg_cols, (n_tags, n_tags))
        deposits = _bool_csr(dep_rows, dep_cols, (n_nodes, n_tags))
        comment_members = _bool_csr(cm_rows, cm_cols, (n_nodes, n_nodes))

        # -- phase 1: non-emptiness fixpoint, vectorized over atoms -----
        # A warm seed unions the previous slab's final activity with the
        # new base facts.  The rules are monotone and the seed is bounded
        # by the new least fixpoint, so the loop converges to exactly the
        # same activity sets (hence bit-identical canonical CSR) as a
        # cold start — just in fewer rounds.
        node_any = contains.copy()
        tag_any = tag_kw.copy()
        if warm is not None:
            seed = self._warm_activity_seed(
                warm, slab, tag_of, n_nodes, n_tags, n_atoms
            )
            if seed is not None:
                node_any = _clamp(node_any + seed[0])
                tag_any = _clamp(tag_any + seed[1])
        while True:
            subtree_any = _clamp(ancestors @ node_any)
            tag_next = _clamp(
                tag_kw
                + endorse_nd @ subtree_any
                + endorse_tg @ tag_any
                + flow_tt @ tag_any
            )
            node_next = _clamp(
                contains + deposits @ tag_next + comment_members @ node_any
            )
            if tag_next.nnz == tag_any.nnz and node_next.nnz == node_any.nnz:
                break
            tag_any, node_any = tag_next, node_next
        subtree_any = _clamp(ancestors @ node_any)
        slab.tag_uris = tag_uris
        slab.node_activity = node_any
        slab.tag_activity = tag_any

        # -- phase 2: exact (type, src) pairs with per-atom masks --------
        # Endorsement gates are now static (final activity), so the source
        # flow is purely linear: author injections at tags, _SELF at
        # contains nodes, then tags-on-tags / subject / comment edges.
        tag_inject: List[Optional[Tuple[URI, np.ndarray]]] = [None] * n_tags
        for j, tag_uri in enumerate(tag_uris):
            tag = instance.tags[tag_uri]
            if tag.keyword is not None:
                mask = _row_mask(tag_kw, j, n_atoms)
            else:
                subject_node = node_of.get(tag.subject)
                subject_tag = tag_of.get(tag.subject)
                if subject_node is not None:
                    mask = _row_mask(subtree_any, subject_node, n_atoms)
                elif subject_tag is not None:
                    mask = _row_mask(tag_any, subject_tag, n_atoms)
                else:
                    mask = np.zeros(n_atoms, dtype=bool)
            if mask.any():
                tag_inject[j] = (tag.author, mask)

        tag_src: List[Dict[URI, np.ndarray]] = [dict() for _ in range(n_tags)]
        node_pairs: List[Dict[Tuple[int, URI], np.ndarray]] = [
            dict() for _ in range(n_nodes)
        ]
        for i in range(n_nodes):
            mask = _row_mask(contains, i, n_atoms)
            if mask.any():
                node_pairs[i][(_CONTAINS, _SELF)] = mask

        changed = True
        while changed:
            changed = False
            for j in range(n_tags):
                bucket = tag_src[j]
                inject = tag_inject[j]
                if inject is not None and _merge_mask(bucket, inject[0], inject[1]):
                    changed = True
                for feeder in tag_feeders[j]:
                    for src, mask in list(tag_src[feeder].items()):
                        if _merge_mask(bucket, src, mask):
                            changed = True
            for node_id, j in tag_deposits:
                bucket = node_pairs[node_id]
                for src, mask in list(tag_src[j].items()):
                    if _merge_mask(bucket, (_RELATED_TO, src), mask):
                        changed = True
            for node_id, comment_root, members in comment_flows:
                bucket = node_pairs[node_id]
                for member in members:
                    for (_tcode, src), mask in list(node_pairs[member].items()):
                        resolved = comment_root if src == _SELF else src
                        if _merge_mask(bucket, (_COMMENTS_ON, resolved), mask):
                            changed = True

        # -- assemble flat CSR arrays -----------------------------------
        pair_of: Dict[Tuple[int, URI], int] = {}
        pair_types: List[int] = []
        pair_sources: List[URI] = []
        per_atom: List[List[Tuple[int, int]]] = [[] for _ in range(n_atoms)]
        has_evidence = np.zeros((n_nodes, n_atoms), dtype=bool)
        for i in range(n_nodes):
            for key, mask in sorted(node_pairs[i].items()):
                pair_id = pair_of.get(key)
                if pair_id is None:
                    pair_id = pair_of[key] = len(pair_types)
                    pair_types.append(key[0])
                    pair_sources.append(key[1])
                has_evidence[i] |= mask
                for atom_id in np.flatnonzero(mask).tolist():
                    per_atom[atom_id].append((i, pair_id))
        slab.pair_types = np.asarray(pair_types, dtype=np.int8)
        slab.pair_sources = pair_sources

        ev_node: List[int] = []
        ev_ptr: List[int] = [0]
        ev_pair: List[int] = []
        atom_ptr: List[int] = [0]
        for atom_id in range(n_atoms):
            entries = sorted(per_atom[atom_id])
            position = 0
            while position < len(entries):
                node_id = entries[position][0]
                ev_node.append(node_id)
                while position < len(entries) and entries[position][0] == node_id:
                    ev_pair.append(entries[position][1])
                    position += 1
                ev_ptr.append(len(ev_pair))
            atom_ptr.append(len(ev_node))
        slab.atom_ptr = np.asarray(atom_ptr, dtype=np.intp)
        slab.ev_node = np.asarray(ev_node, dtype=np.int32)
        slab.ev_ptr = np.asarray(ev_ptr, dtype=np.intp)
        slab.ev_pair = np.asarray(ev_pair, dtype=np.int32)

        # Coverage: a node covers an atom when its subtree holds evidence.
        if n_nodes:
            slab.coverage = (
                ancestors @ has_evidence.astype(np.float64)
            ) > 0.0
        else:
            slab.coverage = np.zeros((0, n_atoms), dtype=bool)
        return slab

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        stats = self.stats()
        return (
            f"ConnectionIndex(components={stats['components_built']}/"
            f"{stats['components_total']}, entries={stats['evidence_entries']})"
        )
