"""The S3 instance ``I``: one weighted RDF graph integrating everything.

Assembles users, documents, tags, user actions and a knowledge base into a
single weighted RDF graph, deriving all the triples prescribed by
Sections 2.2-2.4:

* ``u type S3:user`` for every user;
* ``u1 S3:social u2 w`` for social relationships (sub-properties are also
  recorded, with ``rel ≺sp S3:social``);
* for every document node: ``n type S3:doc``, ``n S3:partOf parent``,
  ``n S3:contains k`` and ``n S3:nodeName name``;
* ``d S3:postedBy u`` / ``c S3:commentsOn f`` for user actions (again with
  application sub-properties), plus the materialized inverse edges of
  Section 2.4;
* tag triples ``a type S3:relatedTo``, ``a S3:hasSubject s``,
  ``a S3:hasAuthor u`` and optionally ``a S3:hasKeyword k``.

The instance also maintains the side indexes the search algorithm needs:
document trees, node→document mapping, the tag registry and the set Ω.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..documents.document import Document
from ..rdf.graph import RDFGraph
from ..rdf.namespaces import (
    NETWORK_EDGE_PROPERTIES,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
    S3_COMMENTS_ON,
    S3_CONTAINS,
    S3_DOC,
    S3_HAS_AUTHOR,
    S3_HAS_KEYWORD,
    S3_HAS_SUBJECT,
    S3_NODE_NAME,
    S3_PART_OF,
    S3_POSTED_BY,
    S3_RELATED_TO,
    S3_SOCIAL,
    S3_USER,
    inverse_property,
)
from ..rdf.saturation import saturate
from ..rdf.terms import Literal, Term, URI, coerce_term
from ..rdf.triples import Triple
from ..social.tags import Tag

#: Bounded length of the per-instance mutation delta log.  When more
#: mutations than this accumulate between kernel alignments the chain
#: breaks and :meth:`S3Instance.deltas_since` reports the gap (``None``),
#: which consumers treat as "fall back to a full rebuild".
DELTA_LOG_LIMIT = 1024


@dataclass(frozen=True)
class MutationDelta:
    """One recorded mutation spanning ``(base_version, version]``.

    Every public mutator appends exactly one delta covering the version
    range it advanced, so a contiguous chain of deltas is a complete
    replay of the instance history between two versions.  Nested mutator
    calls (``add_social_edge`` → ``add_user``) each record their own
    span, keeping the chain gap-free.
    """

    base_version: int
    version: int


@dataclass(frozen=True)
class TagDelta(MutationDelta):
    """A new tag (Section 2.4) — incrementally propagatable."""

    tag: Tag = None  # type: ignore[assignment]
    new_triples: Tuple[Triple, ...] = ()


@dataclass(frozen=True)
class CommentEdgeDelta(MutationDelta):
    """A new ``S3:commentsOn`` edge — incrementally propagatable."""

    comment: URI = None  # type: ignore[assignment]
    target: URI = None  # type: ignore[assignment]
    relation: Optional[URI] = None
    new_triples: Tuple[Triple, ...] = ()


@dataclass(frozen=True)
class OpaqueDelta(MutationDelta):
    """A mutation with no incremental propagation rule (full rebuild)."""

    operation: str = ""


class S3Instance:
    """A weighted RDF graph ``I`` with S3 side indexes.

    Use the ``add_*`` methods to populate the instance, then call
    :meth:`saturate` once before querying (the paper assumes all graphs are
    saturated).
    """

    def __init__(self) -> None:
        self.graph = RDFGraph()
        self.users: Set[URI] = set()
        self.documents: Dict[URI, Document] = {}
        self.node_to_document: Dict[URI, URI] = {}
        self.tags: Dict[URI, Tag] = {}
        self._comments_of: Dict[URI, List[URI]] = {}
        self._comment_targets: Dict[URI, List[URI]] = {}
        self._tags_on: Dict[URI, List[URI]] = {}
        self._saturated = False
        self._version = 0
        self._deltas: Deque[MutationDelta] = deque(maxlen=DELTA_LOG_LIMIT)
        self._add_s3_schema()

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def _add_s3_schema(self) -> None:
        """The built-in constraints of Section 2.3."""
        self.graph.add(S3_PART_OF, RDFS_DOMAIN, S3_DOC)
        self.graph.add(S3_PART_OF, RDFS_RANGE, S3_DOC)
        self.graph.add(S3_CONTAINS, RDFS_DOMAIN, S3_DOC)
        self.graph.add(S3_NODE_NAME, RDFS_DOMAIN, S3_DOC)

    # ------------------------------------------------------------------
    # Users and social edges (Section 2.2)
    # ------------------------------------------------------------------
    def add_user(self, user: object) -> URI:
        """Register a user in Ω and type it ``S3:user``."""
        base = self._version
        uri = URI(user)
        self.users.add(uri)
        self.graph.add(uri, RDF_TYPE, S3_USER)
        self._invalidate()
        self._record(OpaqueDelta(base, self._version, operation="add_user"))
        return uri

    def add_social_edge(
        self,
        source: object,
        target: object,
        weight: float = 1.0,
        relation: Optional[object] = None,
    ) -> None:
        """Add a social relationship from *source* to *target*.

        When *relation* is given it is declared as ``relation ≺sp
        S3:social`` and asserted with the edge weight; the generalization to
        ``S3:social`` is materialized with the same weight (for weight-1
        edges this is exactly what saturation would derive; for weighted
        edges the paper restricts inference, so we materialize the
        generalization explicitly to keep a single network-edge view).
        """
        src = self.add_user(source)
        tgt = self.add_user(target)
        base = self._version
        if relation is not None:
            rel = URI(relation)
            self.graph.add(rel, RDFS_SUBPROPERTY, S3_SOCIAL)
            self.graph.add(src, rel, tgt, weight)
        self.graph.add(src, S3_SOCIAL, tgt, weight)
        self._invalidate()
        self._record(OpaqueDelta(base, self._version, operation="add_social_edge"))

    # ------------------------------------------------------------------
    # Documents (Section 2.3)
    # ------------------------------------------------------------------
    def add_document(
        self, document: Document, posted_by: Optional[object] = None
    ) -> None:
        """Add a document tree, deriving all document triples.

        Every node becomes an ``S3:doc``; `partOf` edges follow the tree;
        `contains` edges carry the node's keyword content; `nodeName`
        records the node name.  With *posted_by*, the root is connected to
        its author through ``S3:postedBy`` and the inverse edge.
        """
        root_uri = document.uri
        if root_uri in self.documents:
            raise ValueError(f"document already in instance: {root_uri}")
        self.documents[root_uri] = document
        for node in document.nodes():
            self.node_to_document[node.uri] = root_uri
            self.graph.add(node.uri, RDF_TYPE, S3_DOC)
            self.graph.add(node.uri, S3_NODE_NAME, Literal(node.name))
            if node.parent is not None:
                self.graph.add(node.uri, S3_PART_OF, node.parent.uri)
            for keyword in node.keywords:
                self.graph.add(node.uri, S3_CONTAINS, coerce_term(keyword))
        if posted_by is not None:
            self.set_poster(root_uri, posted_by)
        base = self._version
        self._invalidate()
        self._record(OpaqueDelta(base, self._version, operation="add_document"))

    def set_poster(
        self, doc: object, user: object, relation: Optional[object] = None
    ) -> None:
        """Record that *user* posted *doc* (``S3:postedBy`` + inverse)."""
        doc_uri = URI(doc)
        user_uri = self.add_user(user)
        base = self._version
        if relation is not None:
            rel = URI(relation)
            self.graph.add(rel, RDFS_SUBPROPERTY, S3_POSTED_BY)
            self.graph.add(doc_uri, rel, user_uri)
        self.graph.add(doc_uri, S3_POSTED_BY, user_uri)
        self.graph.add(user_uri, inverse_property(S3_POSTED_BY), doc_uri)
        self._invalidate()
        self._record(OpaqueDelta(base, self._version, operation="set_poster"))

    def add_comment_edge(
        self, comment: object, target: object, relation: Optional[object] = None
    ) -> None:
        """Record that document *comment* comments on fragment *target*.

        Any concrete relation (reply, retweet-with-comment, new version...)
        specializes ``S3:commentsOn``.
        """
        comment_uri = URI(comment)
        target_uri = URI(target)
        base = self._version
        new_triples: List[Triple] = []

        def add(s: URI, p: URI, o: Term) -> None:
            if self.graph.add(s, p, o):
                new_triples.append(Triple(s, p, o))

        rel_uri: Optional[URI] = None
        if relation is not None:
            rel_uri = URI(relation)
            add(rel_uri, RDFS_SUBPROPERTY, S3_COMMENTS_ON)
            add(comment_uri, rel_uri, target_uri)
        add(comment_uri, S3_COMMENTS_ON, target_uri)
        add(target_uri, inverse_property(S3_COMMENTS_ON), comment_uri)
        self._comments_of.setdefault(target_uri, []).append(comment_uri)
        self._comment_targets.setdefault(comment_uri, []).append(target_uri)
        self._invalidate()
        self._record(
            CommentEdgeDelta(
                base,
                self._version,
                comment=comment_uri,
                target=target_uri,
                relation=rel_uri,
                new_triples=tuple(new_triples),
            )
        )

    # ------------------------------------------------------------------
    # Tags (Section 2.4)
    # ------------------------------------------------------------------
    def add_tag(self, tag: Tag) -> None:
        """Add a tag resource with all its triples (and inverse edges)."""
        if tag.uri in self.tags:
            raise ValueError(f"tag already in instance: {tag.uri}")
        base = self._version
        new_triples: List[Triple] = []

        def add(s: URI, p: URI, o: Term) -> None:
            if self.graph.add(s, p, o):
                new_triples.append(Triple(s, p, o))

        self.tags[tag.uri] = tag
        add(tag.uri, RDF_TYPE, S3_RELATED_TO)
        if tag.tag_type is not None:
            add(tag.tag_type, RDFS_SUBCLASS, S3_RELATED_TO)
            add(tag.uri, RDF_TYPE, tag.tag_type)
        add(tag.uri, S3_HAS_SUBJECT, tag.subject)
        add(tag.subject, inverse_property(S3_HAS_SUBJECT), tag.uri)
        add(tag.uri, S3_HAS_AUTHOR, tag.author)
        add(tag.author, inverse_property(S3_HAS_AUTHOR), tag.uri)
        self.users.add(tag.author)
        add(tag.author, RDF_TYPE, S3_USER)
        if tag.keyword is not None:
            add(tag.uri, S3_HAS_KEYWORD, coerce_term(tag.keyword))
        self._tags_on.setdefault(tag.subject, []).append(tag.uri)
        self._invalidate()
        self._record(
            TagDelta(base, self._version, tag=tag, new_triples=tuple(new_triples))
        )

    # ------------------------------------------------------------------
    # Knowledge base (Section 2.1)
    # ------------------------------------------------------------------
    def add_knowledge(self, triples: Iterable[Tuple[object, object, object]]) -> None:
        """Bulk-add weight-1 RDF triples (ontology / facts)."""
        base = self._version
        for s, p, o in triples:
            self.graph.add(URI(s), URI(p), coerce_term(o))
        self._invalidate()
        self._record(OpaqueDelta(base, self._version, operation="add_knowledge"))

    # ------------------------------------------------------------------
    # Saturation
    # ------------------------------------------------------------------
    def saturate(self) -> int:
        """Saturate the instance graph; return the number of added triples."""
        base = self._version
        added = saturate(self.graph)
        self._saturated = True
        if added:
            self._version += 1
            self._record(OpaqueDelta(base, self._version, operation="saturate"))
        return added

    def mark_saturated(self) -> None:
        """Declare the graph closed without a version bump.

        Used after an incremental delta closure
        (:func:`repro.rdf.saturation.saturate_from`) has brought the graph
        to the same fixpoint a full :meth:`saturate` would reach: the
        graph content changed only by entailment, so derived structures
        aligned through the delta path stay current.
        """
        self._saturated = True

    @property
    def is_saturated(self) -> bool:
        return self._saturated

    # ------------------------------------------------------------------
    # Mutation tracking
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        """Record a mutation: un-saturate and bump the version counter."""
        self._saturated = False
        self._version += 1

    def _record(self, delta: MutationDelta) -> None:
        self._deltas.append(delta)

    def deltas_since(self, version: int) -> Optional[List[MutationDelta]]:
        """The contiguous delta chain covering ``(version, current]``.

        Returns ``[]`` when the instance is already at *version*, or
        ``None`` when the log cannot prove completeness (the chain has a
        gap, e.g. *version* predates the bounded log) — callers must then
        fall back to a full rebuild.
        """
        if version == self._version:
            return []
        collected: List[MutationDelta] = []
        for delta in reversed(self._deltas):
            if delta.version <= version:
                break
            collected.append(delta)
            if delta.base_version <= version:
                break
        collected.reverse()
        if not collected:
            return None
        if collected[0].base_version != version:
            return None
        if collected[-1].version != self._version:
            return None
        for prev, nxt in zip(collected, collected[1:]):
            if nxt.base_version != prev.version:
                return None
        return collected

    @property
    def version(self) -> int:
        """Monotone mutation counter.

        Derived structures (the precomputed
        :class:`~repro.core.connection_index.ConnectionIndex`, result
        caches) record the version they were built against and rebuild
        lazily when it moves.
        """
        return self._version

    # ------------------------------------------------------------------
    # Views used by the search algorithm
    # ------------------------------------------------------------------
    def document_of(self, node: URI) -> Optional[Document]:
        """The :class:`Document` whose tree contains *node*, if any."""
        root = self.node_to_document.get(node)
        if root is None:
            return None
        return self.documents[root]

    def is_document_node(self, uri: URI) -> bool:
        return uri in self.node_to_document

    def is_tag(self, uri: URI) -> bool:
        return uri in self.tags

    def is_user(self, uri: URI) -> bool:
        return uri in self.users

    def comments_on(self, target: URI) -> List[URI]:
        """Documents commenting on fragment *target* (direct comments)."""
        return list(self._comments_of.get(target, ()))

    def comment_targets(self, comment: URI) -> List[URI]:
        """Fragments the document *comment* comments on."""
        return list(self._comment_targets.get(comment, ()))

    def tags_on(self, subject: URI) -> List[URI]:
        """Tags whose ``hasSubject`` is *subject* (fragment or tag)."""
        return list(self._tags_on.get(subject, ()))

    def vertical_neighborhood(self, uri: URI) -> Set[URI]:
        """*uri* together with its vertical neighbors (Definition 2.2).

        For non-document nodes (users, tags) the neighborhood is the
        singleton ``{uri}``.
        """
        document = self.document_of(uri)
        if document is None:
            return {uri}
        neighborhood = document.vertical_neighbors(uri)
        neighborhood.add(uri)
        return neighborhood

    def network_out_edges(self, uri: URI) -> Iterator[Tuple[URI, float, URI]]:
        """Network edges (Section 2.5) leaving *uri*.

        Yields ``(target, weight, property)``; only edges whose property is
        an S3 property other than ``partOf``/``contains``/``nodeName`` and
        whose endpoints are users, documents or tags qualify.
        """
        for wt in self.graph.triples(subject=uri):
            if wt.predicate not in NETWORK_EDGE_PROPERTIES:
                continue
            obj = wt.object
            if not isinstance(obj, URI):
                continue
            if not (self.is_user(obj) or self.is_document_node(obj) or self.is_tag(obj)):
                continue
            yield obj, wt.weight, wt.predicate

    def network_nodes(self) -> Set[URI]:
        """All users, document nodes and tags (the social-path universe)."""
        nodes: Set[URI] = set(self.users)
        nodes.update(self.node_to_document)
        nodes.update(self.tags)
        return nodes

    def contains_keyword(self, node: URI, keyword: Term) -> bool:
        """True when ``node S3:contains keyword`` holds in ``I``."""
        return self.graph.weight(node, S3_CONTAINS, keyword) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"S3Instance(users={len(self.users)}, documents={len(self.documents)}, "
            f"tags={len(self.tags)}, triples={len(self.graph)})"
        )
