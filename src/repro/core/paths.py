"""Social paths: network edges, normalization, enumeration (Section 2.5).

A *social path* is a chain of network edges such that the end of each edge
and the beginning of the next are the same node or vertical neighbors.
*Path normalization* divides each edge's weight by the total weight of the
network edges leaving the vertical neighborhood the path is currently in:

    ``e.n_w = e.w / Σ_{e' ∈ out(neigh(n))} e'.w``

where ``n`` is the node through which the path entered the neighborhood
(the end of the previous edge, or the path's start).

This module is the *reference* implementation: it enumerates paths
explicitly and is used by tests and by the naive (non-matrix) proximity
mode.  The production engine is :mod:`repro.core.prox`, which folds the
same normalization into a sparse transition matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..rdf.terms import URI
from .instance import S3Instance


@dataclass(frozen=True)
class NetworkEdge:
    """One network edge of ``I`` with its raw weight."""

    source: URI
    target: URI
    weight: float
    predicate: URI


@dataclass(frozen=True)
class SocialPath:
    """A normalized social path.

    ``edges`` are the traversed network edges; ``normalized_weights`` the
    per-edge normalized weights; ``entry_nodes`` the successive nodes the
    path is "at" (the end of each edge), starting with the path's origin.
    """

    edges: Tuple[NetworkEdge, ...]
    normalized_weights: Tuple[float, ...]
    entry_nodes: Tuple[URI, ...]

    def __len__(self) -> int:
        """Path length = number of edges (cf. Example 3.1)."""
        return len(self.edges)

    @property
    def end(self) -> URI:
        """The node the path arrives at (entry node of the last hop)."""
        return self.entry_nodes[-1]

    def proximity(self) -> float:
        """``−→prox(p)``: the product of the normalized edge weights."""
        result = 1.0
        for weight in self.normalized_weights:
            result *= weight
        return result


class PathExplorer:
    """Enumerates normalized social paths over an :class:`S3Instance`."""

    def __init__(self, instance: S3Instance):
        self._instance = instance
        self._out_cache: Dict[URI, List[NetworkEdge]] = {}
        self._neigh_out_cache: Dict[URI, Tuple[List[NetworkEdge], float]] = {}

    # ------------------------------------------------------------------
    def out_edges(self, node: URI) -> List[NetworkEdge]:
        """Network edges whose subject is exactly *node*."""
        cached = self._out_cache.get(node)
        if cached is None:
            cached = [
                NetworkEdge(node, target, weight, predicate)
                for target, weight, predicate in self._instance.network_out_edges(node)
            ]
            self._out_cache[node] = cached
        return cached

    def neighborhood_out_edges(self, node: URI) -> Tuple[List[NetworkEdge], float]:
        """``out(neigh(n))`` and its total weight ``W(n)``.

        Edges leaving *node* or any of its vertical neighbors, in a
        deterministic order, together with the normalization denominator.
        """
        cached = self._neigh_out_cache.get(node)
        if cached is None:
            edges: List[NetworkEdge] = []
            for member in sorted(self._instance.vertical_neighborhood(node)):
                edges.extend(self.out_edges(member))
            total = sum(edge.weight for edge in edges)
            cached = (edges, total)
            self._neigh_out_cache[node] = cached
        return cached

    def normalized_out_edges(self, node: URI) -> Iterator[Tuple[NetworkEdge, float]]:
        """Edges leaving the neighborhood of *node* with normalized weights."""
        edges, total = self.neighborhood_out_edges(node)
        if total <= 0.0:
            return
        for edge in edges:
            yield edge, edge.weight / total

    # ------------------------------------------------------------------
    def paths_up_to(self, start: URI, max_length: int) -> Iterator[SocialPath]:
        """All normalized social paths from *start* of length 1..*max_length*.

        Exponential in *max_length* — only for tests / tiny graphs.
        """
        initial = SocialPath((), (), (start,))
        frontier: List[SocialPath] = [initial]
        for _ in range(max_length):
            next_frontier: List[SocialPath] = []
            for path in frontier:
                for edge, n_w in self.normalized_out_edges(path.end):
                    extended = SocialPath(
                        path.edges + (edge,),
                        path.normalized_weights + (n_w,),
                        path.entry_nodes + (edge.target,),
                    )
                    next_frontier.append(extended)
                    yield extended
            frontier = next_frontier

    def paths_between(
        self, start: URI, end: URI, max_length: int
    ) -> Iterator[SocialPath]:
        """Paths in ``start ;≤max_length end``.

        A path reaches *end* when its last entry node is *end* or one of
        its vertical neighbors (the neighborhood acts as a single node from
        the perspective of a social path).
        """
        targets = self._instance.vertical_neighborhood(end)
        for path in self.paths_up_to(start, max_length):
            if path.end in targets:
                yield path


def bounded_social_proximity(
    instance: S3Instance,
    start: URI,
    end: URI,
    max_length: int,
    gamma: float = 2.0,
    include_empty: bool = True,
) -> float:
    """Reference ``prox≤n(start, end)`` with the concrete ⊕path of §3.4.

    ``prox≤n(a, b) = Cγ · Σ_{p ∈ a ;≤n b} −→prox(p) / γ^|p|``.  The empty
    path (length 0, proximity 1) contributes when *end* is *start* or one
    of its vertical neighbors.
    """
    if gamma <= 1.0:
        raise ValueError("gamma must be > 1")
    c_gamma = (gamma - 1.0) / gamma
    explorer = PathExplorer(instance)
    total = 0.0
    if include_empty and start in instance.vertical_neighborhood(end):
        total += 1.0
    for path in explorer.paths_between(start, end, max_length):
        total += path.proximity() / gamma ** len(path)
    return c_gamma * total
