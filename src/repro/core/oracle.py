"""Exhaustive reference evaluation ("oracle") for S3k queries.

Computes, to any requested precision, the exact social proximity of every
node to the seeker (by running the normalized propagation until the tail
bound drops below the tolerance) and the exact score of every document,
then assembles a top-k answer per Definition 3.2 (greedy best-score with
the vertical-neighbor exclusion).  Exponentially slower than
:class:`~repro.core.search.S3kSearch` on large instances, but independent
of its candidate pruning, bounds and termination logic — which is exactly
what makes it a useful correctness oracle in tests and an exact ranking for
the qualitative measures of Section 5.4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..rdf.terms import Term, URI, coerce_term
from .components import ComponentIndex
from .concrete_score import S3kScore
from .connections import ComponentConnections
from .extension import extend_query
from .instance import S3Instance
from .prox import ProximityIndex


def exact_proximities(
    instance: S3Instance,
    seeker: URI,
    score: Optional[S3kScore] = None,
    tolerance: float = 1e-12,
    prox_index: Optional[ProximityIndex] = None,
) -> Tuple[np.ndarray, ProximityIndex]:
    """Per-node accumulated proximity ``prox(u, ·)`` within *tolerance*.

    Iterates ``border_{n+1} = T^T border_n / γ`` until the tail bound
    ``γ^{−(n+1)}`` is below *tolerance*; the accumulated vector then equals
    the exact proximity up to that tolerance for every node.
    """
    if score is None:
        score = S3kScore()
    if prox_index is None:
        prox_index = ProximityIndex(instance)
    border = prox_index.start_vector(seeker)
    accumulated = np.zeros(prox_index.size, dtype=np.float64)
    accumulated[prox_index.node_index(seeker)] = score.c_gamma
    n = 0
    while score.prox_tail_bound(n) > tolerance and n < 4000:
        n += 1
        border = prox_index.step(border) / score.gamma
        accumulated += score.c_gamma * border
        if not border.any():
            break
    return accumulated, prox_index


def exact_scores(
    instance: S3Instance,
    seeker: object,
    keywords: Sequence[object],
    score: Optional[S3kScore] = None,
    semantic: bool = True,
    tolerance: float = 1e-12,
    prox_index: Optional[ProximityIndex] = None,
) -> Dict[URI, float]:
    """Exact score of every document with a non-zero score."""
    if score is None:
        score = S3kScore()
    seeker_uri = URI(seeker)
    query_terms: List[Term] = []
    for keyword in keywords:
        term = keyword if isinstance(keyword, URI) else coerce_term(keyword)
        if term not in query_terms:
            query_terms.append(term)
    if semantic:
        extensions = extend_query(instance, query_terms)
    else:
        extensions = {term: {term} for term in query_terms}

    accumulated, prox_index = exact_proximities(
        instance, seeker_uri, score, tolerance, prox_index
    )
    component_index = ComponentIndex(instance)
    scores: Dict[URI, float] = {}
    for component in component_index.components():
        if not component.matches(extensions.values()):
            continue
        connections = ComponentConnections(instance, component, extensions)
        for candidate in connections.candidate_documents():
            value = 1.0
            for keyword in query_terms:
                keyword_sum = 0.0
                for conn in connections.connections(candidate, keyword):
                    prox = prox_index.source_proximity(accumulated, conn.source)
                    keyword_sum += score.structural_weight(conn.distance) * prox
                value *= keyword_sum
            if value > 0.0:
                scores[candidate] = value
    return scores


def exact_top_k(
    instance: S3Instance,
    seeker: object,
    keywords: Sequence[object],
    k: int,
    score: Optional[S3kScore] = None,
    semantic: bool = True,
    tolerance: float = 1e-12,
) -> List[Tuple[URI, float]]:
    """Top-k answer per Definition 3.2, computed exhaustively.

    Documents are taken greedily by decreasing score (deeper fragments win
    ties), skipping any document that is a fragment or an ancestor of an
    already-selected one.
    """
    scores = exact_scores(instance, seeker, keywords, score, semantic, tolerance)

    def depth(uri: URI) -> int:
        document = instance.document_of(uri)
        return document.node(uri).depth if document is not None else 0

    ordered = sorted(scores.items(), key=lambda item: (-item[1], -depth(item[0]), item[0]))
    picked: List[Tuple[URI, float]] = []
    picked_neighborhoods: List[Set[URI]] = []
    for uri, value in ordered:
        neighborhood = instance.vertical_neighborhood(uri)
        if any(uri in taken for taken in picked_neighborhoods):
            continue
        picked.append((uri, value))
        picked_neighborhoods.append(neighborhood)
        if len(picked) == k:
            break
    return picked
