"""The S3k top-k query answering algorithm (Section 4).

The instance is explored breadth-first from the seeker; at iteration ``n``
the *exploration border* holds the proximity mass of all length-``n``
social paths (``borderProx``, stepped by the sparse engine of
:mod:`repro.core.prox`).  Documents are collected into a candidate set as
their connected components are reached; every candidate carries a
``[lower, upper]`` score interval, refined as proximity accumulates, and a
*threshold* bounds the score of every document still unexplored.  The
search stops (Algorithm 2) when the greedy top-k assembly is provably
final — no candidate or unexplored document can change the picks; an
*anytime* mode instead stops on an iteration / time budget and returns
the best candidates by upper bound.

Two execution modes share one code path: :meth:`S3kSearch.search`
answers a single query, and :meth:`S3kSearch.search_many` advances a
whole batch of :class:`QueryState` objects in lock-step over the shared
immutable indexes, one ``T^T @ B`` mat-mat proximity step per iteration.
"""

from __future__ import annotations

import math
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..rdf.terms import Term, URI, coerce_term
from .components import Component, ComponentIndex
from .concrete_score import S3kScore
from .connection_index import ConnectionIndex
from .connections import ComponentConnections, Connection, resolve_connections
from .extension import extend_query
from .instance import S3Instance
from .prox import ProximityIndex
from .score import FeasibleScore

#: Interval slack absorbing float rounding when comparing bounds.
TIE_EPSILON = 1e-9
#: Hard cap on exploration depth (anytime fallback); the threshold stop
#: normally triggers far earlier.
DEFAULT_MAX_ITERATIONS = 300


@dataclass
class Candidate:
    """A candidate answer with its score interval."""

    uri: URI
    root: URI
    depth: int
    #: query keyword -> [(structural distance, source)]
    connections: Dict[Term, List[Tuple[int, URI]]]
    sources: Set[URI]
    #: Dewey identifier of the fragment, cached for neighbor checks
    dewey: Tuple[int, ...] = ()
    lower: float = 0.0
    upper: float = math.inf
    #: flat views of ``connections`` shared with the candidate template —
    #: connection count per keyword, precomputed structural weights
    #: (``η^distance``) and sources in keyword order — from which
    #: :class:`_BoundsLayout` is rebuilt with array gathers instead of
    #: per-candidate dict walks
    kw_counts: Tuple[int, ...] = ()
    conn_weights: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )
    conn_sources: List[URI] = field(default_factory=list)


@dataclass(frozen=True)
class RankedResult:
    """One element of the returned top-k list."""

    uri: URI
    lower: float
    upper: float


@dataclass
class SearchResult:
    """Outcome of one S3k query."""

    seeker: URI
    keywords: Tuple[Term, ...]
    k: int
    results: List[RankedResult]
    iterations: int
    terminated_by: str
    elapsed_seconds: float
    candidates_examined: int
    components_processed: int
    components_discarded: int
    candidate_uris: Set[URI] = field(default_factory=set)
    extended_keyword_count: int = 0
    #: Position of the query within its batch (0 for sequential queries).
    batch_index: int = 0
    #: Submission-to-answer latency in seconds.  Equals
    #: ``elapsed_seconds`` for sequential queries; under batched execution
    #: it includes the time spent advancing the other queries in lock-step,
    #: which is what a caller waiting on this query actually observes.
    wall_time: float = 0.0

    @property
    def uris(self) -> List[URI]:
        """Result URIs in rank order."""
        return [r.uri for r in self.results]


@dataclass
class QueryState:
    """Per-query exploration state (Section 4), separate from the indexes.

    Everything the S3k loop mutates while answering one query lives here:
    the proximity border and its accumulated mass, the candidate set with
    its score intervals, the unexplored-document threshold, and the
    termination bookkeeping.  The engine itself only holds shared immutable
    indexes, so any number of ``QueryState`` objects can be advanced
    concurrently over the same :class:`S3kSearch` — the seam that batched
    (and later sharded / async) execution builds on.
    """

    seeker: URI
    keywords: Tuple[Term, ...]
    k: int
    semantic: bool
    extensions: Dict[Term, Set[Term]]
    extended_keyword_count: int
    matching: Set[int]
    hard_cap: int
    time_budget: Optional[float]
    started: float
    batch_index: int = 0
    # -- exploration state (None / empty until prepared) ----------------
    border: Optional[np.ndarray] = None
    accumulated: Optional[np.ndarray] = None
    weight_bounds: List[float] = field(default_factory=list)
    #: boolean mask of node indexes already reached by some path — kept as
    #: an array so each iteration only Python-loops over the newly reached
    #: indexes (vectorized diff against the border's nonzero pattern)
    seen: Optional[np.ndarray] = None
    threshold: float = math.inf
    #: flat index layout driving the vectorized bound updates
    layout: Optional["_BoundsLayout"] = None
    #: True when candidates were added since the layout was (re)built
    sources_dirty: bool = True
    candidates: Dict[URI, Candidate] = field(default_factory=dict)
    processed: Set[int] = field(default_factory=set)
    candidate_uris: Set[URI] = field(default_factory=set)
    iterations: int = 0
    candidates_examined: int = 0
    components_discarded: int = 0
    terminated_by: str = "threshold"
    done: bool = False

    @property
    def cache_key(self) -> Tuple[Tuple[Term, ...], bool]:
        """Key under which query-independent work can be shared."""
        return (self.keywords, self.semantic)


class _BoundsLayout:
    """Flat numpy layout of one query's candidate/connection structure.

    Rebuilt whenever gathering adds candidates; per iteration the whole
    ``[lower, upper]`` interval refresh then reduces to a handful of
    vectorized operations (one source-proximity ``reduceat``, two weighted
    gathers, per-keyword sum and per-candidate product ``reduceat``s)
    instead of a Python loop over every connection of every candidate.
    The element order inside every segment mirrors the original per-
    candidate loops, so the float results are bit-identical.
    """

    __slots__ = (
        "candidates",
        "n_slots",
        "nonempty",
        "source_concat",
        "source_offsets",
        "conn_src",
        "conn_weight",
        "kw_offsets",
        "cand_offsets",
    )

    def __init__(self) -> None:
        self.candidates: List[Candidate] = []
        self.n_slots = 0
        self.nonempty: Optional[np.ndarray] = None
        self.source_concat: Optional[np.ndarray] = None
        self.source_offsets: Optional[np.ndarray] = None
        self.conn_src: Optional[np.ndarray] = None
        self.conn_weight: Optional[np.ndarray] = None
        self.kw_offsets: Optional[np.ndarray] = None
        self.cand_offsets: Optional[np.ndarray] = None


class _LRUDict(OrderedDict):
    """An ``OrderedDict`` evicting least-recently-used entries past *maxsize*."""

    def __init__(self, maxsize: int):
        super().__init__()
        self.maxsize = maxsize

    def get(self, key, default=None):
        try:
            value = super().__getitem__(key)
        except KeyError:
            return default
        self.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self.maxsize:
            self.popitem(last=False)


class _ResultCache:
    """Bounded LRU of finished answers, keyed ``(seeker, keywords,
    semantic, k)``.

    Generalizes the in-batch coalescing of identical queries across
    batches: hot / trending traffic repeats whole queries, and a finished
    threshold- or hard-cap-terminated answer is fully deterministic, so it
    can be replayed without re-exploring.  Queries carrying a *time_budget*
    or explicit *max_iterations* bypass the cache (their answers depend on
    the budget).  Hit / miss counters feed
    :func:`repro.eval.reporting.format_counter_table`.
    """

    __slots__ = ("hits", "misses", "_entries")

    def __init__(self, maxsize: int):
        self.hits = 0
        self.misses = 0
        self._entries: _LRUDict = _LRUDict(maxsize)

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _snapshot(result: SearchResult) -> SearchResult:
        """A copy owning its mutable fields, so neither the caller that
        produced the entry nor any caller replaying it can corrupt the
        cached answer (``RankedResult`` elements are frozen)."""
        return replace(
            result,
            results=list(result.results),
            candidate_uris=set(result.candidate_uris),
        )

    def get(self, key: Tuple) -> Optional[SearchResult]:
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return self._snapshot(result)

    def put(self, key: Tuple, result: SearchResult) -> None:
        self._entries[key] = self._snapshot(result)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "maxsize": self._entries.maxsize,
        }


class _BatchCache:
    """Memoization of seeker-independent query plans.

    Everything cached here depends only on the immutable indexes and the
    (keywords, semantic) pair — never on the seeker — so queries that
    repeat keywords (the common case under heavy traffic) share the
    keyword extension, the component matching, the per-keyword weight
    bounds and, most importantly, the per-component candidate templates.
    Unbounded instances live for one :meth:`S3kSearch.search_many` batch
    (PR 1's behavior); with *maxsize* the engine keeps one bounded,
    LRU-evicting instance alive across batches and sequential queries, so
    unique-seeker traffic that repeats keywords never re-gathers.
    """

    def __init__(self, maxsize: Optional[int] = None) -> None:
        self.maxsize = maxsize
        factory = (lambda: _LRUDict(maxsize)) if maxsize else dict
        #: (keywords, semantic) -> extensions mapping
        self.extensions: Dict[Tuple, Dict[Term, Set[Term]]] = factory()
        #: (keywords, semantic) -> matching component idents
        self.matching: Dict[Tuple, Set[int]] = factory()
        #: (keywords, semantic) -> per-keyword weight bounds
        self.weight_bounds: Dict[Tuple, List[float]] = factory()
        #: (component ident, (keywords, semantic)) -> candidate templates
        self.component_candidates: Dict[Tuple, List[Tuple]] = factory()

    def clear(self) -> None:
        self.extensions.clear()
        self.matching.clear()
        self.weight_bounds.clear()
        self.component_candidates.clear()


def _normalize_keywords(keywords: Sequence[object]) -> Tuple[Term, ...]:
    """Keywords as deduplicated terms, exactly as ``_prepare_query`` sees
    them — the coalescing key for identical in-flight queries."""
    terms: List[Term] = []
    for keyword in keywords:
        term = keyword if isinstance(keyword, URI) else coerce_term(keyword)
        if term not in terms:
            terms.append(term)
    return tuple(terms)


def _coerce_query(query: object, default_k: int) -> Tuple[object, Sequence[object], int]:
    """Deprecated shim: use :meth:`repro.engine.QueryRequest.from_obj`.

    The ad-hoc ``(seeker, keywords, k)`` coercion moved into the typed
    request layer; this name survives only for external callers.
    """
    warnings.warn(
        "_coerce_query is deprecated; use repro.engine.QueryRequest.from_obj",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..engine.request import QueryRequest

    request = QueryRequest.from_obj(query, default_k=default_k)
    return request.seeker, request.keywords, request.k


class S3kSearch:
    """Query engine over a saturated :class:`S3Instance`.

    Builds, once, the proximity index (normalized transition matrix), the
    connected-component index, and the inverted keyword indexes used for
    pruning and for the threshold bounds; then answers any number of
    queries.

    With *use_connection_index* (the default) candidate gathering reads
    the precomputed per-atom evidence of a lazily built
    :class:`ConnectionIndex` instead of running the connection fixpoint at
    query time; pass a warm *connection_index* (e.g. loaded from a
    :class:`~repro.storage.sqlite_store.SQLiteStore`) to skip even the
    lazy builds.  *result_cache_size* bounds the LRU cache of finished
    answers and *plan_cache_size* the LRU cache of seeker-independent
    query plans (extensions, matching components, weight bounds,
    candidate templates) shared across batches; 0 disables either.
    """

    def __init__(
        self,
        instance: S3Instance,
        score: Optional[FeasibleScore] = None,
        use_matrix: bool = True,
        use_connection_index: bool = True,
        connection_index: Optional[ConnectionIndex] = None,
        result_cache_size: int = 1024,
        plan_cache_size: int = 4096,
    ):
        if not instance.is_saturated:
            instance.saturate()
        self.instance = instance
        self.score: S3kScore = score if score is not None else S3kScore()
        self.prox_index = ProximityIndex(instance, use_matrix=use_matrix)
        self.component_index = (
            connection_index.component_index
            if connection_index is not None
            else ComponentIndex(instance)
        )
        if not use_connection_index:
            # Honored even when an index object was passed: the fixpoint
            # gather path runs (the component partition is still reused).
            self.connection_index: Optional[ConnectionIndex] = None
        elif connection_index is not None:
            self.connection_index = connection_index
        else:
            self.connection_index = ConnectionIndex(instance, self.component_index)
        self._result_cache = (
            _ResultCache(result_cache_size) if result_cache_size > 0 else None
        )
        self._plan_cache = (
            _BatchCache(plan_cache_size) if plan_cache_size > 0 else None
        )
        self._caches_version = instance.version
        self._keyword_nodes: Dict[Term, List[URI]] = {}
        self._keyword_tags: Dict[Term, List[URI]] = {}
        self._component_stats: Dict[int, Tuple[int, int, int]] = {}
        self._build_keyword_indexes()

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop cached answers, query plans and precomputed index slabs.

        All three also self-invalidate lazily against
        :attr:`S3Instance.version`, so this explicit hook is for callers
        that mutate content bypassing the ``add_*`` methods.  Note the
        structural indexes (proximity matrix, component partition,
        keyword inverted indexes) are built once per engine: the version
        checks guarantee no *stale replay* after a mutation, but a
        mutated instance should get a freshly constructed engine for
        fully up-to-date answers.
        """
        self._caches_version = self.instance.version
        if self._result_cache is not None:
            self._result_cache.clear()
        if self._plan_cache is not None:
            self._plan_cache.clear()
        if self.connection_index is not None:
            self.connection_index.invalidate()

    def _fresh_caches(self) -> None:
        """Drop result / plan caches lazily after an instance mutation.

        Cached answers and query plans are only valid for the instance
        content they were computed against; the :class:`ConnectionIndex`
        already re-checks :attr:`S3Instance.version` per slab, and this
        gives the two LRU caches the same self-invalidation.
        """
        if self._caches_version != self.instance.version:
            self._caches_version = self.instance.version
            if self._result_cache is not None:
                self._result_cache.clear()
            if self._plan_cache is not None:
                self._plan_cache.clear()

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Hit / miss / occupancy counters of the result cache."""
        if self._result_cache is None:
            return {"hits": 0, "misses": 0, "size": 0, "maxsize": 0}
        return self._result_cache.stats()

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _build_keyword_indexes(self) -> None:
        for root, document in self.instance.documents.items():
            for node in document.nodes():
                for keyword in set(node.keywords):
                    term = coerce_term(keyword)
                    self._keyword_nodes.setdefault(term, []).append(node.uri)
        for tag_uri, tag in self.instance.tags.items():
            if tag.keyword is not None:
                term = coerce_term(tag.keyword)
                self._keyword_tags.setdefault(term, []).append(tag_uri)
        for component in self.component_index.components():
            n_tags = len(component.tags)
            n_roots = len(component.roots)
            n_targets = sum(
                1 for node in component.nodes if self.instance.comments_on(node)
            )
            self._component_stats[component.ident] = (n_tags, n_roots, n_targets)
        # Dense map: proximity index -> component ident (-1 for users and
        # other non-document, non-tag vertices).  Lets the per-iteration
        # discovery classify newly reached nodes with one vectorized lookup
        # instead of per-node dict probes.  Built by walking the component
        # members (document nodes + tags), not the full node universe.
        self._index_component = np.full(self.prox_index.size, -1, dtype=np.int64)
        for component in self.component_index.components():
            for uri in component.nodes:
                index = self.prox_index.node_index_of(uri)
                if index is not None:
                    self._index_component[index] = component.ident
            for uri in component.tags:
                index = self.prox_index.node_index_of(uri)
                if index is not None:
                    self._index_component[index] = component.ident

    # ------------------------------------------------------------------
    # Query-time helpers
    # ------------------------------------------------------------------
    def _matching_components(
        self, extensions: Dict[Term, Set[Term]]
    ) -> Set[int]:
        """Components whose keyword set intersects *every* extension."""
        matching: Optional[Set[int]] = None
        for extension in extensions.values():
            components: Set[int] = set()
            for keyword in extension:
                for node in self._keyword_nodes.get(keyword, ()):
                    component = self.component_index.component_of(node)
                    if component is not None:
                        components.add(component.ident)
                for tag in self._keyword_tags.get(keyword, ()):
                    component = self.component_index.component_of(tag)
                    if component is not None:
                        components.add(component.ident)
            matching = components if matching is None else (matching & components)
            if not matching:
                return set()
        return matching or set()

    def _keyword_weight_bounds(
        self, extensions: Dict[Term, Set[Term]], matching: Set[int]
    ) -> List[float]:
        """``W_k``: per-keyword bounds on the structural weight sums.

        For each query keyword, the maximum over the matching components of
        an upper bound on ``Σ_{(t,f,src)∈con(d,k)} η^{|pos(d,f)|}``:
        contains-connections are bounded by the component's occurrence
        count, relatedTo-connections by its tag count, commentsOn pairs by
        (#commented fragments) × (#roots + #tags).  See DESIGN.md §5.
        """
        bounds: List[float] = []
        for extension in extensions.values():
            per_component: Dict[int, int] = {}
            for keyword in extension:
                for node in self._keyword_nodes.get(keyword, ()):
                    component = self.component_index.component_of(node)
                    if component is not None and component.ident in matching:
                        per_component[component.ident] = (
                            per_component.get(component.ident, 0) + 1
                        )
                for tag in self._keyword_tags.get(keyword, ()):
                    component = self.component_index.component_of(tag)
                    if component is not None and component.ident in matching:
                        per_component[component.ident] = (
                            per_component.get(component.ident, 0) + 1
                        )
            best = 0.0
            for ident, occurrences in per_component.items():
                n_tags, n_roots, n_targets = self._component_stats[ident]
                bound = occurrences + n_tags + n_targets * (n_roots + n_tags)
                best = max(best, float(bound))
            bounds.append(best)
        return bounds

    def _make_template(
        self,
        candidate_uri: URI,
        extensions: Dict[Term, Set[Term]],
        resolver: Callable[[URI, Term], List[Connection]],
    ) -> Tuple:
        """One candidate's query-independent payload (shared batch-wide).

        Resolves the candidate's root, depth, per-keyword connections and
        source set, plus the flat arrays (per-keyword counts, distances,
        sources in keyword order) from which the bounds layout is rebuilt
        without walking the per-candidate dicts again.
        """
        document = self.instance.document_of(candidate_uri)
        node = document.node(candidate_uri)
        structural_weight = self.score.structural_weight
        per_keyword: Dict[Term, List[Tuple[int, URI]]] = {}
        sources: Set[URI] = set()
        kw_counts: List[int] = []
        weights: List[float] = []
        flat_sources: List[URI] = []
        for keyword in extensions:
            resolved = resolver(candidate_uri, keyword)
            per_keyword[keyword] = [(c.distance, c.source) for c in resolved]
            kw_counts.append(len(resolved))
            for connection in resolved:
                weights.append(structural_weight(connection.distance))
                flat_sources.append(connection.source)
            sources.update(c.source for c in resolved)
        return (
            candidate_uri,
            document.uri,
            node.depth,
            node.dewey,
            per_keyword,
            sources,
            tuple(kw_counts),
            np.asarray(weights, dtype=np.float64),
            flat_sources,
        )

    def _candidate_templates(
        self,
        component: Component,
        extensions: Dict[Term, Set[Term]],
        cache: Optional[_BatchCache] = None,
        cache_key: Optional[Tuple] = None,
    ) -> List[Tuple]:
        """Query-independent candidate data for one matching component.

        With the :class:`ConnectionIndex` enabled, candidate extraction is
        a boolean coverage gather and the per-keyword evidence is the
        union of precomputed per-atom slices — no fixpoint runs at query
        time.  Without it, the :class:`ComponentConnections` worklist
        fixpoint (the oracle path) runs here.  Neither depends on the
        seeker, so the result is shared across a batch via *cache* (keyed
        by component and extended keyword set).
        """
        if cache is not None and cache_key is not None:
            cached = cache.component_candidates.get((component.ident, cache_key))
            if cached is not None:
                return cached
        if self.connection_index is not None:
            connection_index = self.connection_index
            candidate_uris = connection_index.candidate_documents(
                component.ident, extensions
            )
            # Evidence decodes lazily, per keyword, only when a candidate
            # actually resolves — a component whose coverage AND is empty
            # costs one boolean gather and nothing else.
            evidence_by_keyword: Dict[Term, Dict] = {}

            def resolver(candidate_uri: URI, keyword: Term) -> List[Connection]:
                evidence = evidence_by_keyword.get(keyword)
                if evidence is None:
                    evidence = evidence_by_keyword[keyword] = (
                        connection_index.keyword_evidence(
                            component.ident, extensions[keyword]
                        )
                    )
                return resolve_connections(self.instance, evidence, candidate_uri)

        else:
            connections_index = ComponentConnections(
                self.instance, component, extensions
            )
            candidate_uris = connections_index.candidate_documents()
            resolver = connections_index.connections
        templates = [
            self._make_template(candidate_uri, extensions, resolver)
            for candidate_uri in candidate_uris
        ]
        if cache is not None and cache_key is not None:
            cache.component_candidates[(component.ident, cache_key)] = templates
        return templates

    def _gather_candidates(
        self,
        component: Component,
        extensions: Dict[Term, Set[Term]],
        candidates: Dict[URI, Candidate],
        cache: Optional[_BatchCache] = None,
        cache_key: Optional[Tuple] = None,
    ) -> int:
        """Add *component*'s candidates; evidence shared through *cache*.

        The :class:`Candidate` objects themselves are always fresh (their
        score intervals are per-query state) but their ``connections`` and
        ``sources`` payloads are immutable and may be shared batch-wide.
        """
        templates = self._candidate_templates(component, extensions, cache, cache_key)
        added = 0
        for (
            candidate_uri,
            root,
            depth,
            dewey,
            per_keyword,
            sources,
            kw_counts,
            conn_weights,
            conn_sources,
        ) in templates:
            if candidate_uri in candidates:
                continue
            candidates[candidate_uri] = Candidate(
                uri=candidate_uri,
                root=root,
                depth=depth,
                dewey=dewey,
                connections=per_keyword,
                sources=sources,
                kw_counts=kw_counts,
                conn_weights=conn_weights,
                conn_sources=conn_sources,
            )
            added += 1
        return added

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def _refresh_bounds_layout(self, state: QueryState) -> None:
        """(Re)build the flat index layout for the state's candidate set.

        Only rebuilt when gathering added candidates; candidates removed
        by cleaning merely leave harmless extra segments behind until the
        next rebuild.  A candidate with an empty connection list for some
        keyword has a constant ``[0, 0]`` interval (the score is a product
        over keywords), so it is settled here and skipped per iteration.
        The segment offsets and weights come straight from the candidates'
        flat template arrays (index slices), not from re-walking the
        per-candidate connection dicts.
        """
        layout = _BoundsLayout()
        slot_of: Dict[URI, int] = {}
        parts: List[np.ndarray] = []
        source_offsets: List[int] = []
        nonempty: List[int] = []
        conn_src: List[int] = []
        weight_parts: List[np.ndarray] = []
        kw_offsets: List[int] = []
        cand_offsets: List[int] = []
        total = 0
        for candidate in state.candidates.values():
            counts = candidate.kw_counts
            if not counts or 0 in counts:
                candidate.lower = 0.0
                candidate.upper = 0.0
                continue
            layout.candidates.append(candidate)
            cand_offsets.append(len(kw_offsets))
            offset = len(conn_src)
            for count in counts:
                kw_offsets.append(offset)
                offset += count
            for source in candidate.conn_sources:
                slot = slot_of.get(source)
                if slot is None:
                    slot = len(slot_of)
                    slot_of[source] = slot
                    indices = self.prox_index.closed_neighborhood_indices(source)
                    if indices.size:
                        nonempty.append(slot)
                        source_offsets.append(total)
                        parts.append(indices)
                        total += indices.size
                conn_src.append(slot)
            weight_parts.append(candidate.conn_weights)
        layout.n_slots = len(slot_of)
        layout.nonempty = np.asarray(nonempty, dtype=np.intp)
        layout.source_concat = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        layout.source_offsets = np.asarray(source_offsets, dtype=np.intp)
        layout.conn_src = np.asarray(conn_src, dtype=np.intp)
        layout.conn_weight = (
            np.concatenate(weight_parts)
            if weight_parts
            else np.empty(0, dtype=np.float64)
        )
        layout.kw_offsets = np.asarray(kw_offsets, dtype=np.intp)
        layout.cand_offsets = np.asarray(cand_offsets, dtype=np.intp)
        state.layout = layout
        state.sources_dirty = False

    def _update_bounds(self, state: QueryState, tail_bound: float) -> None:
        """Refresh every candidate's ``[lower, upper]`` score interval.

        ``lower`` uses the accumulated (≤ n-step) source proximities;
        ``upper`` additionally grants every source the remaining proximity
        tail.  All sums/products run over the same elements in the same
        order as the straightforward per-candidate loops, via ``reduceat``.
        """
        if state.sources_dirty:
            self._refresh_bounds_layout(state)
        layout = state.layout
        if layout is None or not layout.candidates:
            return
        prox = np.zeros(layout.n_slots, dtype=np.float64)
        if layout.source_concat.size:
            prox[layout.nonempty] = np.add.reduceat(
                state.accumulated[layout.source_concat], layout.source_offsets
            )
        conn_prox = prox[layout.conn_src]
        lower_terms = layout.conn_weight * conn_prox
        upper_terms = layout.conn_weight * np.minimum(1.0, conn_prox + tail_bound)
        lower_sums = np.add.reduceat(lower_terms, layout.kw_offsets)
        upper_sums = np.add.reduceat(upper_terms, layout.kw_offsets)
        lowers = np.multiply.reduceat(lower_sums, layout.cand_offsets)
        uppers = np.multiply.reduceat(upper_sums, layout.cand_offsets)
        for candidate, lower, upper in zip(
            layout.candidates, lowers.tolist(), uppers.tolist()
        ):
            candidate.lower = lower
            candidate.upper = upper

    # ------------------------------------------------------------------
    # Vertical-neighbor utilities
    # ------------------------------------------------------------------
    def _are_vertical_neighbors(self, a: Candidate, b: Candidate) -> bool:
        if a.root != b.root:
            return False
        dewey_a, dewey_b = a.dewey, b.dewey
        if len(dewey_a) <= len(dewey_b):
            shorter, longer = dewey_a, dewey_b
        else:
            shorter, longer = dewey_b, dewey_a
        return longer[: len(shorter)] == shorter

    def _clean_candidates(
        self, candidates: Dict[URI, Candidate], k: int, tail_bound: float
    ) -> None:
        """CleanCandidatesList: drop provably-excluded candidates."""
        if not candidates:
            return
        # (i) candidates that k others surely beat.  The k reference lower
        # bounds must come from pairwise NON-neighbor candidates: vertical
        # neighbors can occupy only one answer slot, so a greedy
        # neighbor-free selection by lower bound is used.  Any neighbor-free
        # k-set with min lower L forces the answer's k-th score above L,
        # hence candidates with upper < L can never appear.
        by_lower = sorted(
            candidates.values(), key=lambda c: (-c.lower, -c.depth, c.uri)
        )
        reference: List[Candidate] = []
        for candidate in by_lower:
            if any(self._are_vertical_neighbors(candidate, r) for r in reference):
                continue
            reference.append(candidate)
            if len(reference) == k:
                break
        if len(reference) == k:
            kth_lower = reference[-1].lower
            for uri in [
                u
                for u, c in candidates.items()
                if c.upper < kth_lower - TIE_EPSILON
            ]:
                del candidates[uri]
        # (ii) candidates dominated by a vertical neighbor.  Removal is
        # only sound when the dominator is a DESCENDANT: every candidate
        # that could exclude the descendant from the answer (its vertical
        # neighbors — nodes on its root path or in its subtree) is then
        # also a vertical neighbor of the ancestor, so whenever the
        # descendant is out, the ancestor is out too.  An ancestor
        # dominating a child gives no such guarantee — the ancestor may
        # itself be excluded by a pick from a disjoint subtree, leaving
        # the child eligible — so those pairs are left to the stop
        # condition's certainty check.
        by_root: Dict[URI, List[Candidate]] = {}
        for candidate in candidates.values():
            by_root.setdefault(candidate.root, []).append(candidate)
        to_remove: Set[URI] = set()
        converged = tail_bound < TIE_EPSILON
        for group in by_root.values():
            if len(group) < 2:
                continue
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    if not self._are_vertical_neighbors(a, b):
                        continue
                    shallow, deep = (a, b) if a.depth <= b.depth else (b, a)
                    if shallow.upper < deep.lower - TIE_EPSILON:
                        # Dominated by a descendant: provably excluded.
                        to_remove.add(shallow.uri)
                    elif converged and abs(a.upper - b.upper) <= TIE_EPSILON:
                        # Breakable tie (Theorem 4.2): keep the deeper,
                        # more specific fragment.
                        to_remove.add(shallow.uri)
        for uri in to_remove:
            candidates.pop(uri, None)

    # ------------------------------------------------------------------
    # Stop condition (Algorithm 2)
    # ------------------------------------------------------------------
    def _stop_condition(
        self,
        ordered: List[Candidate],
        k: int,
        threshold: float,
        tail_bound: float,
    ) -> bool:
        """True when the greedy top-k assembly is provably final.

        Replays :meth:`_assemble`'s greedy pick over *ordered* (sorted by
        ``(-upper, -depth, uri)``) and certifies that the exact-score
        greedy of Definition 3.2 must take the same picks:

        * a candidate skipped for conflicting with a pick must certainly
          rank below its excluder (``upper <= excluder.lower``), or tie
          with it at convergence (then the tie-break keeps the excluder);
        * once the answer is full, the best unpicked, non-conflicting
          candidate must certainly rank below every pick;
        * the unexplored-document threshold must not beat the answer.
        """
        converged = tail_bound < TIE_EPSILON
        picked: List[Candidate] = []
        min_top_lower = math.inf
        for candidate in ordered:
            if candidate.upper <= 0.0:
                continue
            excluder = next(
                (
                    pick
                    for pick in picked
                    if self._are_vertical_neighbors(candidate, pick)
                ),
                None,
            )
            if excluder is not None:
                if candidate.upper <= excluder.lower + TIE_EPSILON:
                    continue
                if converged and abs(candidate.upper - excluder.upper) <= TIE_EPSILON:
                    continue
                return False
            if len(picked) < k:
                picked.append(candidate)
                min_top_lower = min(min_top_lower, candidate.lower)
                continue
            # Would-be (k+1)-th pick: every remaining candidate has an
            # upper bound no larger than this one, so certainty for it
            # certifies the rest.
            if candidate.upper > min_top_lower + TIE_EPSILON:
                return False
            break
        if len(picked) < k:
            # Fewer answers than requested: stop once no unexplored
            # document can join the answer.
            return threshold <= TIE_EPSILON
        return threshold <= min_top_lower + TIE_EPSILON

    # ------------------------------------------------------------------
    # Query lifecycle: prepare -> (check / step)* -> finish
    # ------------------------------------------------------------------
    def _prepare_query(
        self,
        seeker: object,
        keywords: Sequence[object],
        k: int = 5,
        semantic: bool = True,
        max_iterations: Optional[int] = None,
        time_budget: Optional[float] = None,
        batch_index: int = 0,
        cache: Optional[_BatchCache] = None,
    ) -> QueryState:
        """Build the initial :class:`QueryState` for one query.

        Resolves the seeker, dedupes and extends the keywords, computes
        the matching components and weight bounds (all shareable through
        *cache*), and seeds the proximity border on the seeker.  Queries
        with no matching component are born ``done``.
        """
        started = time.perf_counter()
        seeker_uri = URI(seeker)
        if seeker_uri not in self.instance.users:
            raise KeyError(f"unknown seeker: {seeker_uri}")
        query_terms = _normalize_keywords(keywords)
        key = (query_terms, semantic)

        extensions: Optional[Dict[Term, Set[Term]]] = None
        if cache is not None:
            extensions = cache.extensions.get(key)
        if extensions is None:
            if semantic:
                extensions = extend_query(self.instance, query_terms)
            else:
                extensions = {term: {term} for term in query_terms}
            if cache is not None:
                cache.extensions[key] = extensions

        matching: Optional[Set[int]] = None
        if cache is not None:
            matching = cache.matching.get(key)
        if matching is None:
            matching = self._matching_components(extensions)
            if cache is not None:
                cache.matching[key] = matching

        state = QueryState(
            seeker=seeker_uri,
            keywords=query_terms,
            k=k,
            semantic=semantic,
            extensions=extensions,
            extended_keyword_count=sum(len(ext) for ext in extensions.values()),
            matching=matching,
            hard_cap=(
                max_iterations if max_iterations is not None else DEFAULT_MAX_ITERATIONS
            ),
            time_budget=time_budget,
            started=started,
            batch_index=batch_index,
        )
        if matching:
            weight_bounds: Optional[List[float]] = None
            if cache is not None:
                weight_bounds = cache.weight_bounds.get(key)
            if weight_bounds is None:
                weight_bounds = self._keyword_weight_bounds(extensions, matching)
                if cache is not None:
                    cache.weight_bounds[key] = weight_bounds
            state.weight_bounds = weight_bounds
            state.border = self.prox_index.start_vector(seeker_uri)
            state.accumulated = np.zeros(self.prox_index.size, dtype=np.float64)
            state.accumulated[self.prox_index.node_index(seeker_uri)] = (
                self.score.c_gamma
            )
            state.seen = state.border != 0
        else:
            state.done = True
        return state

    def _check_stop(self, state: QueryState) -> bool:
        """Algorithm 2's pre-step check; sets ``terminated_by`` / ``done``."""
        if state.done:
            return True
        ordered = sorted(
            state.candidates.values(), key=lambda c: (-c.upper, -c.depth, c.uri)
        )
        tail_bound = self.score.prox_tail_bound(state.iterations)
        if self._stop_condition(ordered, state.k, state.threshold, tail_bound):
            state.terminated_by = "threshold"
            state.done = True
        elif state.iterations >= state.hard_cap:
            state.terminated_by = "anytime"
            state.done = True
        elif (
            state.time_budget is not None
            and time.perf_counter() - state.started > state.time_budget
        ):
            state.terminated_by = "anytime"
            state.done = True
        return state.done

    def _absorb_step(
        self,
        state: QueryState,
        cache: Optional[_BatchCache] = None,
        reached: Optional[np.ndarray] = None,
    ) -> None:
        """Fold one already-propagated border back into *state*.

        The caller has already advanced ``state.border`` /
        ``state.accumulated`` — per query through
        :meth:`ProximityIndex.step` (sequential) or for a whole batch at
        once through :meth:`ProximityIndex.step_many` (batched);
        everything here is per-query work, identical in both modes.
        *reached* is the border's nonzero mask when the caller already
        computed it batch-wide.
        """
        state.iterations += 1
        n = state.iterations

        if reached is None:
            reached = state.border != 0
        fresh = np.flatnonzero(reached & ~state.seen)
        state.seen |= reached
        if fresh.size:
            idents = self._index_component[fresh]
            for ident in np.unique(idents[idents >= 0]).tolist():
                if ident in state.processed:
                    continue
                state.processed.add(ident)
                if ident in state.matching:
                    added = self._gather_candidates(
                        self.component_index.component(ident),
                        state.extensions,
                        state.candidates,
                        cache=cache,
                        cache_key=state.cache_key,
                    )
                    state.candidates_examined += added
                    if added:
                        state.sources_dirty = True
                else:
                    state.components_discarded += 1

        if state.matching <= state.processed:
            state.threshold = 0.0
        else:
            state.threshold = self.score.score_bound(
                state.weight_bounds, self.score.unexplored_source_bound(n)
            )
        tail_bound = self.score.prox_tail_bound(n)
        self._update_bounds(state, tail_bound)
        state.candidate_uris.update(state.candidates.keys())
        self._clean_candidates(state.candidates, state.k, tail_bound)

    def _finish(self, state: QueryState) -> SearchResult:
        """Assemble the top-k answer and timing of a finished query."""
        results = self._assemble(state.candidates, state.k)
        wall_time = time.perf_counter() - state.started
        return SearchResult(
            seeker=state.seeker,
            keywords=state.keywords,
            k=state.k,
            results=results,
            iterations=state.iterations,
            terminated_by=state.terminated_by,
            elapsed_seconds=wall_time,
            candidates_examined=state.candidates_examined,
            components_processed=len(state.processed),
            components_discarded=state.components_discarded,
            candidate_uris=state.candidate_uris,
            extended_keyword_count=state.extended_keyword_count,
            batch_index=state.batch_index,
            wall_time=wall_time,
        )

    # ------------------------------------------------------------------
    # Main entry points
    # ------------------------------------------------------------------
    def search(
        self,
        seeker: object,
        keywords: Sequence[object],
        k: int = 5,
        semantic: bool = True,
        max_iterations: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SearchResult:
        """Answer the query ``(seeker, keywords)`` with the top-*k* results.

        ``semantic=False`` disables keyword extension (used by the
        semantic-reachability measure of Section 5.4).  *max_iterations* /
        *time_budget* activate the anytime termination of Section 4.1.

        Fully-default queries (no explicit budget) are answered from the
        LRU result cache when the same ``(seeker, keywords, semantic, k)``
        was recently finished; the replayed answer is identical, with only
        the timing fields refreshed.
        """
        started = time.perf_counter()
        self._fresh_caches()
        cache_key: Optional[Tuple] = None
        if (
            self._result_cache is not None
            and max_iterations is None
            and time_budget is None
        ):
            cache_key = (URI(seeker), _normalize_keywords(keywords), semantic, k)
            cached = self._result_cache.get(cache_key)
            if cached is not None:
                elapsed = time.perf_counter() - started
                return replace(
                    cached, batch_index=0, elapsed_seconds=elapsed, wall_time=elapsed
                )
        state = self._prepare_query(
            seeker,
            keywords,
            k=k,
            semantic=semantic,
            max_iterations=max_iterations,
            time_budget=time_budget,
            cache=self._plan_cache,
        )
        while not self._check_stop(state):
            state.border = self.prox_index.step(state.border) / self.score.gamma
            state.accumulated += self.score.c_gamma * state.border
            self._absorb_step(state, cache=self._plan_cache)
        result = self._finish(state)
        if cache_key is not None:
            self._result_cache.put(cache_key, result)
        return result

    def search_many(
        self,
        queries: Sequence[object],
        k: int = 5,
        semantic: bool = True,
        max_iterations: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> List[SearchResult]:
        """Answer many queries concurrently, advancing them in lock-step.

        Each element of *queries* is a ``(seeker, keywords)`` or
        ``(seeker, keywords, k)`` tuple, or any object with ``seeker`` /
        ``keywords`` (and optionally ``k``) attributes, e.g. a
        :class:`repro.queries.workload.QuerySpec`.  The default *k*,
        *semantic*, *max_iterations* and per-query *time_budget* apply to
        every query that does not carry its own ``k``.

        Every iteration stacks the borders of all still-active queries
        into one matrix and replaces N sparse mat-vec products with a
        single ``T^T @ B`` mat-mat product
        (:meth:`ProximityIndex.step_many`); a query's column is retired
        from the batch the moment its threshold stop (or anytime budget)
        fires.  Query-independent work — keyword extension, component
        matching, weight bounds and per-component connection fixpoints —
        is computed once per distinct keyword set and shared across the
        batch, and identical in-flight queries (same seeker, keywords,
        k and settings — hot queries under heavy traffic) are coalesced
        into a single exploration.  A query that is a
        :class:`~repro.engine.request.QueryRequest` (or a mapping with
        the corresponding keys) executes under its *own* ``semantic`` /
        ``max_iterations`` / ``time_budget``; the batch-level kwargs are
        defaults for queries that do not carry them.  Results are
        returned in input order and are bit-identical to running
        :meth:`search` on each query separately.
        """
        # Local import: the engine package sits above core and imports
        # this module at load time; by the time queries arrive both are
        # fully initialized.
        from ..engine.request import QueryRequest

        batch_started = time.perf_counter()
        self._fresh_caches()
        cache = self._plan_cache if self._plan_cache is not None else _BatchCache()
        replayed: Dict[Tuple, SearchResult] = {}
        unique_states: Dict[Tuple, QueryState] = {}
        assignment: List[Tuple] = []
        for batch_index, query in enumerate(queries):
            request = QueryRequest.from_obj(
                query,
                default_k=k,
                semantic=semantic,
                max_iterations=max_iterations,
                time_budget=time_budget,
            )
            key = (request.seeker, request.keywords, request.k, request.settings)
            assignment.append(key)
            if key in unique_states or key in replayed:
                continue
            # Budgeted requests bypass the result cache (their answers
            # depend on the budget), exactly as in :meth:`search`.
            cacheable = (
                self._result_cache is not None
                and request.max_iterations is None
                and request.time_budget is None
            )
            if cacheable:
                cached = self._result_cache.get(
                    (request.seeker, request.keywords, request.semantic, request.k)
                )
                if cached is not None:
                    replayed[key] = replace(
                        cached,
                        batch_index=batch_index,
                        wall_time=time.perf_counter() - batch_started,
                    )
                    continue
            unique_states[key] = self._prepare_query(
                request.seeker,
                request.keywords,
                k=request.k,
                semantic=request.semantic,
                max_iterations=request.max_iterations,
                time_budget=request.time_budget,
                batch_index=batch_index,
                cache=cache,
            )

        states = list(unique_states.values())
        active = [state for state in states if not self._check_stop(state)]
        borders: Optional[np.ndarray] = None
        while active:
            if borders is None:
                borders = np.column_stack([state.border for state in active])
            stepped = self.prox_index.step_many(borders)
            stepped /= self.score.gamma
            deltas = self.score.c_gamma * stepped
            # One transposed comparison gives every query's reached mask as
            # a contiguous row (column slices of the C-ordered stepped
            # matrix would be strided and slow to scan).
            reached_rows = stepped.T != 0
            for column, state in enumerate(active):
                state.border = stepped[:, column]
                state.accumulated += deltas[:, column]
                self._absorb_step(state, cache=cache, reached=reached_rows[column])
            keep = [
                column
                for column, state in enumerate(active)
                if not self._check_stop(state)
            ]
            if len(keep) == len(active):
                # Nobody retired: the stepped matrix simply becomes the next
                # border matrix, with no per-iteration re-stacking.
                borders = stepped
            else:
                kept = set(keep)
                for column, state in enumerate(active):
                    if column not in kept:
                        # A retired border is never read again; dropping the
                        # view releases this iteration's stepped matrix.
                        state.border = None
                active = [active[column] for column in keep]
                borders = np.ascontiguousarray(stepped[:, keep]) if active else None

        finished = {key: self._finish(state) for key, state in unique_states.items()}
        if self._result_cache is not None:
            for key, result in finished.items():
                seeker_key, keywords_key, k_key, settings = key
                semantic_key, max_iterations_key, time_budget_key = settings
                if max_iterations_key is None and time_budget_key is None:
                    self._result_cache.put(
                        (seeker_key, keywords_key, semantic_key, k_key), result
                    )
        finished.update(replayed)
        results: List[SearchResult] = []
        for batch_index, key in enumerate(assignment):
            primary = finished[key]
            if primary.batch_index == batch_index:
                results.append(primary)
            else:
                results.append(replace(primary, batch_index=batch_index))
        return results

    # ------------------------------------------------------------------
    def _assemble(self, candidates: Dict[URI, Candidate], k: int) -> List[RankedResult]:
        """Greedy top-k under the vertical-neighbor constraint."""
        ordered = sorted(
            candidates.values(), key=lambda c: (-c.upper, -c.depth, c.uri)
        )
        picked: List[Candidate] = []
        for candidate in ordered:
            if candidate.upper <= 0.0:
                continue
            if any(self._are_vertical_neighbors(candidate, other) for other in picked):
                continue
            picked.append(candidate)
            if len(picked) == k:
                break
        return [RankedResult(c.uri, c.lower, c.upper) for c in picked]
