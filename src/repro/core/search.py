"""The S3k top-k query answering algorithm (Section 4).

The instance is explored breadth-first from the seeker; at iteration ``n``
the *exploration border* holds the proximity mass of all length-``n``
social paths (``borderProx``, stepped by the sparse engine of
:mod:`repro.core.prox`).  Documents are collected into a candidate set as
their connected components are reached; every candidate carries a
``[lower, upper]`` score interval, refined as proximity accumulates, and a
*threshold* bounds the score of every document still unexplored.  The
search stops (Algorithm 2) when the current top-k window is free of
vertical neighbors and no other document — candidate or unexplored — can
beat it; an *anytime* mode instead stops on an iteration / time budget and
returns the best candidates by upper bound.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..rdf.terms import Term, URI, coerce_term
from .components import Component, ComponentIndex
from .concrete_score import S3kScore
from .connections import ComponentConnections, Connection
from .extension import extend_query
from .instance import S3Instance
from .prox import ProximityIndex
from .score import FeasibleScore

#: Interval slack absorbing float rounding when comparing bounds.
TIE_EPSILON = 1e-9
#: Hard cap on exploration depth (anytime fallback); the threshold stop
#: normally triggers far earlier.
DEFAULT_MAX_ITERATIONS = 300


@dataclass
class Candidate:
    """A candidate answer with its score interval."""

    uri: URI
    root: URI
    depth: int
    #: query keyword -> [(structural distance, source)]
    connections: Dict[Term, List[Tuple[int, URI]]]
    sources: Set[URI]
    lower: float = 0.0
    upper: float = math.inf


@dataclass(frozen=True)
class RankedResult:
    """One element of the returned top-k list."""

    uri: URI
    lower: float
    upper: float


@dataclass
class SearchResult:
    """Outcome of one S3k query."""

    seeker: URI
    keywords: Tuple[Term, ...]
    k: int
    results: List[RankedResult]
    iterations: int
    terminated_by: str
    elapsed_seconds: float
    candidates_examined: int
    components_processed: int
    components_discarded: int
    candidate_uris: Set[URI] = field(default_factory=set)
    extended_keyword_count: int = 0

    @property
    def uris(self) -> List[URI]:
        """Result URIs in rank order."""
        return [r.uri for r in self.results]


class S3kSearch:
    """Query engine over a saturated :class:`S3Instance`.

    Builds, once, the proximity index (normalized transition matrix), the
    connected-component index, and the inverted keyword indexes used for
    pruning and for the threshold bounds; then answers any number of
    queries.
    """

    def __init__(
        self,
        instance: S3Instance,
        score: Optional[FeasibleScore] = None,
        use_matrix: bool = True,
    ):
        if not instance.is_saturated:
            instance.saturate()
        self.instance = instance
        self.score: S3kScore = score if score is not None else S3kScore()
        self.prox_index = ProximityIndex(instance, use_matrix=use_matrix)
        self.component_index = ComponentIndex(instance)
        self._keyword_nodes: Dict[Term, List[URI]] = {}
        self._keyword_tags: Dict[Term, List[URI]] = {}
        self._component_stats: Dict[int, Tuple[int, int, int]] = {}
        self._build_keyword_indexes()

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _build_keyword_indexes(self) -> None:
        for root, document in self.instance.documents.items():
            for node in document.nodes():
                for keyword in set(node.keywords):
                    term = coerce_term(keyword)
                    self._keyword_nodes.setdefault(term, []).append(node.uri)
        for tag_uri, tag in self.instance.tags.items():
            if tag.keyword is not None:
                term = coerce_term(tag.keyword)
                self._keyword_tags.setdefault(term, []).append(tag_uri)
        for component in self.component_index.components():
            n_tags = len(component.tags)
            n_roots = len(component.roots)
            n_targets = sum(
                1 for node in component.nodes if self.instance.comments_on(node)
            )
            self._component_stats[component.ident] = (n_tags, n_roots, n_targets)

    # ------------------------------------------------------------------
    # Query-time helpers
    # ------------------------------------------------------------------
    def _matching_components(
        self, extensions: Dict[Term, Set[Term]]
    ) -> Set[int]:
        """Components whose keyword set intersects *every* extension."""
        matching: Optional[Set[int]] = None
        for extension in extensions.values():
            components: Set[int] = set()
            for keyword in extension:
                for node in self._keyword_nodes.get(keyword, ()):
                    component = self.component_index.component_of(node)
                    if component is not None:
                        components.add(component.ident)
                for tag in self._keyword_tags.get(keyword, ()):
                    component = self.component_index.component_of(tag)
                    if component is not None:
                        components.add(component.ident)
            matching = components if matching is None else (matching & components)
            if not matching:
                return set()
        return matching or set()

    def _keyword_weight_bounds(
        self, extensions: Dict[Term, Set[Term]], matching: Set[int]
    ) -> List[float]:
        """``W_k``: per-keyword bounds on the structural weight sums.

        For each query keyword, the maximum over the matching components of
        an upper bound on ``Σ_{(t,f,src)∈con(d,k)} η^{|pos(d,f)|}``:
        contains-connections are bounded by the component's occurrence
        count, relatedTo-connections by its tag count, commentsOn pairs by
        (#commented fragments) × (#roots + #tags).  See DESIGN.md §5.
        """
        bounds: List[float] = []
        for extension in extensions.values():
            per_component: Dict[int, int] = {}
            for keyword in extension:
                for node in self._keyword_nodes.get(keyword, ()):
                    component = self.component_index.component_of(node)
                    if component is not None and component.ident in matching:
                        per_component[component.ident] = (
                            per_component.get(component.ident, 0) + 1
                        )
                for tag in self._keyword_tags.get(keyword, ()):
                    component = self.component_index.component_of(tag)
                    if component is not None and component.ident in matching:
                        per_component[component.ident] = (
                            per_component.get(component.ident, 0) + 1
                        )
            best = 0.0
            for ident, occurrences in per_component.items():
                n_tags, n_roots, n_targets = self._component_stats[ident]
                bound = occurrences + n_tags + n_targets * (n_roots + n_tags)
                best = max(best, float(bound))
            bounds.append(best)
        return bounds

    def _gather_candidates(
        self,
        component: Component,
        extensions: Dict[Term, Set[Term]],
        candidates: Dict[URI, Candidate],
    ) -> int:
        """Run the connection fixpoint on *component*, add its candidates."""
        connections_index = ComponentConnections(self.instance, component, extensions)
        added = 0
        for candidate_uri in connections_index.candidate_documents():
            if candidate_uri in candidates:
                continue
            document = self.instance.document_of(candidate_uri)
            per_keyword: Dict[Term, List[Tuple[int, URI]]] = {}
            sources: Set[URI] = set()
            for keyword in extensions:
                resolved = connections_index.connections(candidate_uri, keyword)
                per_keyword[keyword] = [(c.distance, c.source) for c in resolved]
                sources.update(c.source for c in resolved)
            candidates[candidate_uri] = Candidate(
                uri=candidate_uri,
                root=document.uri,
                depth=document.node(candidate_uri).depth,
                connections=per_keyword,
                sources=sources,
            )
            added += 1
        return added

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def _update_bounds(
        self,
        candidates: Dict[URI, Candidate],
        accumulated: np.ndarray,
        tail_bound: float,
    ) -> None:
        score = self.score
        source_prox: Dict[URI, float] = {}
        for candidate in candidates.values():
            for source in candidate.sources:
                if source not in source_prox:
                    source_prox[source] = self.prox_index.source_proximity(
                        accumulated, source
                    )
        for candidate in candidates.values():
            lower = 1.0
            upper = 1.0
            for connections in candidate.connections.values():
                lower_sum = 0.0
                upper_sum = 0.0
                for distance, source in connections:
                    weight = score.structural_weight(distance)
                    prox = source_prox[source]
                    lower_sum += weight * prox
                    upper_sum += weight * min(1.0, prox + tail_bound)
                lower *= lower_sum
                upper *= upper_sum
            candidate.lower = lower
            candidate.upper = upper

    # ------------------------------------------------------------------
    # Vertical-neighbor utilities
    # ------------------------------------------------------------------
    def _are_vertical_neighbors(self, a: Candidate, b: Candidate) -> bool:
        if a.root != b.root:
            return False
        document = self.instance.documents[a.root]
        dewey_a = document.node(a.uri).dewey
        dewey_b = document.node(b.uri).dewey
        shorter, longer = sorted((dewey_a, dewey_b), key=len)
        return longer[: len(shorter)] == shorter

    def _clean_candidates(
        self, candidates: Dict[URI, Candidate], k: int, tail_bound: float
    ) -> None:
        """CleanCandidatesList: drop provably-excluded candidates."""
        if not candidates:
            return
        # (i) candidates that k others surely beat.  The k reference lower
        # bounds must come from pairwise NON-neighbor candidates: vertical
        # neighbors can occupy only one answer slot, so a greedy
        # neighbor-free selection by lower bound is used.  Any neighbor-free
        # k-set with min lower L forces the answer's k-th score above L,
        # hence candidates with upper < L can never appear.
        by_lower = sorted(
            candidates.values(), key=lambda c: (-c.lower, -c.depth, c.uri)
        )
        reference: List[Candidate] = []
        for candidate in by_lower:
            if any(self._are_vertical_neighbors(candidate, r) for r in reference):
                continue
            reference.append(candidate)
            if len(reference) == k:
                break
        if len(reference) == k:
            kth_lower = reference[-1].lower
            for uri in [
                u
                for u, c in candidates.items()
                if c.upper < kth_lower - TIE_EPSILON
            ]:
                del candidates[uri]
        # (ii) candidates dominated by a vertical neighbor.
        by_root: Dict[URI, List[Candidate]] = {}
        for candidate in candidates.values():
            by_root.setdefault(candidate.root, []).append(candidate)
        to_remove: Set[URI] = set()
        converged = tail_bound < TIE_EPSILON
        for group in by_root.values():
            if len(group) < 2:
                continue
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    if not self._are_vertical_neighbors(a, b):
                        continue
                    if a.upper < b.lower - TIE_EPSILON:
                        to_remove.add(a.uri)
                    elif b.upper < a.lower - TIE_EPSILON:
                        to_remove.add(b.uri)
                    elif converged and abs(a.upper - b.upper) <= TIE_EPSILON:
                        # Breakable tie (Theorem 4.2): keep the deeper,
                        # more specific fragment.
                        to_remove.add(a.uri if a.depth <= b.depth else b.uri)
        for uri in to_remove:
            candidates.pop(uri, None)

    # ------------------------------------------------------------------
    # Stop condition (Algorithm 2)
    # ------------------------------------------------------------------
    def _stop_condition(
        self, ordered: List[Candidate], k: int, threshold: float
    ) -> bool:
        if not ordered:
            return threshold <= TIE_EPSILON
        top = ordered[:k]
        for i, a in enumerate(top):
            for b in top[i + 1 :]:
                if self._are_vertical_neighbors(a, b):
                    return False
        min_top_lower = min(c.lower for c in top)
        next_upper = ordered[k].upper if len(ordered) > k else 0.0
        if len(ordered) < k:
            # Fewer candidates than requested: stop once no unexplored
            # document can join the answer.
            return threshold <= TIE_EPSILON
        return max(next_upper, threshold) <= min_top_lower + TIE_EPSILON

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def search(
        self,
        seeker: object,
        keywords: Sequence[object],
        k: int = 5,
        semantic: bool = True,
        max_iterations: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SearchResult:
        """Answer the query ``(seeker, keywords)`` with the top-*k* results.

        ``semantic=False`` disables keyword extension (used by the
        semantic-reachability measure of Section 5.4).  *max_iterations* /
        *time_budget* activate the anytime termination of Section 4.1.
        """
        started = time.perf_counter()
        seeker_uri = URI(seeker)
        if seeker_uri not in self.instance.users:
            raise KeyError(f"unknown seeker: {seeker_uri}")
        query_terms: List[Term] = []
        for keyword in keywords:
            term = keyword if isinstance(keyword, URI) else coerce_term(keyword)
            if term not in query_terms:
                query_terms.append(term)
        if semantic:
            extensions = extend_query(self.instance, query_terms)
        else:
            extensions = {term: {term} for term in query_terms}
        extended_count = sum(len(ext) for ext in extensions.values())

        matching = self._matching_components(extensions)
        hard_cap = max_iterations if max_iterations is not None else DEFAULT_MAX_ITERATIONS

        candidates: Dict[URI, Candidate] = {}
        processed: Set[int] = set()
        discarded = 0
        examined = 0
        candidate_uris: Set[URI] = set()
        terminated_by = "threshold"
        n = 0

        if matching:
            weight_bounds = self._keyword_weight_bounds(extensions, matching)
            border = self.prox_index.start_vector(seeker_uri)
            accumulated = np.zeros(self.prox_index.size, dtype=np.float64)
            accumulated[self.prox_index.node_index(seeker_uri)] = self.score.c_gamma
            seen = set(np.nonzero(border)[0].tolist())
            threshold = math.inf

            while True:
                ordered = sorted(
                    candidates.values(), key=lambda c: (-c.upper, -c.depth, c.uri)
                )
                if self._stop_condition(ordered, k, threshold):
                    terminated_by = "threshold"
                    break
                if n >= hard_cap:
                    terminated_by = "anytime"
                    break
                if time_budget is not None and time.perf_counter() - started > time_budget:
                    terminated_by = "anytime"
                    break

                n += 1
                border = self.prox_index.step(border) / self.score.gamma
                accumulated += self.score.c_gamma * border

                for index in np.nonzero(border)[0].tolist():
                    if index in seen:
                        continue
                    seen.add(index)
                    uri = self.prox_index.node_uri(index)
                    if not (
                        self.instance.is_document_node(uri) or self.instance.is_tag(uri)
                    ):
                        continue
                    component = self.component_index.component_of(uri)
                    if component is None or component.ident in processed:
                        continue
                    processed.add(component.ident)
                    if component.ident in matching:
                        added = self._gather_candidates(component, extensions, candidates)
                        examined += added
                    else:
                        discarded += 1

                if matching <= processed:
                    threshold = 0.0
                else:
                    threshold = self.score.score_bound(
                        weight_bounds, self.score.unexplored_source_bound(n)
                    )
                tail_bound = self.score.prox_tail_bound(n)
                self._update_bounds(candidates, accumulated, tail_bound)
                candidate_uris.update(candidates.keys())
                self._clean_candidates(candidates, k, tail_bound)

        results = self._assemble(candidates, k)
        return SearchResult(
            seeker=seeker_uri,
            keywords=tuple(query_terms),
            k=k,
            results=results,
            iterations=n,
            terminated_by=terminated_by,
            elapsed_seconds=time.perf_counter() - started,
            candidates_examined=examined,
            components_processed=len(processed),
            components_discarded=discarded,
            candidate_uris=candidate_uris,
            extended_keyword_count=extended_count,
        )

    # ------------------------------------------------------------------
    def _assemble(self, candidates: Dict[URI, Candidate], k: int) -> List[RankedResult]:
        """Greedy top-k under the vertical-neighbor constraint."""
        ordered = sorted(
            candidates.values(), key=lambda c: (-c.upper, -c.depth, c.uri)
        )
        picked: List[Candidate] = []
        for candidate in ordered:
            if candidate.upper <= 0.0:
                continue
            if any(self._are_vertical_neighbors(candidate, other) for other in picked):
                continue
            picked.append(candidate)
            if len(picked) == k:
                break
        return [RankedResult(c.uri, c.lower, c.upper) for c in picked]
