"""The S3k top-k query answering algorithm (Section 4).

The instance is explored breadth-first from the seeker; at iteration ``n``
the *exploration border* holds the proximity mass of all length-``n``
social paths (``borderProx``, stepped by the sparse engine of
:mod:`repro.core.prox`).  Documents are collected into a candidate set as
their connected components are reached; every candidate carries a
``[lower, upper]`` score interval, refined as proximity accumulates, and a
*threshold* bounds the score of every document still unexplored.  The
search stops (Algorithm 2) when the greedy top-k assembly is provably
final — no candidate or unexplored document can change the picks; an
*anytime* mode instead stops on an iteration / time budget and returns
the best candidates by upper bound.

Two execution modes share one code path: :meth:`S3kSearch.search`
answers a single query, and :meth:`S3kSearch.search_many` advances a
whole batch of :class:`QueryState` objects in lock-step over the shared
immutable indexes, one ``T^T @ B`` mat-mat proximity step per iteration.
"""

from __future__ import annotations

import math
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..rdf.namespaces import (
    NETWORK_EDGE_PROPERTIES,
    RDF_TYPE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
)
from ..rdf.saturation import saturate_from
from ..rdf.terms import Term, URI, coerce_term
from .components import Component, ComponentIndex
from .concrete_score import S3kScore
from .connection_index import ConnectionIndex
from .connections import ComponentConnections, Connection, resolve_connections
from .extension import extend_query
from .instance import CommentEdgeDelta, MutationDelta, S3Instance, TagDelta
from .prox import ProximityIndex
from .score import FeasibleScore

#: Interval slack absorbing float rounding when comparing bounds.
TIE_EPSILON = 1e-9
#: Hard cap on exploration depth (anytime fallback); the threshold stop
#: normally triggers far earlier.
DEFAULT_MAX_ITERATIONS = 300

#: minimum iterations between batch-layout rebuilds while states keep
#: growing (a rebuild concatenates every active state's layout; during
#: the early discovery storm the per-state refresh path is cheaper)
_REBUILD_INTERVAL = 4

#: Shared empty index array for iterations that reach no new nodes.


@dataclass
class Candidate:
    """A candidate answer with its score interval."""

    uri: URI
    root: URI
    depth: int
    #: query keyword -> [(structural distance, source)]
    connections: Dict[Term, List[Tuple[int, URI]]]
    sources: Set[URI]
    #: Dewey identifier of the fragment, cached for neighbor checks
    dewey: Tuple[int, ...] = ()
    lower: float = 0.0
    upper: float = math.inf
    #: flat views of ``connections`` shared with the candidate template —
    #: connection count per keyword, precomputed structural weights
    #: (``η^distance``) and sources in keyword order — from which
    #: :class:`_BoundsLayout` is rebuilt with array gathers instead of
    #: per-candidate dict walks
    kw_counts: Tuple[int, ...] = ()
    conn_weights: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )
    conn_sources: List[URI] = field(default_factory=list)


@dataclass(frozen=True)
class RankedResult:
    """One element of the returned top-k list."""

    uri: URI
    lower: float
    upper: float


@dataclass
class SearchResult:
    """Outcome of one S3k query."""

    seeker: URI
    keywords: Tuple[Term, ...]
    k: int
    results: List[RankedResult]
    iterations: int
    terminated_by: str
    elapsed_seconds: float
    candidates_examined: int
    components_processed: int
    components_discarded: int
    candidate_uris: Set[URI] = field(default_factory=set)
    extended_keyword_count: int = 0
    #: Position of the query within its batch (0 for sequential queries).
    batch_index: int = 0
    #: Submission-to-answer latency in seconds.  Equals
    #: ``elapsed_seconds`` for sequential queries; under batched execution
    #: it includes the time spent advancing the other queries in lock-step,
    #: which is what a caller waiting on this query actually observes.
    wall_time: float = 0.0

    @property
    def uris(self) -> List[URI]:
        """Result URIs in rank order."""
        return [r.uri for r in self.results]


@dataclass
class QueryState:
    """Per-query exploration state (Section 4), separate from the indexes.

    Everything the S3k loop mutates while answering one query lives here:
    the proximity border and its accumulated mass, the candidate set with
    its score intervals, the unexplored-document threshold, and the
    termination bookkeeping.  The engine itself only holds shared immutable
    indexes, so any number of ``QueryState`` objects can be advanced
    concurrently over the same :class:`S3kSearch` — the seam that batched
    (and later sharded / async) execution builds on.
    """

    seeker: URI
    keywords: Tuple[Term, ...]
    k: int
    semantic: bool
    extensions: Dict[Term, Set[Term]]
    extended_keyword_count: int
    matching: Set[int]
    hard_cap: int
    time_budget: Optional[float]
    started: float
    batch_index: int = 0
    # -- exploration state (None / empty until prepared) ----------------
    border: Optional[np.ndarray] = None
    accumulated: Optional[np.ndarray] = None
    weight_bounds: List[float] = field(default_factory=list)
    #: boolean mask of node indexes already reached by some path — kept as
    #: an array so each iteration only Python-loops over the newly reached
    #: indexes (vectorized diff against the border's nonzero pattern)
    seen: Optional[np.ndarray] = None
    threshold: float = math.inf
    #: ``weight_bounds`` pre-tupled once so the per-iteration threshold
    #: schedule lookup hashes a ready-made key
    weight_key: Tuple[float, ...] = ()
    #: latched once ``matching ⊆ processed`` — the subset test is O(|matching|)
    #: and monotone (``processed`` only grows), so it never needs re-checking
    all_matched: bool = False
    #: flat index layout driving the vectorized bound updates; owns the
    #: authoritative ``lowers`` / ``uppers`` arrays (scattered back into
    #: the :class:`Candidate` objects lazily, only before slow paths)
    layout: Optional["_BoundsLayout"] = None
    #: set while the state's layout has grown past the batch-wide layout
    #: snapshot — the state refreshes per-state until the next rebuild
    needs_own_refresh: bool = False
    #: nonzero rows of ``seen`` captured at batch retirement (``seen``
    #: itself is dropped with the column views); feeds the result cache's
    #: scoped delta eviction
    visited_rows: Optional[np.ndarray] = None
    candidates: Dict[URI, Candidate] = field(default_factory=dict)
    processed: Set[int] = field(default_factory=set)
    candidate_uris: Set[URI] = field(default_factory=set)
    iterations: int = 0
    candidates_examined: int = 0
    components_discarded: int = 0
    terminated_by: str = "threshold"
    done: bool = False

    @property
    def cache_key(self) -> Tuple[Tuple[Term, ...], bool]:
        """Key under which query-independent work can be shared."""
        return (self.keywords, self.semantic)


def _concat(parts: List[np.ndarray], dtype) -> np.ndarray:
    return np.concatenate(parts) if parts else np.empty(0, dtype=dtype)


class _ComponentLayout:
    """Flat bounds-refresh structure of one component's candidate templates.

    The segment arrays (connection weights, per-keyword / per-candidate
    offsets, deduplicated source slots with their closed-neighborhood
    index runs, vertical-neighbor root groups) depend only on the
    component and the extended keyword set — never on the seeker — so one
    block is built per ``(component, keywords)`` pair, cached next to the
    candidate templates in :class:`_BatchCache`, and shared by every
    query state that gathers the component.  Per-state and batch-wide
    layouts are pure concatenations of these blocks with offset shifts.

    Positions are *template-indexed*: position ``p`` is the ``p``-th
    template of the component, whether or not it is live (a candidate
    with an empty connection list for some keyword has a constant
    ``[0, 0]`` interval — the score is a product over keywords — and is
    settled at creation, outside the refresh).  Source proximity is
    deduplicated per component: a source's proximity is a ``reduceat``
    over its own sorted neighborhood run, so the slot arrangement cannot
    change the float results.
    """

    __slots__ = (
        "n_all",
        "n_live",
        "live",
        "conn_weight",
        "conn_src",
        "kw_offsets",
        "cand_offsets",
        "n_conns",
        "n_kws",
        "source_concat",
        "source_offsets",
        "nonempty",
        "n_slots",
        "group_pos",
        "group_offsets",
        "depths",
        "uris",
        "pair_shallow",
        "pair_deep",
    )


class _BoundsLayout:
    """Append-only flat layout of one query's candidate/connection state.

    Grows by whole :class:`_ComponentLayout` blocks as exploration
    discovers matching components; :meth:`ensure` concatenates the block
    arrays (with offset shifts) only when something was appended since
    the last build.  Candidate positions are stable for the lifetime of
    the query — cleaning removes candidates from the *dict*, never from
    the arrays; stale rows merely keep refreshing (their bounds stay
    valid, see the screen soundness notes on the kernel methods).

    The layout owns the authoritative ``lowers`` / ``uppers`` arrays,
    refreshed once per iteration (per state or batch-wide).  The
    :class:`Candidate` objects' ``lower`` / ``upper`` attributes are
    written back lazily by :meth:`S3kSearch._sync_bounds`, only when a
    slow path (full clean / full stop replay / final assembly) is about
    to read them; ``synced`` tracks whether that write-back is current.

    ``removed`` marks positions whose candidate the exact clean has
    dropped from the dict.  The rows still refresh (keeping the arrays a
    plain superset image), but the certification screens substitute
    neutral values for them — without the mask, the very gap that caused
    a removal keeps flagging no-op full cleans forever.
    """

    __slots__ = (
        "blocks",
        "built_blocks",
        "candidates",
        "dirty",
        "synced",
        "n_all",
        "n_live",
        "live_pos",
        "lowers",
        "uppers",
        "removed",
        "n_removed",
        "screen_cache",
        "batch_stats",
        "conn_weight",
        "conn_src",
        "kw_offsets",
        "cand_offsets",
        "source_concat",
        "source_offsets",
        "nonempty",
        "n_slots",
        "group_pos",
        "group_offsets",
        "conn_base",
        "kw_base",
        "group_base",
        "depths",
        "uris",
        "uri_rank",
        "pair_shallow",
        "pair_deep",
        "pair_set",
        "has_duplicates",
    )

    def __init__(self) -> None:
        self.blocks: List[_ComponentLayout] = []
        self.built_blocks = 0
        self.candidates: List[Candidate] = []
        self.dirty = False
        self.synced = True
        self.n_all = 0
        self.n_live = 0
        self.live_pos = np.empty(0, dtype=np.intp)
        self.lowers = np.empty(0, dtype=np.float64)
        self.uppers = np.empty(0, dtype=np.float64)
        self.removed = np.zeros(0, dtype=bool)
        self.n_removed = 0
        self.screen_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        #: ``(min raw upper, max raw lower)`` over the live rows of the
        #: last refresh, recorded by whichever refresh pass ran (batch
        #: segment reductions or the per-state pass).  Raw means removed
        #: rows are included, which only loosens the bracket — the screens
        #: use it for sound one-compare fast paths.
        self.batch_stats: Optional[Tuple[float, float]] = None
        self.conn_weight = np.empty(0, dtype=np.float64)
        self.conn_src = np.empty(0, dtype=np.intp)
        self.kw_offsets = np.empty(0, dtype=np.intp)
        self.cand_offsets = np.empty(0, dtype=np.intp)
        self.source_concat = np.empty(0, dtype=np.int64)
        self.source_offsets = np.empty(0, dtype=np.intp)
        self.nonempty = np.empty(0, dtype=np.intp)
        self.n_slots = 0
        self.group_pos = np.empty(0, dtype=np.intp)
        self.group_offsets = np.empty(0, dtype=np.intp)
        self.conn_base = 0
        self.kw_base = 0
        self.group_base = 0
        self.depths = np.empty(0, dtype=np.intp)
        self.uris = np.empty(0, dtype=np.str_)
        #: tie-break rank: position → index in the ascending-URI order of
        #: all positions (URIs are unique across components)
        self.uri_rank = np.empty(0, dtype=np.intp)
        self.pair_shallow = np.empty(0, dtype=np.intp)
        self.pair_deep = np.empty(0, dtype=np.intp)
        #: ``(min_pos, max_pos)`` membership view of the pair arrays
        self.pair_set: Set[Tuple[int, int]] = set()
        #: defensive: a candidate appeared at two positions — the exact
        #: screens assume positions ↔ dict members, so they stand down
        self.has_duplicates = False

    def append(self, block: _ComponentLayout, candidates: List[Candidate]) -> None:
        """Add one gathered component's block (candidates in template order)."""
        self.blocks.append(block)
        self.candidates.extend(candidates)
        self.dirty = True

    def ensure(self) -> None:
        """Concatenate newly appended block arrays onto the built layout.

        Positions are append-only, so only the blocks added since the
        last build need shifting and concatenating — the already-built
        arrays are reused verbatim as the first concat operand (a state
        that grows over many iterations pays O(total) copying per growth
        either way, but not a Python loop over every old block).
        """
        if not self.dirty:
            return
        if self.built_blocks == 0 and len(self.blocks) == 1:
            # First build from a single block: adopt the cached block
            # arrays directly (every base offset is zero).  They are
            # shared read-only across states; the per-state interval
            # arrays are still allocated fresh below.
            block = self.blocks[0]
            if block.n_live:
                self.live_pos = block.live
                self.n_live = block.n_live
                self.conn_weight = block.conn_weight
                self.conn_src = block.conn_src
                self.kw_offsets = block.kw_offsets
                self.cand_offsets = block.cand_offsets
                self.source_concat = block.source_concat
                self.source_offsets = block.source_offsets
                self.nonempty = block.nonempty
            self.built_blocks = 1
            self.n_all = block.n_all
            self.conn_base = block.n_conns
            self.kw_base = block.n_kws
            self.n_slots = block.n_slots
            self.group_pos = block.group_pos
            self.group_offsets = block.group_offsets
            self.group_base = int(block.group_pos.size)
            self.depths = block.depths
            self.uris = block.uris
            self.pair_shallow = block.pair_shallow
            self.pair_deep = block.pair_deep
            if block.pair_shallow.size:
                self.pair_set = set(
                    zip(
                        np.minimum(
                            block.pair_shallow, block.pair_deep
                        ).tolist(),
                        np.maximum(
                            block.pair_shallow, block.pair_deep
                        ).tolist(),
                    )
                )
            self._finish_build()
            return
        live_parts: List[np.ndarray] = [self.live_pos]
        weight_parts: List[np.ndarray] = [self.conn_weight]
        src_parts: List[np.ndarray] = [self.conn_src]
        kw_parts: List[np.ndarray] = [self.kw_offsets]
        cand_parts: List[np.ndarray] = [self.cand_offsets]
        concat_parts: List[np.ndarray] = [self.source_concat]
        offset_parts: List[np.ndarray] = [self.source_offsets]
        nonempty_parts: List[np.ndarray] = [self.nonempty]
        group_parts: List[np.ndarray] = [self.group_pos]
        group_offset_parts: List[np.ndarray] = [self.group_offsets]
        depth_parts: List[np.ndarray] = [self.depths]
        uri_parts: List[np.ndarray] = [self.uris]
        pair_shallow_parts: List[np.ndarray] = [self.pair_shallow]
        pair_deep_parts: List[np.ndarray] = [self.pair_deep]
        cand_base = self.n_all
        conn_base = self.conn_base
        kw_base = self.kw_base
        slot_base = self.n_slots
        source_base = int(self.source_concat.size)
        group_base = self.group_base
        for block in self.blocks[self.built_blocks :]:
            if block.n_live:
                live_parts.append(block.live + cand_base)
                weight_parts.append(block.conn_weight)
                src_parts.append(block.conn_src + slot_base)
                kw_parts.append(block.kw_offsets + conn_base)
                cand_parts.append(block.cand_offsets + kw_base)
                concat_parts.append(block.source_concat)
                offset_parts.append(block.source_offsets + source_base)
                nonempty_parts.append(block.nonempty + slot_base)
            if block.group_pos.size:
                group_parts.append(block.group_pos + cand_base)
                group_offset_parts.append(block.group_offsets + group_base)
            depth_parts.append(block.depths)
            uri_parts.append(block.uris)
            if block.pair_shallow.size:
                shallow = block.pair_shallow + cand_base
                deep = block.pair_deep + cand_base
                pair_shallow_parts.append(shallow)
                pair_deep_parts.append(deep)
                self.pair_set.update(
                    zip(
                        np.minimum(shallow, deep).tolist(),
                        np.maximum(shallow, deep).tolist(),
                    )
                )
            cand_base += block.n_all
            conn_base += block.n_conns
            kw_base += block.n_kws
            slot_base += block.n_slots
            source_base += block.source_concat.size
            group_base += block.group_pos.size
        self.built_blocks = len(self.blocks)
        self.n_all = cand_base
        self.conn_base = conn_base
        self.kw_base = kw_base
        self.live_pos = np.concatenate(live_parts)
        self.n_live = int(self.live_pos.size)
        self.conn_weight = np.concatenate(weight_parts)
        self.conn_src = np.concatenate(src_parts)
        self.kw_offsets = np.concatenate(kw_parts)
        self.cand_offsets = np.concatenate(cand_parts)
        self.source_concat = np.concatenate(concat_parts)
        self.source_offsets = np.concatenate(offset_parts)
        self.nonempty = np.concatenate(nonempty_parts)
        self.n_slots = slot_base
        self.group_pos = np.concatenate(group_parts)
        self.group_offsets = np.concatenate(group_offset_parts)
        self.group_base = group_base
        self.depths = np.concatenate(depth_parts)
        self.uris = np.concatenate(uri_parts)
        self.pair_shallow = np.concatenate(pair_shallow_parts)
        self.pair_deep = np.concatenate(pair_deep_parts)
        self._finish_build()

    def _finish_build(self) -> None:
        # Ascending-URI rank across all positions, the static third key of
        # the exact orderings ``(-bound, -depth, uri)`` the screens
        # replay.  numpy unicode comparison is code-point-wise exactly
        # like ``str``; the stable kind preserves position order on ties
        # (duplicate URIs), matching the Python sort it replaces.
        order = np.argsort(self.uris, kind="stable")
        rank = np.empty(self.n_all, dtype=np.intp)
        rank[order] = np.arange(self.n_all, dtype=np.intp)
        self.uri_rank = rank
        # Settled positions stay 0.0 forever; live positions are rewritten
        # by the very next bounds refresh, so plain zeros are enough.  The
        # removed mask keeps its prefix — cleaned positions stay cleaned.
        self.lowers = np.zeros(self.n_all, dtype=np.float64)
        self.uppers = np.zeros(self.n_all, dtype=np.float64)
        grown = np.zeros(self.n_all, dtype=bool)
        grown[: self.removed.size] = self.removed
        self.removed = grown
        self.screen_cache = None
        self.batch_stats = None
        self.dirty = False


class _BatchLayout:
    """Concatenation of the active states' layouts for one shared refresh.

    Scales every source gather index by the column count (*row_stride* =
    number of active queries) and adds the query column, so a single flat
    gather against the C-contiguous column-major ``(size, n_active)``
    accumulated matrix feeds one ``reduceat`` pass refreshing every
    query's ``[lower, upper]`` intervals.  Rebuilt only when enough
    states gathered new candidates or the batch compacted (column
    retirement changes the stride).
    """

    __slots__ = (
        "gather",
        "source_offsets",
        "nonempty",
        "n_slots",
        "conn_src",
        "conn_weight",
        "kw_offsets",
        "cand_offsets",
        "scatter",
        "seg_starts",
    )

    def __init__(self, active: List["QueryState"], row_stride: int) -> None:
        gather_parts: List[np.ndarray] = []
        offset_parts: List[np.ndarray] = []
        nonempty_parts: List[np.ndarray] = []
        src_parts: List[np.ndarray] = []
        weight_parts: List[np.ndarray] = []
        kw_parts: List[np.ndarray] = []
        cand_parts: List[np.ndarray] = []
        #: (layout, start, count, live positions) per included state —
        #: output rows ``[start, start + count)`` scatter into ``layout``.
        #: *count* / *live positions* are snapshots from build time: a
        #: layout that grows later refreshes per-state until the next
        #: rebuild, and the snapshot keeps the old segment widths aligned
        #: (the prefix rows it writes are still the same candidates).
        self.scatter: List[Tuple[_BoundsLayout, int, int, np.ndarray]] = []
        conn_base = kw_base = slot_base = source_base = 0
        out_base = 0
        for row, state in enumerate(active):
            layout = state.layout
            if layout is None:
                continue
            layout.ensure()
            if not layout.n_live:
                continue
            gather_parts.append(layout.source_concat * np.int64(row_stride) + row)
            offset_parts.append(layout.source_offsets + source_base)
            nonempty_parts.append(layout.nonempty + slot_base)
            src_parts.append(layout.conn_src + slot_base)
            weight_parts.append(layout.conn_weight)
            kw_parts.append(layout.kw_offsets + conn_base)
            cand_parts.append(layout.cand_offsets + kw_base)
            self.scatter.append((layout, out_base, layout.n_live, layout.live_pos))
            conn_base += layout.conn_weight.size
            kw_base += layout.kw_offsets.size
            slot_base += layout.n_slots
            source_base += layout.source_concat.size
            out_base += layout.n_live
        self.gather = _concat(gather_parts, np.int64)
        self.source_offsets = _concat(offset_parts, np.intp)
        self.nonempty = _concat(nonempty_parts, np.intp)
        self.n_slots = slot_base
        self.conn_src = _concat(src_parts, np.intp)
        self.conn_weight = _concat(weight_parts, np.float64)
        self.kw_offsets = _concat(kw_parts, np.intp)
        self.cand_offsets = _concat(cand_parts, np.intp)
        #: start row of each scattered state's segment, for the one-pass
        #: per-segment ``reduceat`` certification stats
        self.seg_starts = np.asarray(
            [start for _, start, _, _ in self.scatter], dtype=np.intp
        )


class _LRUDict(OrderedDict):
    """An ``OrderedDict`` evicting least-recently-used entries past *maxsize*."""

    def __init__(self, maxsize: int):
        super().__init__()
        self.maxsize = maxsize

    def get(self, key, default=None):
        try:
            value = super().__getitem__(key)
        except KeyError:
            return default
        self.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self.maxsize:
            self.popitem(last=False)


class _ResultMeta:
    """Delta-eviction footprint of one cached answer.

    Records everything the answer's bits depended on beyond the immutable
    indexes: the raw query keywords plus every extension atom (keyword
    extensions and inverted-index lookups), the matching component idents
    (weight bounds and candidate gathering), and the dense proximity rows
    the exploration reached (the stepping itself — a row the border never
    touched cannot change the answer when patched).
    """

    __slots__ = ("visited", "matching", "terms")

    def __init__(
        self,
        visited: np.ndarray,
        matching: frozenset,
        terms: frozenset,
    ) -> None:
        self.visited = visited
        self.matching = matching
        self.terms = terms


class _ResultCache:
    """Bounded LRU of finished answers, keyed ``(seeker, keywords,
    semantic, k)``.

    Generalizes the in-batch coalescing of identical queries across
    batches: hot / trending traffic repeats whole queries, and a finished
    threshold- or hard-cap-terminated answer is fully deterministic, so it
    can be replayed without re-exploring.  Queries carrying a *time_budget*
    or explicit *max_iterations* bypass the cache (their answers depend on
    the budget).  Hit / miss counters feed
    :func:`repro.eval.reporting.format_counter_table`.  Each entry carries
    a :class:`_ResultMeta` footprint so a mutation delta evicts only the
    answers it can actually change.
    """

    __slots__ = ("hits", "misses", "_entries")

    def __init__(self, maxsize: int):
        self.hits = 0
        self.misses = 0
        self._entries: _LRUDict = _LRUDict(maxsize)

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _snapshot(result: SearchResult) -> SearchResult:
        """A copy owning its mutable fields, so neither the caller that
        produced the entry nor any caller replaying it can corrupt the
        cached answer (``RankedResult`` elements are frozen)."""
        return replace(
            result,
            results=list(result.results),
            candidate_uris=set(result.candidate_uris),
        )

    def get(self, key: Tuple) -> Optional[SearchResult]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return self._snapshot(entry[0])

    def put(
        self,
        key: Tuple,
        result: SearchResult,
        meta: Optional[_ResultMeta] = None,
    ) -> None:
        self._entries[key] = (self._snapshot(result), meta)

    def apply_delta(
        self,
        stale_terms: Set[Term],
        touched: Set[int],
        affected_rows: np.ndarray,
        old_to_new: Optional[np.ndarray],
    ) -> int:
        """Scoped eviction after a mutation delta; returns entries dropped.

        An answer is dropped when its footprint intersects the delta —
        its terms meet a new schema object or tag keyword, its matching
        components were patched, or its exploration visited a recomputed
        transition row.  Survivors get their visited rows remapped into
        the grown universe's index space; entries without a footprint are
        dropped unconditionally.
        """
        stale_keys: List[Tuple] = []
        for key, entry in list(self._entries.items()):
            meta = entry[1]
            if meta is None:
                stale_keys.append(key)
                continue
            if meta.terms & stale_terms or meta.matching & touched:
                stale_keys.append(key)
                continue
            visited = meta.visited
            if old_to_new is not None and visited.size:
                visited = old_to_new[visited]
                meta.visited = visited
            if (
                visited.size
                and affected_rows.size
                and np.isin(visited, affected_rows).any()
            ):
                stale_keys.append(key)
        for key in stale_keys:
            del self._entries[key]
        return len(stale_keys)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "maxsize": self._entries.maxsize,
        }


class _BatchCache:
    """Memoization of seeker-independent query plans.

    Everything cached here depends only on the immutable indexes and the
    (keywords, semantic) pair — never on the seeker — so queries that
    repeat keywords (the common case under heavy traffic) share the
    keyword extension, the component matching, the per-keyword weight
    bounds and, most importantly, the per-component candidate templates.
    Unbounded instances live for one :meth:`S3kSearch.search_many` batch
    (PR 1's behavior); with *maxsize* the engine keeps one bounded,
    LRU-evicting instance alive across batches and sequential queries, so
    unique-seeker traffic that repeats keywords never re-gathers.
    """

    def __init__(self, maxsize: Optional[int] = None) -> None:
        self.maxsize = maxsize
        factory = (lambda: _LRUDict(maxsize)) if maxsize else dict
        #: (keywords, semantic) -> extensions mapping
        self.extensions: Dict[Tuple, Dict[Term, Set[Term]]] = factory()
        #: (keywords, semantic) -> matching component idents
        self.matching: Dict[Tuple, Set[int]] = factory()
        #: (keywords, semantic) -> per-keyword weight bounds
        self.weight_bounds: Dict[Tuple, List[float]] = factory()
        #: (component ident, (keywords, semantic)) -> candidate templates
        self.component_candidates: Dict[Tuple, List[Tuple]] = factory()
        #: (component ident, (keywords, semantic)) -> _ComponentLayout
        self.component_layouts: Dict[Tuple, _ComponentLayout] = factory()

    def clear(self) -> None:
        self.extensions.clear()
        self.matching.clear()
        self.weight_bounds.clear()
        self.component_candidates.clear()
        self.component_layouts.clear()


def _normalize_keywords(keywords: Sequence[object]) -> Tuple[Term, ...]:
    """Keywords as deduplicated terms, exactly as ``_prepare_query`` sees
    them — the coalescing key for identical in-flight queries."""
    terms: List[Term] = []
    for keyword in keywords:
        term = keyword if isinstance(keyword, URI) else coerce_term(keyword)
        if term not in terms:
            terms.append(term)
    return tuple(terms)


def _coerce_query(query: object, default_k: int) -> Tuple[object, Sequence[object], int]:
    """Deprecated shim: use :meth:`repro.engine.QueryRequest.from_obj`.

    The ad-hoc ``(seeker, keywords, k)`` coercion moved into the typed
    request layer; this name survives only for external callers.
    """
    warnings.warn(
        "_coerce_query is deprecated; use repro.engine.QueryRequest.from_obj",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..engine.request import QueryRequest

    request = QueryRequest.from_obj(query, default_k=default_k)
    return request.seeker, request.keywords, request.k


class S3kSearch:
    """Query engine over a saturated :class:`S3Instance`.

    Builds, once, the proximity index (normalized transition matrix), the
    connected-component index, and the inverted keyword indexes used for
    pruning and for the threshold bounds; then answers any number of
    queries.

    With *use_connection_index* (the default) candidate gathering reads
    the precomputed per-atom evidence of a lazily built
    :class:`ConnectionIndex` instead of running the connection fixpoint at
    query time; pass a warm *connection_index* (e.g. loaded from a
    :class:`~repro.storage.sqlite_store.SQLiteStore`) to skip even the
    lazy builds.  *result_cache_size* bounds the LRU cache of finished
    answers and *plan_cache_size* the LRU cache of seeker-independent
    query plans (extensions, matching components, weight bounds,
    candidate templates) shared across batches; 0 disables either.
    """

    def __init__(
        self,
        instance: S3Instance,
        score: Optional[FeasibleScore] = None,
        use_matrix: bool = True,
        use_connection_index: bool = True,
        connection_index: Optional[ConnectionIndex] = None,
        result_cache_size: int = 1024,
        plan_cache_size: int = 4096,
    ):
        if not instance.is_saturated:
            instance.saturate()
        self.instance = instance
        self.score: S3kScore = score if score is not None else S3kScore()
        self.prox_index = ProximityIndex(instance, use_matrix=use_matrix)
        self.component_index = (
            connection_index.component_index
            if connection_index is not None
            else ComponentIndex(instance)
        )
        if not use_connection_index:
            # Honored even when an index object was passed: the fixpoint
            # gather path runs (the component partition is still reused).
            self.connection_index: Optional[ConnectionIndex] = None
        elif connection_index is not None:
            self.connection_index = connection_index
        else:
            self.connection_index = ConnectionIndex(instance, self.component_index)
        self._result_cache = (
            _ResultCache(result_cache_size) if result_cache_size > 0 else None
        )
        self._plan_cache = (
            _BatchCache(plan_cache_size) if plan_cache_size > 0 else None
        )
        self._caches_version = instance.version
        self._keyword_nodes: Dict[Term, List[URI]] = {}
        self._keyword_tags: Dict[Term, List[URI]] = {}
        self._component_stats: Dict[int, Tuple[int, int, int]] = {}
        #: fast-path / slow-path certification counters (monotone)
        self._stats: Dict[str, int] = {
            "stop_checks_fast": 0,
            "stop_checks_full": 0,
            "clean_checks_fast": 0,
            "clean_checks_full": 0,
            "bounds_refresh_rows": 0,
            "batch_refresh_passes": 0,
            "batch_layout_builds": 0,
        }
        #: wall seconds per batched-loop phase (read inside search_many,
        #: a sanctioned budget hook of the determinism lint)
        self._phase_seconds: Dict[str, float] = {
            "step": 0.0,
            "discover": 0.0,
            "bounds": 0.0,
            "clean_stop": 0.0,
        }
        self._build_keyword_indexes()

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop cached answers, query plans and precomputed index slabs.

        All three also self-invalidate lazily against
        :attr:`S3Instance.version`, so this explicit hook is for callers
        that mutate content bypassing the ``add_*`` methods.  Note the
        structural indexes (proximity matrix, component partition,
        keyword inverted indexes) are built once per engine: the version
        checks guarantee no *stale replay* after a mutation, but a
        mutated instance should get a freshly constructed engine for
        fully up-to-date answers.
        """
        self._caches_version = self.instance.version
        if self._result_cache is not None:
            self._result_cache.clear()
        if self._plan_cache is not None:
            self._plan_cache.clear()
        if self.connection_index is not None:
            self.connection_index.invalidate()

    def _fresh_caches(self) -> None:
        """Drop result / plan caches lazily after an instance mutation.

        Cached answers and query plans are only valid for the instance
        content they were computed against; the :class:`ConnectionIndex`
        already re-checks :attr:`S3Instance.version` per slab, and this
        gives the two LRU caches the same self-invalidation.
        """
        if self._caches_version != self.instance.version:
            self._caches_version = self.instance.version
            if self._result_cache is not None:
                self._result_cache.clear()
            if self._plan_cache is not None:
                self._plan_cache.clear()

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Hit / miss / occupancy counters of the result cache."""
        if self._result_cache is None:
            return {"hits": 0, "misses": 0, "size": 0, "maxsize": 0}
        return self._result_cache.stats()

    @property
    def exploration_stats(self) -> Dict[str, object]:
        """Fast-/slow-path certification counters and the per-phase wall
        seconds of the batched loop (what ``/stats`` surfaces to make the
        screen hit rate observable)."""
        merged: Dict[str, object] = dict(self._stats)
        for phase, seconds in self._phase_seconds.items():
            merged[f"phase_{phase}_seconds"] = round(seconds, 6)
        return merged

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _build_keyword_indexes(self) -> None:
        for root, document in self.instance.documents.items():
            for node in document.nodes():
                for keyword in set(node.keywords):
                    term = coerce_term(keyword)
                    self._keyword_nodes.setdefault(term, []).append(node.uri)
        for tag_uri, tag in self.instance.tags.items():
            if tag.keyword is not None:
                term = coerce_term(tag.keyword)
                self._keyword_tags.setdefault(term, []).append(tag_uri)
        for component in self.component_index.components():
            n_tags = len(component.tags)
            n_roots = len(component.roots)
            n_targets = sum(
                1 for node in component.nodes if self.instance.comments_on(node)
            )
            self._component_stats[component.ident] = (n_tags, n_roots, n_targets)
        # Dense map: proximity index -> component ident (-1 for users and
        # other non-document, non-tag vertices).  Lets the per-iteration
        # discovery classify newly reached nodes with one vectorized lookup
        # instead of per-node dict probes.  Built by walking the component
        # members (document nodes + tags), not the full node universe.
        self._index_component = np.full(self.prox_index.size, -1, dtype=np.int64)
        for component in self.component_index.components():
            for uri in component.nodes:
                index = self.prox_index.node_index_of(uri)
                if index is not None:
                    self._index_component[index] = component.ident
            for uri in component.tags:
                index = self.prox_index.node_index_of(uri)
                if index is not None:
                    self._index_component[index] = component.ident
        #: encoding stride for batch-wide (row, component) discovery pairs
        self._component_stride = max(int(self._index_component.max()) + 1, 1)

    # ------------------------------------------------------------------
    # Delta maintenance (incremental index patching)
    # ------------------------------------------------------------------
    def apply_deltas(
        self, deltas: Sequence[MutationDelta]
    ) -> Optional[Dict[str, object]]:
        """Re-align every index and cache with a batch of typed deltas.

        Returns a patch-info dict on success, or ``None`` when some delta
        is not incrementally expressible — an untyped mutation, a tag
        whose subject starts a fresh component, a comment edge merging
        two components, a derived network edge, or a shrunk universe.
        After a ``None`` return the kernel may be partially patched and
        must be discarded for a from-scratch rebuild (which the engine's
        fallback path does).

        On success every derived structure — component partition,
        proximity transition, connection slabs, keyword indexes — equals
        what a from-scratch build against the mutated instance would
        produce, bit for bit (the oracle sweep asserts this), and the
        result / plan caches are scoped-evicted instead of flushed: only
        entries whose terms, matching components or visited rows
        intersect the delta are dropped.
        """
        started = time.perf_counter()
        instance = self.instance

        # -- gate: purely structural checks, nothing mutated yet ---------
        pending: Dict[URI, int] = {}

        def member_ident(uri: URI) -> Optional[int]:
            component = self.component_index.component_of(uri)
            if component is not None:
                return component.ident
            return pending.get(uri)

        for delta in deltas:
            if isinstance(delta, TagDelta):
                ident = member_ident(delta.tag.subject)
                if ident is None:
                    return None  # fresh component: dense idents would shift
                pending[delta.tag.uri] = ident
            elif isinstance(delta, CommentEdgeDelta):
                ident = member_ident(delta.target)
                if ident is None:
                    return None  # ditto: target outside the partition
                comment_ident = member_ident(delta.comment)
                if comment_ident is not None and comment_ident != ident:
                    return None  # cross-component edge: components merge
            else:
                return None  # opaque mutation: no propagation rule

        # -- incremental closure -----------------------------------------
        frontier = [
            triple for delta in deltas for triple in delta.new_triples
        ]
        derived = saturate_from(instance.graph, frontier)
        instance.mark_saturated()
        for triple in derived:
            if triple.predicate in NETWORK_EDGE_PROPERTIES:
                # Entailment created a social-universe edge the typed
                # patches below do not model.
                return None
        stale_terms: Set[Term] = set()
        for triple in [*frontier, *derived]:
            if triple.predicate in (RDF_TYPE, RDFS_SUBCLASS, RDFS_SUBPROPERTY):
                # Exactly the lookups Ext(k) makes: a cached extension can
                # only change if one of its raw keywords gained a subject.
                stale_terms.add(triple.object)
        new_keywords: Set[Term] = set()
        for delta in deltas:
            if isinstance(delta, TagDelta) and delta.tag.keyword is not None:
                new_keywords.add(coerce_term(delta.tag.keyword))

        # -- patch the component partition -------------------------------
        touched: Set[int] = set()
        for delta in deltas:
            if isinstance(delta, TagDelta):
                ident = self.component_index.apply_tag(delta.tag)
            else:
                ident = self.component_index.apply_comment_edge(
                    delta.comment, delta.target
                )
            if ident is None:  # pragma: no cover - the gate rejects these
                return None
            touched.add(ident)

        # -- patch the proximity transition ------------------------------
        edge_sources = {
            triple.subject
            for triple in frontier
            if triple.predicate in NETWORK_EDGE_PROPERTIES
        }
        try:
            old_to_new, affected_rows = self.prox_index.apply_delta(
                edge_sources
            )
        except ValueError:
            return None

        # -- re-align the connection slabs -------------------------------
        patch_info: Dict[str, object] = {"components_patched": 0}
        if self.connection_index is not None:
            patch_info.update(self.connection_index.apply_delta(touched))

        # -- patch the keyword / component summaries ---------------------
        for delta in deltas:
            if isinstance(delta, TagDelta) and delta.tag.keyword is not None:
                term = coerce_term(delta.tag.keyword)
                # Appending in delta order matches the insertion order a
                # rebuild reads out of ``instance.tags``.
                self._keyword_tags.setdefault(term, []).append(delta.tag.uri)
        for ident in touched:
            component = self.component_index.component(ident)
            n_targets = sum(
                1 for node in component.nodes if instance.comments_on(node)
            )
            self._component_stats[ident] = (
                len(component.tags),
                len(component.roots),
                n_targets,
            )
        if old_to_new is not None:
            remapped = np.full(self.prox_index.size, -1, dtype=np.int64)
            remapped[old_to_new] = self._index_component
            self._index_component = remapped
        for delta in deltas:
            if isinstance(delta, TagDelta):
                index = self.prox_index.node_index_of(delta.tag.uri)
                if index is not None:
                    member = self.component_index.component_of(delta.tag.uri)
                    self._index_component[index] = member.ident
        # No component was created or merged, so the stride is unchanged.

        # -- scoped cache eviction ---------------------------------------
        evicted = self._evict_stale_plans(
            stale_terms, new_keywords, touched, old_to_new
        )
        if self._result_cache is not None:
            evicted += self._result_cache.apply_delta(
                stale_terms | new_keywords, touched, affected_rows, old_to_new
            )
        self._caches_version = instance.version

        patch_info["deltas_applied"] = len(deltas)
        patch_info["components_touched"] = len(touched)
        patch_info["cache_entries_evicted"] = evicted
        patch_info["patch_seconds"] = time.perf_counter() - started
        return patch_info

    def _evict_stale_plans(
        self,
        stale_terms: Set[Term],
        new_keywords: Set[Term],
        touched: Set[int],
        old_to_new: Optional[np.ndarray],
    ) -> int:
        """Scoped plan-cache eviction for one delta batch.

        Extension entries are dropped only when a new schema triple's
        object is one of the key's *raw* keywords — ``Ext(k)`` looks up
        exactly those objects, so a pure comment-edge delta (empty
        ``stale_terms`` ∩ keywords, no new tag keyword) leaves every
        extension untouched.  Matching sets and weight bounds fall when
        their upstream fell, when a new tag keyword enters the key's
        extension atoms, or when a touched component feeds the bounds;
        per-component candidate plans fall with their component.
        Surviving component layouts get their dense source-index runs
        remapped when the proximity universe grew.
        """
        cache = self._plan_cache
        if cache is None:
            return 0
        evicted = 0
        stale_keys: Set[Tuple] = set()
        for key in list(cache.extensions):
            keywords, _semantic = key
            if stale_terms.intersection(keywords):
                stale_keys.add(key)
                del cache.extensions[key]
                evicted += 1
        if new_keywords or stale_keys:
            for key in list(cache.matching):
                extensions = (
                    None if key in stale_keys else cache.extensions.get(key)
                )
                if extensions is None:
                    # Upstream evicted (or LRU-dropped: unverifiable).
                    del cache.matching[key]
                    evicted += 1
                    continue
                if new_keywords and any(
                    extension & new_keywords
                    for extension in extensions.values()
                ):
                    del cache.matching[key]
                    evicted += 1
        for key in list(cache.weight_bounds):
            matching = cache.matching.get(key)
            if matching is None or (touched and matching & touched):
                del cache.weight_bounds[key]
                evicted += 1
        for store in (cache.component_candidates, cache.component_layouts):
            for entry_key in list(store):
                ident, key = entry_key
                if ident in touched or key in stale_keys:
                    del store[entry_key]
                    evicted += 1
        if old_to_new is not None:
            for layout in cache.component_layouts.values():
                # Fresh array assignment — adopted block arrays are shared
                # read-only across states and never written in place.
                layout.source_concat = old_to_new[layout.source_concat]
        return evicted

    def _result_meta(self, state: QueryState) -> _ResultMeta:
        """Eviction footprint of a finished query (see :class:`_ResultMeta`)."""
        if state.visited_rows is not None:
            visited = state.visited_rows
        elif state.seen is not None:
            visited = np.flatnonzero(state.seen)
        else:
            visited = np.empty(0, dtype=np.intp)
        terms: Set[Term] = set(state.keywords)
        for extension in state.extensions.values():
            terms.update(extension)
        return _ResultMeta(visited, frozenset(state.matching), frozenset(terms))

    # ------------------------------------------------------------------
    # Query-time helpers
    # ------------------------------------------------------------------
    def _matching_components(
        self, extensions: Dict[Term, Set[Term]]
    ) -> Set[int]:
        """Components whose keyword set intersects *every* extension."""
        matching: Optional[Set[int]] = None
        for extension in extensions.values():
            components: Set[int] = set()
            for keyword in extension:
                for node in self._keyword_nodes.get(keyword, ()):
                    component = self.component_index.component_of(node)
                    if component is not None:
                        components.add(component.ident)
                for tag in self._keyword_tags.get(keyword, ()):
                    component = self.component_index.component_of(tag)
                    if component is not None:
                        components.add(component.ident)
            matching = components if matching is None else (matching & components)
            if not matching:
                return set()
        return matching or set()

    def _keyword_weight_bounds(
        self, extensions: Dict[Term, Set[Term]], matching: Set[int]
    ) -> List[float]:
        """``W_k``: per-keyword bounds on the structural weight sums.

        For each query keyword, the maximum over the matching components of
        an upper bound on ``Σ_{(t,f,src)∈con(d,k)} η^{|pos(d,f)|}``:
        contains-connections are bounded by the component's occurrence
        count, relatedTo-connections by its tag count, commentsOn pairs by
        (#commented fragments) × (#roots + #tags).  See DESIGN.md §5.
        """
        bounds: List[float] = []
        for extension in extensions.values():
            per_component: Dict[int, int] = {}
            for keyword in extension:
                for node in self._keyword_nodes.get(keyword, ()):
                    component = self.component_index.component_of(node)
                    if component is not None and component.ident in matching:
                        per_component[component.ident] = (
                            per_component.get(component.ident, 0) + 1
                        )
                for tag in self._keyword_tags.get(keyword, ()):
                    component = self.component_index.component_of(tag)
                    if component is not None and component.ident in matching:
                        per_component[component.ident] = (
                            per_component.get(component.ident, 0) + 1
                        )
            best = 0.0
            for ident, occurrences in per_component.items():
                n_tags, n_roots, n_targets = self._component_stats[ident]
                bound = occurrences + n_tags + n_targets * (n_roots + n_tags)
                best = max(best, float(bound))
            bounds.append(best)
        return bounds

    def _make_template(
        self,
        candidate_uri: URI,
        extensions: Dict[Term, Set[Term]],
        resolver: Callable[[URI, Term], List[Connection]],
    ) -> Tuple:
        """One candidate's query-independent payload (shared batch-wide).

        Resolves the candidate's root, depth, per-keyword connections and
        source set, plus the flat arrays (per-keyword counts, distances,
        sources in keyword order) from which the bounds layout is rebuilt
        without walking the per-candidate dicts again.
        """
        document = self.instance.document_of(candidate_uri)
        node = document.node(candidate_uri)
        structural_weight = self.score.structural_weight
        per_keyword: Dict[Term, List[Tuple[int, URI]]] = {}
        sources: Set[URI] = set()
        kw_counts: List[int] = []
        weights: List[float] = []
        flat_sources: List[URI] = []
        for keyword in extensions:
            resolved = resolver(candidate_uri, keyword)
            per_keyword[keyword] = [(c.distance, c.source) for c in resolved]
            kw_counts.append(len(resolved))
            for connection in resolved:
                weights.append(structural_weight(connection.distance))
                flat_sources.append(connection.source)
            sources.update(c.source for c in resolved)
        return (
            candidate_uri,
            document.uri,
            node.depth,
            node.dewey,
            per_keyword,
            sources,
            tuple(kw_counts),
            np.asarray(weights, dtype=np.float64),
            flat_sources,
        )

    def _candidate_templates(
        self,
        component: Component,
        extensions: Dict[Term, Set[Term]],
        cache: Optional[_BatchCache] = None,
        cache_key: Optional[Tuple] = None,
    ) -> List[Tuple]:
        """Query-independent candidate data for one matching component.

        With the :class:`ConnectionIndex` enabled, candidate extraction is
        a boolean coverage gather and the per-keyword evidence is the
        union of precomputed per-atom slices — no fixpoint runs at query
        time.  Without it, the :class:`ComponentConnections` worklist
        fixpoint (the oracle path) runs here.  Neither depends on the
        seeker, so the result is shared across a batch via *cache* (keyed
        by component and extended keyword set).
        """
        if cache is not None and cache_key is not None:
            cached = cache.component_candidates.get((component.ident, cache_key))
            if cached is not None:
                return cached
        if self.connection_index is not None:
            connection_index = self.connection_index
            candidate_uris = connection_index.candidate_documents(
                component.ident, extensions
            )
            # Evidence decodes lazily, per keyword, only when a candidate
            # actually resolves — a component whose coverage AND is empty
            # costs one boolean gather and nothing else.
            evidence_by_keyword: Dict[Term, Dict] = {}

            def resolver(candidate_uri: URI, keyword: Term) -> List[Connection]:
                evidence = evidence_by_keyword.get(keyword)
                if evidence is None:
                    evidence = evidence_by_keyword[keyword] = (
                        connection_index.keyword_evidence(
                            component.ident, extensions[keyword]
                        )
                    )
                return resolve_connections(self.instance, evidence, candidate_uri)

        else:
            connections_index = ComponentConnections(
                self.instance, component, extensions
            )
            candidate_uris = connections_index.candidate_documents()
            resolver = connections_index.connections
        templates = [
            self._make_template(candidate_uri, extensions, resolver)
            for candidate_uri in candidate_uris
        ]
        if cache is not None and cache_key is not None:
            cache.component_candidates[(component.ident, cache_key)] = templates
        return templates

    def _component_layout(
        self,
        templates: List[Tuple],
        cache: Optional[_BatchCache] = None,
        cache_key: Optional[Tuple] = None,
    ) -> _ComponentLayout:
        """The flat refresh block of one component's candidate templates.

        Seeker-independent (segment offsets, weights, deduplicated source
        slots with their neighborhood index runs, root groups), so it is
        computed once per ``(component, keywords)`` pair and shared via
        *cache* exactly like the templates themselves.  The element order
        inside every segment mirrors the original per-candidate loops, so
        the refreshed floats are bit-identical to the per-object path.
        """
        if cache is not None and cache_key is not None:
            cached = cache.component_layouts.get(cache_key)
            if cached is not None:
                return cached
        layout = _ComponentLayout()
        live: List[int] = []
        slot_of: Dict[URI, int] = {}
        concat_parts: List[np.ndarray] = []
        source_offsets: List[int] = []
        nonempty: List[int] = []
        conn_src: List[int] = []
        weight_parts: List[np.ndarray] = []
        kw_offsets: List[int] = []
        cand_offsets: List[int] = []
        by_root: Dict[URI, List[int]] = {}
        total = 0
        for position, template in enumerate(templates):
            root = template[1]
            by_root.setdefault(root, []).append(position)
            counts = template[6]
            if not counts or 0 in counts:
                continue
            live.append(position)
            cand_offsets.append(len(kw_offsets))
            offset = len(conn_src)
            for count in counts:
                kw_offsets.append(offset)
                offset += count
            for source in template[8]:
                slot = slot_of.get(source)
                if slot is None:
                    slot = len(slot_of)
                    slot_of[source] = slot
                    indices = self.prox_index.closed_neighborhood_indices(source)
                    if indices.size:
                        nonempty.append(slot)
                        source_offsets.append(total)
                        concat_parts.append(indices)
                        total += indices.size
                conn_src.append(slot)
            weight_parts.append(template[7])
        group_pos: List[int] = []
        group_offsets: List[int] = []
        pair_shallow: List[int] = []
        pair_deep: List[int] = []
        for positions in by_root.values():
            if len(positions) < 2:
                continue
            group_offsets.append(len(group_pos))
            group_pos.extend(positions)
            # Vertical-neighbor pairs, shallow (strictly smaller depth —
            # a proper dewey prefix is strictly shorter) listed first.
            # Static per block, so the certification screens can test the
            # exact directional condition instead of a whole-group gap.
            for index, position_a in enumerate(positions):
                dewey_a = templates[position_a][3]
                for position_b in positions[index + 1 :]:
                    dewey_b = templates[position_b][3]
                    if len(dewey_a) <= len(dewey_b):
                        shorter, longer = dewey_a, dewey_b
                        shallow, deep = position_a, position_b
                    else:
                        shorter, longer = dewey_b, dewey_a
                        shallow, deep = position_b, position_a
                    if longer[: len(shorter)] == shorter:
                        pair_shallow.append(shallow)
                        pair_deep.append(deep)
        layout.depths = np.asarray(
            [template[2] for template in templates], dtype=np.intp
        )
        # Unicode copies of the candidate URIs: numpy compares code
        # points exactly like ``str``, so the screens' URI tiebreak rank
        # comes from one C argsort instead of a Python sort per growth.
        layout.uris = np.asarray(
            [str(template[0]) for template in templates], dtype=np.str_
        )
        layout.pair_shallow = np.asarray(pair_shallow, dtype=np.intp)
        layout.pair_deep = np.asarray(pair_deep, dtype=np.intp)
        layout.n_all = len(templates)
        layout.live = np.asarray(live, dtype=np.intp)
        layout.n_live = len(live)
        layout.conn_weight = _concat(weight_parts, np.float64)
        layout.conn_src = np.asarray(conn_src, dtype=np.intp)
        layout.kw_offsets = np.asarray(kw_offsets, dtype=np.intp)
        layout.cand_offsets = np.asarray(cand_offsets, dtype=np.intp)
        layout.n_conns = int(layout.conn_weight.size)
        layout.n_kws = len(kw_offsets)
        layout.source_concat = _concat(concat_parts, np.int64)
        layout.source_offsets = np.asarray(source_offsets, dtype=np.intp)
        layout.nonempty = np.asarray(nonempty, dtype=np.intp)
        layout.n_slots = len(slot_of)
        layout.group_pos = np.asarray(group_pos, dtype=np.intp)
        layout.group_offsets = np.asarray(group_offsets, dtype=np.intp)
        if cache is not None and cache_key is not None:
            cache.component_layouts[cache_key] = layout
        return layout

    def _gather_candidates(
        self,
        component: Component,
        extensions: Dict[Term, Set[Term]],
        state: QueryState,
        cache: Optional[_BatchCache] = None,
        cache_key: Optional[Tuple] = None,
    ) -> int:
        """Add *component*'s candidates; evidence shared through *cache*.

        The :class:`Candidate` objects themselves are always fresh (their
        score intervals are per-query state) but their ``connections`` and
        ``sources`` payloads are immutable and may be shared batch-wide,
        as is the component's :class:`_ComponentLayout` block appended to
        the state's bounds layout (components partition the documents, so
        one component is gathered at most once per query and template
        order is the candidate order).
        """
        templates = self._candidate_templates(component, extensions, cache, cache_key)
        if not templates:
            return 0
        layout_key = (
            (component.ident, cache_key) if cache_key is not None else None
        )
        block = self._component_layout(templates, cache, layout_key)
        candidates = state.candidates
        created: List[Candidate] = []
        added = 0
        for (
            candidate_uri,
            root,
            depth,
            dewey,
            per_keyword,
            sources,
            kw_counts,
            conn_weights,
            conn_sources,
        ) in templates:
            existing = candidates.get(candidate_uri)
            if existing is not None:
                created.append(existing)
                if state.layout is not None:
                    # Two positions now mirror one candidate; the exact
                    # certification screens assume positions ↔ dict
                    # members, so they fall back to conservative tests.
                    state.layout.has_duplicates = True
                continue
            candidate = Candidate(
                uri=candidate_uri,
                root=root,
                depth=depth,
                dewey=dewey,
                connections=per_keyword,
                sources=sources,
                kw_counts=kw_counts,
                conn_weights=conn_weights,
                conn_sources=conn_sources,
            )
            if not kw_counts or 0 in kw_counts:
                # Settled: an empty per-keyword connection list pins the
                # score (a product over keywords) to the [0, 0] interval.
                candidate.upper = 0.0
            candidates[candidate_uri] = candidate
            created.append(candidate)
            added += 1
        if state.layout is not None:
            state.layout.append(block, created)
        # Every gathered candidate was examined, whether or not a later
        # clean drops it — recorded here once instead of re-scanning the
        # dict every iteration.
        state.candidate_uris.update(template[0] for template in templates)
        return added

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def _update_bounds(self, state: QueryState, tail_bound: float) -> None:
        """Refresh one state's ``[lower, upper]`` arrays (sequential path).

        ``lower`` uses the accumulated (≤ n-step) source proximities;
        ``upper`` additionally grants every source the remaining proximity
        tail.  All sums/products run over the same elements in the same
        order as the straightforward per-candidate loops, via ``reduceat``.
        The results land in the layout's flat arrays; the Candidate
        objects are synced lazily (:meth:`_sync_bounds`).
        """
        layout = state.layout
        if layout is None:
            return
        layout.ensure()
        if not layout.n_live:
            return
        prox = np.zeros(layout.n_slots, dtype=np.float64)
        if layout.source_concat.size:
            prox[layout.nonempty] = np.add.reduceat(
                state.accumulated[layout.source_concat], layout.source_offsets
            )
        conn_prox = prox[layout.conn_src]
        lower_terms = layout.conn_weight * conn_prox
        upper_terms = layout.conn_weight * np.minimum(1.0, conn_prox + tail_bound)
        lower_sums = np.add.reduceat(lower_terms, layout.kw_offsets)
        upper_sums = np.add.reduceat(upper_terms, layout.kw_offsets)
        lower_vals = np.multiply.reduceat(lower_sums, layout.cand_offsets)
        upper_vals = np.multiply.reduceat(upper_sums, layout.cand_offsets)
        layout.lowers[layout.live_pos] = lower_vals
        layout.uppers[layout.live_pos] = upper_vals
        layout.synced = False
        layout.screen_cache = None
        layout.batch_stats = (float(upper_vals.min()), float(lower_vals.max()))
        self._stats["bounds_refresh_rows"] += layout.n_live

    def _refresh_bounds_batch(
        self, batch: _BatchLayout, acc_rows: np.ndarray, tail_bound: float
    ) -> None:
        """One ``reduceat`` pass refreshing every active query's intervals.

        *acc_rows* is the C-contiguous column-major ``(size, n_active)``
        accumulated matrix; the batch layout's gather indices already
        carry the stride and query column, so a single flat gather
        replaces the N per-state gathers.  ``reduceat`` reduces each
        segment independently left-to-right, so concatenating the
        per-state segments preserves every float bit of the per-state
        refresh.
        """
        if not batch.scatter:
            return
        flat = acc_rows.reshape(-1)
        prox = np.zeros(batch.n_slots, dtype=np.float64)
        if batch.gather.size:
            prox[batch.nonempty] = np.add.reduceat(
                flat[batch.gather], batch.source_offsets
            )
        conn_prox = prox[batch.conn_src]
        lower_terms = batch.conn_weight * conn_prox
        upper_terms = batch.conn_weight * np.minimum(1.0, conn_prox + tail_bound)
        lower_sums = np.add.reduceat(lower_terms, batch.kw_offsets)
        upper_sums = np.add.reduceat(upper_terms, batch.kw_offsets)
        lowers = np.multiply.reduceat(lower_sums, batch.cand_offsets)
        uppers = np.multiply.reduceat(upper_sums, batch.cand_offsets)
        # Per-segment certification stats fall out of the same pass: one
        # reduceat pair gives every state its (min upper, max lower)
        # bracket, turning most screen calls into two float compares.
        seg_max_lower = np.maximum.reduceat(lowers, batch.seg_starts).tolist()
        seg_min_upper = np.minimum.reduceat(uppers, batch.seg_starts).tolist()
        refreshed = 0
        for entry, up_min, lo_max in zip(batch.scatter, seg_min_upper, seg_max_lower):
            layout, start, count, live_pos = entry
            stop = start + count
            layout.lowers[live_pos] = lowers[start:stop]
            layout.uppers[live_pos] = uppers[start:stop]
            layout.synced = False
            layout.screen_cache = None
            layout.batch_stats = (up_min, lo_max)
            refreshed += count
        self._stats["bounds_refresh_rows"] += refreshed
        self._stats["batch_refresh_passes"] += 1

    def _sync_bounds(self, state: QueryState) -> None:
        """Scatter the layout's interval arrays into the Candidate objects.

        Slow paths (full clean, full stop replay, final assembly) read
        ``candidate.lower`` / ``candidate.upper``; everything else works
        on the flat arrays, so the per-object writes happen only when a
        slow path is actually about to run.  Settled positions hold 0.0
        (set once at creation and never refreshed) and stale positions
        write into objects no longer in the dict — both harmless.
        """
        layout = state.layout
        if layout is None or layout.synced or layout.dirty:
            return
        lowers = layout.lowers.tolist()
        uppers = layout.uppers.tolist()
        for candidate, lower, upper in zip(layout.candidates, lowers, uppers):
            candidate.lower = lower
            candidate.upper = upper
        layout.synced = True

    # ------------------------------------------------------------------
    # Vertical-neighbor utilities
    # ------------------------------------------------------------------
    def _are_vertical_neighbors(self, a: Candidate, b: Candidate) -> bool:
        if a.root != b.root:
            return False
        dewey_a, dewey_b = a.dewey, b.dewey
        if len(dewey_a) <= len(dewey_b):
            shorter, longer = dewey_a, dewey_b
        else:
            shorter, longer = dewey_b, dewey_a
        return longer[: len(shorter)] == shorter

    def _clean_candidates(
        self, candidates: Dict[URI, Candidate], k: int, tail_bound: float
    ) -> None:
        """CleanCandidatesList: drop provably-excluded candidates."""
        if not candidates:
            return
        # (i) candidates that k others surely beat.  The k reference lower
        # bounds must come from pairwise NON-neighbor candidates: vertical
        # neighbors can occupy only one answer slot, so a greedy
        # neighbor-free selection by lower bound is used.  Any neighbor-free
        # k-set with min lower L forces the answer's k-th score above L,
        # hence candidates with upper < L can never appear.
        by_lower = sorted(
            candidates.values(), key=lambda c: (-c.lower, -c.depth, c.uri)
        )
        reference: List[Candidate] = []
        for candidate in by_lower:
            if any(self._are_vertical_neighbors(candidate, r) for r in reference):
                continue
            reference.append(candidate)
            if len(reference) == k:
                break
        if len(reference) == k:
            kth_lower = reference[-1].lower
            for uri in [
                u
                for u, c in candidates.items()
                if c.upper < kth_lower - TIE_EPSILON
            ]:
                del candidates[uri]
        # (ii) candidates dominated by a vertical neighbor.  Removal is
        # only sound when the dominator is a DESCENDANT: every candidate
        # that could exclude the descendant from the answer (its vertical
        # neighbors — nodes on its root path or in its subtree) is then
        # also a vertical neighbor of the ancestor, so whenever the
        # descendant is out, the ancestor is out too.  An ancestor
        # dominating a child gives no such guarantee — the ancestor may
        # itself be excluded by a pick from a disjoint subtree, leaving
        # the child eligible — so those pairs are left to the stop
        # condition's certainty check.
        by_root: Dict[URI, List[Candidate]] = {}
        for candidate in candidates.values():
            by_root.setdefault(candidate.root, []).append(candidate)
        to_remove: Set[URI] = set()
        converged = tail_bound < TIE_EPSILON
        for group in by_root.values():
            if len(group) < 2:
                continue
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    if not self._are_vertical_neighbors(a, b):
                        continue
                    shallow, deep = (a, b) if a.depth <= b.depth else (b, a)
                    if shallow.upper < deep.lower - TIE_EPSILON:
                        # Dominated by a descendant: provably excluded.
                        to_remove.add(shallow.uri)
                    elif converged and abs(a.upper - b.upper) <= TIE_EPSILON:
                        # Breakable tie (Theorem 4.2): keep the deeper,
                        # more specific fragment.
                        to_remove.add(shallow.uri)
        for uri in to_remove:
            candidates.pop(uri, None)

    def _screen_arrays(
        self, layout: _BoundsLayout
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Effective interval arrays for the certification screens.

        Removed positions (dropped from the dict by a previous exact
        clean) are substituted with neutral values so the screens see the
        dict, not the ever-growing superset: lower → 0.0 (never raises a
        maximum or a k-th order statistic above the dict's), and two
        upper fills — 0.0 (never raises an upper order statistic; exact
        for counts of positive uppers) and +inf (never drags a minimum
        below the dict's).  Cached per refresh; with nothing removed the
        authoritative arrays serve all three roles unchanged.
        """
        cached = layout.screen_cache
        if cached is None:
            if layout.n_removed:
                removed = layout.removed
                lowers_eff = np.where(removed, 0.0, layout.lowers)
                uppers_zero = np.where(removed, 0.0, layout.uppers)
                uppers_inf = np.where(removed, math.inf, layout.uppers)
            else:
                lowers_eff = layout.lowers
                uppers_zero = layout.uppers
                uppers_inf = layout.uppers
            cached = layout.screen_cache = (lowers_eff, uppers_zero, uppers_inf)
        return cached

    def _reference_kth_lower(
        self, layout: _BoundsLayout, k: int
    ) -> Optional[float]:
        """Rule (i)'s greedy neighbor-free reference, replayed on positions.

        Identical selection to :meth:`_clean_candidates`: positions in
        ``(-lower, -depth, uri)`` order (``lexsort``'s last key is
        primary; ``uri_rank`` encodes the ascending-URI tiebreak), taking
        the first k that pairwise avoid the precomputed vertical-neighbor
        pairs.  Returns the k-th pick's lower bound, or ``None`` when no
        neighbor-free k-set exists (rule (i) then cannot remove).
        """
        order = np.lexsort((layout.uri_rank, -layout.depths, -layout.lowers))
        removed = layout.removed if layout.n_removed else None
        pair_set = layout.pair_set
        lowers = layout.lowers
        reference: List[int] = []
        for position in order.tolist():
            if removed is not None and removed[position]:
                continue
            conflict = False
            for picked in reference:
                key = (
                    (position, picked)
                    if position < picked
                    else (picked, position)
                )
                if key in pair_set:
                    conflict = True
                    break
            if conflict:
                continue
            reference.append(position)
            if len(reference) == k:
                return float(lowers[position])
        return None

    def _clean_screen(self, state: QueryState, tail_bound: float) -> bool:
        """Exact vector test: can :meth:`_clean_candidates` remove anything?

        Runs on the effective interval arrays (:meth:`_screen_arrays`):
        the rows of dict members carry their authoritative bounds, settled
        rows hold 0.0 (they are dict members too, until cleaned), and
        removed rows are neutralized.  Returning ``False`` must prove the
        exact clean is a no-op; returning ``True`` merely runs it.

        Rule (i) removes a candidate iff ``upper < kth_ref - eps`` for
        the greedy neighbor-free reference of size k — the screen replays
        that selection exactly (:meth:`_reference_kth_lower`) and tests
        the dict's min upper (+inf fills never drag it below the dict's)
        against it.  Two relaxations run first so the replay is reached
        only when it can matter: ``kth_ref ≤ kth_unconstrained ≤
        max_lower`` (the zeros of removed rows never push an order
        statistic above the dict's).

        Rule (ii) removes exactly when some precomputed vertical pair has
        ``shallow.upper < deep.lower - eps`` (a descendant-dominated
        ancestor), or at convergence (``tail_bound < eps``) a breakable
        tie ``|a.upper - b.upper| ≤ eps`` between live pair members —
        both tested directly on the pair index arrays.
        """
        layout = state.layout
        if (
            layout is None
            or layout.dirty
            or layout.n_all == 0
            or layout.has_duplicates
        ):
            # No trustworthy layout arrays to screen with: run the exact
            # pass.  Only reachable for stateless corner cases — every
            # live iteration refreshes right before cleaning.
            return bool(state.candidates)
        stats = layout.batch_stats
        if stats is not None:
            # Refresh-time bracket, no arrays touched: the raw segment min
            # never exceeds the dict's min upper (settled rows pin it to
            # 0.0 when present), the raw max never undershoots any dict
            # lower.  ``min_upper ≥ max_lower − eps`` therefore rules out
            # BOTH removal rules at once — rule (i) because the reference
            # k-th lower is itself ≤ max_lower, rule (ii) because every
            # shallow upper ≥ min_upper ≥ max_lower − eps ≥ deep lower −
            # eps.  Only the convergence tie-break (pairs, tail < eps)
            # escapes the bracket.
            pairs_empty = not layout.pair_shallow.size
            if pairs_empty and layout.n_all < state.k:
                return False
            if pairs_empty or tail_bound >= TIE_EPSILON:
                min_upper_bound = (
                    stats[0]
                    if layout.n_live == layout.n_all
                    else min(stats[0], 0.0)
                )
                if min_upper_bound >= stats[1] - TIE_EPSILON:
                    return False
        lowers, _, uppers = self._screen_arrays(layout)
        min_upper = uppers.min()
        max_lower = lowers.max()
        if min_upper < max_lower - TIE_EPSILON and layout.n_all >= state.k:
            if state.k == 1:
                kth_relaxed = max_lower
            else:
                kth_relaxed = np.partition(lowers, layout.n_all - state.k)[
                    layout.n_all - state.k
                ]
            if min_upper < kth_relaxed - TIE_EPSILON:
                kth_ref = self._reference_kth_lower(layout, state.k)
                if kth_ref is not None and min_upper < kth_ref - TIE_EPSILON:
                    return True
        shallow, deep = layout.pair_shallow, layout.pair_deep
        if shallow.size:
            if bool(np.any(uppers[shallow] < lowers[deep] - TIE_EPSILON)):
                return True
            if tail_bound < TIE_EPSILON:
                raw = layout.uppers
                tie = np.abs(raw[shallow] - raw[deep]) <= TIE_EPSILON
                if layout.n_removed:
                    removed = layout.removed
                    tie &= ~(removed[shallow] | removed[deep])
                if bool(np.any(tie)):
                    return True
        return False

    def _clean_candidates_screened(
        self, state: QueryState, tail_bound: float
    ) -> None:
        """Run the exact clean only when the vector screen flags the state.

        A clean that removed candidates marks their layout positions in
        the ``removed`` mask so the next screens stop seeing the rows —
        the membership diff costs one pass over the positions, paid only
        when something was actually removed (total removals are bounded
        by total candidates ever gathered).
        """
        candidates = state.candidates
        if not candidates:
            return
        if not self._clean_screen(state, tail_bound):
            self._stats["clean_checks_fast"] += 1
            return
        self._stats["clean_checks_full"] += 1
        self._sync_bounds(state)
        n_before = len(candidates)
        self._clean_candidates(candidates, state.k, tail_bound)
        layout = state.layout
        if layout is not None and not layout.dirty and len(candidates) != n_before:
            removed = layout.removed
            for position, candidate in enumerate(layout.candidates):
                if not removed[position] and candidate.uri not in candidates:
                    removed[position] = True
            layout.n_removed = int(np.count_nonzero(removed))
            layout.screen_cache = None

    # ------------------------------------------------------------------
    # Stop condition (Algorithm 2)
    # ------------------------------------------------------------------
    def _stop_condition(
        self,
        ordered: List[Candidate],
        k: int,
        threshold: float,
        tail_bound: float,
    ) -> bool:
        """True when the greedy top-k assembly is provably final.

        Replays :meth:`_assemble`'s greedy pick over *ordered* (sorted by
        ``(-upper, -depth, uri)``) and certifies that the exact-score
        greedy of Definition 3.2 must take the same picks:

        * a candidate skipped for conflicting with a pick must certainly
          rank below its excluder (``upper <= excluder.lower``), or tie
          with it at convergence (then the tie-break keeps the excluder);
        * once the answer is full, the best unpicked, non-conflicting
          candidate must certainly rank below every pick;
        * the unexplored-document threshold must not beat the answer.
        """
        converged = tail_bound < TIE_EPSILON
        picked: List[Candidate] = []
        min_top_lower = math.inf
        for candidate in ordered:
            if candidate.upper <= 0.0:
                continue
            excluder = next(
                (
                    pick
                    for pick in picked
                    if self._are_vertical_neighbors(candidate, pick)
                ),
                None,
            )
            if excluder is not None:
                if candidate.upper <= excluder.lower + TIE_EPSILON:
                    continue
                if converged and abs(candidate.upper - excluder.upper) <= TIE_EPSILON:
                    continue
                return False
            if len(picked) < k:
                picked.append(candidate)
                min_top_lower = min(min_top_lower, candidate.lower)
                continue
            # Would-be (k+1)-th pick: every remaining candidate has an
            # upper bound no larger than this one, so certainty for it
            # certifies the rest.
            if candidate.upper > min_top_lower + TIE_EPSILON:
                return False
            break
        if len(picked) < k:
            # Fewer answers than requested: stop once no unexplored
            # document can join the answer.
            return threshold <= TIE_EPSILON
        return threshold <= min_top_lower + TIE_EPSILON

    # ------------------------------------------------------------------
    # Query lifecycle: prepare -> (check / step)* -> finish
    # ------------------------------------------------------------------
    def _prepare_query(
        self,
        seeker: object,
        keywords: Sequence[object],
        k: int = 5,
        semantic: bool = True,
        max_iterations: Optional[int] = None,
        time_budget: Optional[float] = None,
        batch_index: int = 0,
        cache: Optional[_BatchCache] = None,
    ) -> QueryState:
        """Build the initial :class:`QueryState` for one query.

        Resolves the seeker, dedupes and extends the keywords, computes
        the matching components and weight bounds (all shareable through
        *cache*), and seeds the proximity border on the seeker.  Queries
        with no matching component are born ``done``.
        """
        started = time.perf_counter()
        seeker_uri = URI(seeker)
        if seeker_uri not in self.instance.users:
            raise KeyError(f"unknown seeker: {seeker_uri}")
        query_terms = _normalize_keywords(keywords)
        key = (query_terms, semantic)

        extensions: Optional[Dict[Term, Set[Term]]] = None
        if cache is not None:
            extensions = cache.extensions.get(key)
        if extensions is None:
            if semantic:
                extensions = extend_query(self.instance, query_terms)
            else:
                extensions = {term: {term} for term in query_terms}
            if cache is not None:
                cache.extensions[key] = extensions

        matching: Optional[Set[int]] = None
        if cache is not None:
            matching = cache.matching.get(key)
        if matching is None:
            matching = self._matching_components(extensions)
            if cache is not None:
                cache.matching[key] = matching

        state = QueryState(
            seeker=seeker_uri,
            keywords=query_terms,
            k=k,
            semantic=semantic,
            extensions=extensions,
            extended_keyword_count=sum(len(ext) for ext in extensions.values()),
            matching=matching,
            hard_cap=(
                max_iterations if max_iterations is not None else DEFAULT_MAX_ITERATIONS
            ),
            time_budget=time_budget,
            started=started,
            batch_index=batch_index,
        )
        if matching:
            weight_bounds: Optional[List[float]] = None
            if cache is not None:
                weight_bounds = cache.weight_bounds.get(key)
            if weight_bounds is None:
                weight_bounds = self._keyword_weight_bounds(extensions, matching)
                if cache is not None:
                    cache.weight_bounds[key] = weight_bounds
            state.weight_bounds = weight_bounds
            state.weight_key = tuple(weight_bounds)
            state.border = self.prox_index.start_vector(seeker_uri)
            state.accumulated = np.zeros(self.prox_index.size, dtype=np.float64)
            state.accumulated[self.prox_index.node_index(seeker_uri)] = (
                self.score.c_gamma
            )
            state.seen = state.border != 0
            state.layout = _BoundsLayout()
        else:
            state.done = True
        return state

    def _stop_replay_positions(
        self,
        layout: _BoundsLayout,
        k: int,
        threshold: float,
        converged: bool,
    ) -> bool:
        """Position-level mirror of :meth:`_stop_condition`.

        Returns True iff the object replay provably returns False ("can't
        stop yet"): same ``(-upper, -depth, uri)`` scan order (via
        ``lexsort`` with the static ``uri_rank`` tiebreak), same first-
        excluder lookup (the precomputed vertical-pair set), same
        certification thresholds — but over flat arrays and integer
        positions instead of sorted :class:`Candidate` objects.  Removed
        positions are skipped (they are not in the dict); settled ones
        sort last and terminate the scan exactly like the object replay's
        ``upper ≤ 0`` skip.
        """
        lowers = layout.lowers
        uppers = layout.uppers
        removed = layout.removed if layout.n_removed else None
        order = np.lexsort((layout.uri_rank, -layout.depths, -uppers))
        pair_set = layout.pair_set
        picked: List[int] = []
        min_top_lower = math.inf
        for position in order.tolist():
            if removed is not None and removed[position]:
                continue
            upper = uppers[position]
            if upper <= 0.0:
                # Descending scan: every remaining upper is ≤ 0 too.
                break
            excluder = -1
            for pick in picked:
                key = (
                    (position, pick) if position < pick else (pick, position)
                )
                if key in pair_set:
                    excluder = pick
                    break
            if excluder >= 0:
                if upper <= lowers[excluder] + TIE_EPSILON:
                    continue
                if converged and abs(upper - uppers[excluder]) <= TIE_EPSILON:
                    continue
                return True
            if len(picked) < k:
                picked.append(position)
                lower = lowers[position]
                if lower < min_top_lower:
                    min_top_lower = lower
                continue
            if upper > min_top_lower + TIE_EPSILON:
                return True
            break
        if len(picked) < k:
            return threshold > TIE_EPSILON
        return threshold > min_top_lower + TIE_EPSILON

    def _stop_screen(self, state: QueryState, tail_bound: float) -> bool:
        """Exact test: can the threshold stop possibly fire this iteration?

        Proves :meth:`_stop_condition`'s sorted object replay must return
        False, skipping it.  A one-pass relaxation runs first — both
        terminal branches need the threshold at or below some candidate
        lower (+ eps): the under-filled branch needs ``threshold ≤ eps``
        (lowers ≥ 0), the full branch ``threshold ≤ min_top_lower + eps ≤
        max_lower + eps``, where ``max_lower`` over the effective arrays
        (:meth:`_screen_arrays`) never undershoots the dict's.  When the
        relaxation can't decide, :meth:`_stop_replay_positions` replays
        the greedy certification exactly on the flat arrays — so the
        object replay runs only on the iteration it actually certifies
        (or when a defensive duplicate made positions untrustworthy).
        """
        threshold = state.threshold
        layout = state.layout
        if layout is None or layout.dirty or layout.n_all == 0:
            return threshold > TIE_EPSILON
        stats = layout.batch_stats
        if stats is not None and threshold > stats[1] + TIE_EPSILON:
            # The raw segment max never undershoots the dict's max lower,
            # so the one-compare relaxation is sound without arrays.
            return True
        lowers, _, _ = self._screen_arrays(layout)
        if threshold > lowers.max() + TIE_EPSILON:
            return True
        if layout.has_duplicates:
            return False
        return self._stop_replay_positions(
            layout, state.k, threshold, tail_bound < TIE_EPSILON
        )

    def _check_stop(self, state: QueryState) -> bool:
        """Algorithm 2's pre-step check; sets ``terminated_by`` / ``done``."""
        if state.done:
            return True
        tail_bound = self.score.tail_bound_at(state.iterations)
        if self._stop_screen(state, tail_bound):
            # The replay provably cannot certify: only the anytime
            # budgets apply this iteration.
            self._stats["stop_checks_fast"] += 1
        else:
            self._stats["stop_checks_full"] += 1
            self._sync_bounds(state)
            ordered = sorted(
                state.candidates.values(), key=lambda c: (-c.upper, -c.depth, c.uri)
            )
            if self._stop_condition(ordered, state.k, state.threshold, tail_bound):
                state.terminated_by = "threshold"
                state.done = True
                return True
        if state.iterations >= state.hard_cap:
            state.terminated_by = "anytime"
            state.done = True
        elif (
            state.time_budget is not None
            and time.perf_counter() - state.started > state.time_budget
        ):
            state.terminated_by = "anytime"
            state.done = True
        return state.done

    def _absorb_discovery(
        self,
        state: QueryState,
        cache: Optional[_BatchCache] = None,
        idents: Optional[Sequence[int]] = None,
    ) -> None:
        """Discovery half of one absorbed step: components + threshold.

        Bumps the iteration counter, folds newly reached nodes into the
        processed-component set (gathering candidates for matching
        components), and refreshes the unexplored-document threshold.
        *idents* is this state's slice of the batch-wide newly-reached
        component scan (ascending, exactly the order the per-state
        ``np.unique`` produced); sequentially it is derived from the
        state's own border / seen arrays.
        """
        state.iterations += 1
        if idents is None:
            reached = state.border != 0
            fresh = np.flatnonzero(reached & ~state.seen)
            state.seen |= reached
            if fresh.size:
                found = self._index_component[fresh]
                idents = np.unique(found[found >= 0]).tolist()
            else:
                idents = ()
        for ident in idents:
            if ident in state.processed:
                continue
            state.processed.add(ident)
            if ident in state.matching:
                added = self._gather_candidates(
                    self.component_index.component(ident),
                    state.extensions,
                    state,
                    cache=cache,
                    cache_key=state.cache_key,
                )
                state.candidates_examined += added
            else:
                state.components_discarded += 1
        if state.all_matched:
            state.threshold = 0.0
        elif state.matching <= state.processed:
            state.all_matched = True
            state.threshold = 0.0
        else:
            state.threshold = self.score.threshold_at(
                state.weight_key, state.iterations
            )

    def _post_step(self, state: QueryState, tail_bound: float) -> None:
        """Certification half: clean the candidate set (screened).

        ``candidate_uris`` is recorded at gather time (candidates only
        ever enter the dict there, and cleaning runs after the per-
        iteration recording ran in the original loop), so no per-
        iteration pass over the whole dict is needed here.
        """
        self._clean_candidates_screened(state, tail_bound)

    def _absorb_step(
        self,
        state: QueryState,
        cache: Optional[_BatchCache] = None,
    ) -> None:
        """Fold one already-propagated border back into *state*.

        The caller has already advanced ``state.border`` /
        ``state.accumulated`` through :meth:`ProximityIndex.step`; the
        batched loop runs the same three sub-phases (discovery, bounds
        refresh, certification) over all active states, sharing one
        bounds pass — each state sees the identical per-state sequence,
        which is what keeps the two modes bit-identical.
        """
        self._absorb_discovery(state, cache=cache)
        tail_bound = self.score.tail_bound_at(state.iterations)
        self._update_bounds(state, tail_bound)
        self._post_step(state, tail_bound)

    def _finish(self, state: QueryState) -> SearchResult:
        """Assemble the top-k answer and timing of a finished query."""
        self._sync_bounds(state)
        results = self._assemble(state.candidates, state.k)
        wall_time = time.perf_counter() - state.started
        return SearchResult(
            seeker=state.seeker,
            keywords=state.keywords,
            k=state.k,
            results=results,
            iterations=state.iterations,
            terminated_by=state.terminated_by,
            elapsed_seconds=wall_time,
            candidates_examined=state.candidates_examined,
            components_processed=len(state.processed),
            components_discarded=state.components_discarded,
            candidate_uris=state.candidate_uris,
            extended_keyword_count=state.extended_keyword_count,
            batch_index=state.batch_index,
            wall_time=wall_time,
        )

    # ------------------------------------------------------------------
    # Main entry points
    # ------------------------------------------------------------------
    def search(
        self,
        seeker: object,
        keywords: Sequence[object],
        k: int = 5,
        semantic: bool = True,
        max_iterations: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SearchResult:
        """Answer the query ``(seeker, keywords)`` with the top-*k* results.

        ``semantic=False`` disables keyword extension (used by the
        semantic-reachability measure of Section 5.4).  *max_iterations* /
        *time_budget* activate the anytime termination of Section 4.1.

        Fully-default queries (no explicit budget) are answered from the
        LRU result cache when the same ``(seeker, keywords, semantic, k)``
        was recently finished; the replayed answer is identical, with only
        the timing fields refreshed.
        """
        started = time.perf_counter()
        self._fresh_caches()
        cache_key: Optional[Tuple] = None
        if (
            self._result_cache is not None
            and max_iterations is None
            and time_budget is None
        ):
            cache_key = (URI(seeker), _normalize_keywords(keywords), semantic, k)
            cached = self._result_cache.get(cache_key)
            if cached is not None:
                elapsed = time.perf_counter() - started
                return replace(
                    cached, batch_index=0, elapsed_seconds=elapsed, wall_time=elapsed
                )
        state = self._prepare_query(
            seeker,
            keywords,
            k=k,
            semantic=semantic,
            max_iterations=max_iterations,
            time_budget=time_budget,
            cache=self._plan_cache,
        )
        while not self._check_stop(state):
            state.border = self.prox_index.step(state.border) / self.score.gamma
            state.accumulated += self.score.c_gamma * state.border
            self._absorb_step(state, cache=self._plan_cache)
        result = self._finish(state)
        if cache_key is not None:
            self._result_cache.put(cache_key, result, self._result_meta(state))
        return result

    def search_many(
        self,
        queries: Sequence[object],
        k: int = 5,
        semantic: bool = True,
        max_iterations: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> List[SearchResult]:
        """Answer many queries concurrently, advancing them in lock-step.

        Each element of *queries* is a ``(seeker, keywords)`` or
        ``(seeker, keywords, k)`` tuple, or any object with ``seeker`` /
        ``keywords`` (and optionally ``k``) attributes, e.g. a
        :class:`repro.queries.workload.QuerySpec`.  The default *k*,
        *semantic*, *max_iterations* and per-query *time_budget* apply to
        every query that does not carry its own ``k``.

        Every iteration stacks the borders of all still-active queries
        into one matrix and replaces N sparse mat-vec products with a
        single ``T^T @ B`` mat-mat product
        (:meth:`ProximityIndex.step_many`); a query's column is retired
        from the batch the moment its threshold stop (or anytime budget)
        fires.  Query-independent work — keyword extension, component
        matching, weight bounds and per-component connection fixpoints —
        is computed once per distinct keyword set and shared across the
        batch, and identical in-flight queries (same seeker, keywords,
        k and settings — hot queries under heavy traffic) are coalesced
        into a single exploration.  A query that is a
        :class:`~repro.engine.request.QueryRequest` (or a mapping with
        the corresponding keys) executes under its *own* ``semantic`` /
        ``max_iterations`` / ``time_budget``; the batch-level kwargs are
        defaults for queries that do not carry them.  Results are
        returned in input order and are bit-identical to running
        :meth:`search` on each query separately.
        """
        # Local import: the engine package sits above core and imports
        # this module at load time; by the time queries arrive both are
        # fully initialized.
        from ..engine.request import QueryRequest

        batch_started = time.perf_counter()
        self._fresh_caches()
        cache = self._plan_cache if self._plan_cache is not None else _BatchCache()
        replayed: Dict[Tuple, SearchResult] = {}
        unique_states: Dict[Tuple, QueryState] = {}
        assignment: List[Tuple] = []
        for batch_index, query in enumerate(queries):
            request = QueryRequest.from_obj(
                query,
                default_k=k,
                semantic=semantic,
                max_iterations=max_iterations,
                time_budget=time_budget,
            )
            key = (request.seeker, request.keywords, request.k, request.settings)
            assignment.append(key)
            if key in unique_states or key in replayed:
                continue
            # Budgeted requests bypass the result cache (their answers
            # depend on the budget), exactly as in :meth:`search`.
            cacheable = (
                self._result_cache is not None
                and request.max_iterations is None
                and request.time_budget is None
            )
            if cacheable:
                cached = self._result_cache.get(
                    (request.seeker, request.keywords, request.semantic, request.k)
                )
                if cached is not None:
                    # Refresh both timing fields, exactly as search() does
                    # on a replay: a replayed answer spent no exploration
                    # time, and the two fields must stay consistent.
                    elapsed = time.perf_counter() - batch_started
                    replayed[key] = replace(
                        cached,
                        batch_index=batch_index,
                        elapsed_seconds=elapsed,
                        wall_time=elapsed,
                    )
                    continue
            unique_states[key] = self._prepare_query(
                request.seeker,
                request.keywords,
                k=request.k,
                semantic=request.semantic,
                max_iterations=request.max_iterations,
                time_budget=request.time_budget,
                batch_index=batch_index,
                cache=cache,
            )

        states = list(unique_states.values())
        active = [state for state in states if not self._check_stop(state)]
        borders: Optional[np.ndarray] = None
        acc_rows: Optional[np.ndarray] = None
        seen_rows: Optional[np.ndarray] = None
        batch_layout: Optional[_BatchLayout] = None
        built_at = -_REBUILD_INTERVAL
        if active:
            # Batch-major state: the accumulated vectors and seen masks of
            # all active queries live as columns of two C-contiguous
            # column-major matrices — the same orientation ``step_many``
            # produces — so the per-iteration accumulate / reach / fresh
            # updates run without a single transposed (strided) pass, and
            # the bounds refresh gathers from one flat array.
            acc_rows = np.ascontiguousarray(
                np.stack([state.accumulated for state in active], axis=1)
            )
            seen_rows = np.ascontiguousarray(
                np.stack([state.seen for state in active], axis=1)
            )
            for row, state in enumerate(active):
                state.accumulated = acc_rows[:, row]
                state.seen = seen_rows[:, row]
        phase = self._phase_seconds
        while active:
            step_started = time.perf_counter()
            if borders is None:
                borders = np.column_stack([state.border for state in active])
            stepped = self.prox_index.step_many(borders)
            stepped /= self.score.gamma
            acc_rows += self.score.c_gamma * stepped
            reached_rows = stepped != 0
            fresh_matrix = reached_rows & ~seen_rows
            seen_rows |= reached_rows
            # One batch-wide scan classifies every newly reached node of
            # every query: encode (row, component) pairs into one integer
            # key, dedupe with a single ``np.unique`` (ascending idents
            # within each row — the order the per-state unique produced),
            # and hand each state its slice.
            stride = self._component_stride
            nodes_f, rows_f = np.nonzero(fresh_matrix)
            found = self._index_component[nodes_f]
            mask = found >= 0
            if mask.any():
                encoded = np.unique(rows_f[mask] * stride + found[mask])
                disc_rows = encoded // stride
                disc_idents = encoded % stride
                row_bounds = np.searchsorted(
                    disc_rows, np.arange(len(active) + 1)
                )
            else:
                row_bounds = None
            discover_started = time.perf_counter()
            n_stale = 0
            for row, state in enumerate(active):
                state.border = stepped[:, row]
                idents = (
                    disc_idents[row_bounds[row] : row_bounds[row + 1]].tolist()
                    if row_bounds is not None
                    else ()
                )
                self._absorb_discovery(state, cache=cache, idents=idents)
                if state.layout is not None and state.layout.dirty:
                    state.needs_own_refresh = True
                if state.needs_own_refresh:
                    n_stale += 1
            bounds_started = time.perf_counter()
            # All active states share the same iteration count n — the
            # lock-step invariant — so one tail bound serves the batch.
            tail_bound = self.score.tail_bound_at(active[0].iterations)
            # Rebuilding the batch-wide concatenation costs a pass over
            # every state, so a few grown states refresh per-state against
            # their own layout instead (identical reduceat segments →
            # identical bits); rebuild once growth is no longer the
            # exception — or after a compaction dropped the layout.  The
            # rebuild interval keeps the early discovery storm (every
            # state growing every iteration) from rebuilding every
            # iteration: between rebuilds the grown states simply stay on
            # the per-state path.
            iteration_now = active[0].iterations
            if batch_layout is None or (
                2 * n_stale >= len(active)
                and iteration_now - built_at >= _REBUILD_INTERVAL
            ):
                batch_layout = _BatchLayout(active, len(active))
                built_at = iteration_now
                self._stats["batch_layout_builds"] += 1
                for state in active:
                    state.needs_own_refresh = False
            self._refresh_bounds_batch(batch_layout, acc_rows, tail_bound)
            for state in active:
                if state.needs_own_refresh:
                    self._update_bounds(state, tail_bound)
            certify_started = time.perf_counter()
            keep = []
            for row, state in enumerate(active):
                self._post_step(state, tail_bound)
                if not self._check_stop(state):
                    keep.append(row)
            done_at = time.perf_counter()
            phase["step"] += discover_started - step_started
            phase["discover"] += bounds_started - discover_started
            phase["bounds"] += certify_started - bounds_started
            phase["clean_stop"] += done_at - certify_started
            if len(keep) == len(active):
                # Nobody retired: the stepped matrix simply becomes the next
                # border matrix, with no per-iteration re-stacking.
                borders = stepped
            else:
                kept = set(keep)
                for row, state in enumerate(active):
                    if row not in kept:
                        # Retired rows are never read again; dropping the
                        # views releases this iteration's stepped matrix
                        # and, after compaction, the old row matrices.
                        # The visited-row footprint outlives the views for
                        # the result cache's scoped delta eviction.
                        state.visited_rows = np.flatnonzero(state.seen)
                        state.border = None
                        state.accumulated = None
                        state.seen = None
                active = [active[row] for row in keep]
                if active:
                    borders = np.ascontiguousarray(stepped[:, keep])
                    acc_rows = np.ascontiguousarray(acc_rows[:, keep])
                    seen_rows = np.ascontiguousarray(seen_rows[:, keep])
                    for row, state in enumerate(active):
                        state.accumulated = acc_rows[:, row]
                        state.seen = seen_rows[:, row]
                else:
                    borders = acc_rows = seen_rows = None
                batch_layout = None

        finished = {key: self._finish(state) for key, state in unique_states.items()}
        if self._result_cache is not None:
            for key, result in finished.items():
                seeker_key, keywords_key, k_key, settings = key
                semantic_key, max_iterations_key, time_budget_key = settings
                if max_iterations_key is None and time_budget_key is None:
                    self._result_cache.put(
                        (seeker_key, keywords_key, semantic_key, k_key),
                        result,
                        self._result_meta(unique_states[key]),
                    )
        finished.update(replayed)
        results: List[SearchResult] = []
        for batch_index, key in enumerate(assignment):
            primary = finished[key]
            if primary.batch_index == batch_index:
                results.append(primary)
            else:
                results.append(replace(primary, batch_index=batch_index))
        return results

    # ------------------------------------------------------------------
    def _assemble(self, candidates: Dict[URI, Candidate], k: int) -> List[RankedResult]:
        """Greedy top-k under the vertical-neighbor constraint."""
        ordered = sorted(
            candidates.values(), key=lambda c: (-c.upper, -c.depth, c.uri)
        )
        picked: List[Candidate] = []
        for candidate in ordered:
            if candidate.upper <= 0.0:
                continue
            if any(self._are_vertical_neighbors(candidate, other) for other in picked):
                continue
            picked.append(candidate)
            if len(picked) == k:
                break
        return [RankedResult(c.uri, c.lower, c.upper) for c in picked]
