"""The S3 core: instance model, score, and the S3k search algorithm."""

from .components import Component, ComponentIndex
from .concrete_score import S3kScore
from .connection_index import ConnectionIndex, StaleIndexError
from .connections import ComponentConnections, Connection, resolve_connections
from .extension import extend_query, keyword_extension
from .instance import S3Instance
from .oracle import exact_proximities, exact_scores, exact_top_k
from .paths import (
    NetworkEdge,
    PathExplorer,
    SocialPath,
    bounded_social_proximity,
)
from .prox import ProximityIndex
from .score import FeasibleScore
from .search import (
    Candidate,
    QueryState,
    RankedResult,
    S3kSearch,
    SearchResult,
)

__all__ = [
    "S3Instance",
    "S3kSearch",
    "S3kScore",
    "FeasibleScore",
    "SearchResult",
    "RankedResult",
    "Candidate",
    "QueryState",
    "Component",
    "ComponentIndex",
    "ComponentConnections",
    "Connection",
    "ConnectionIndex",
    "StaleIndexError",
    "resolve_connections",
    "ProximityIndex",
    "PathExplorer",
    "SocialPath",
    "NetworkEdge",
    "bounded_social_proximity",
    "keyword_extension",
    "extend_query",
    "exact_scores",
    "exact_top_k",
    "exact_proximities",
]
