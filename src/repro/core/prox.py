"""The proximity engine: normalized transition structure over ``I``.

Implements the optimization of Section 5.2: instead of materializing
``borderPath`` (the set of all length-n paths), the engine keeps, for each
explored vertex, the *weighted sum* over all paths of length n from the
seeker — ``borderProx`` — and steps it with a sparse matrix-vector
product.  The matrix ``distance`` (paper's name) encodes the network edges
*after* path normalization and vertical-neighborhood traversal:

    ``T[v, m] = Σ_{e=(v'→m), v' ∈ neigh*(v)} e.w / W(v)``

where ``neigh*(v)`` is the closed vertical neighborhood of ``v`` and
``W(v)`` the total weight of the network edges leaving it.  A path "at"
``v`` (having entered the neighborhood through ``v``) moves to ``m`` with
probability-like mass ``T[v, m]``; rows sum to 1 (or 0 for sinks), which
yields the attenuation bounds of the concrete score.

Both a vectorized mode (scipy CSR, the paper's RAM-resident sparse
matrices) and a naive dict-of-dicts mode (for the ablation benchmark and as
an oracle in tests) are provided.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import sparse

from ..rdf.namespaces import NETWORK_EDGE_PROPERTIES
from ..rdf.terms import URI
from .instance import S3Instance


class ProximityIndex:
    """Normalized transition structure with dense-vector stepping."""

    def __init__(self, instance: S3Instance, use_matrix: bool = True):
        self._instance = instance
        self.use_matrix = use_matrix
        self._nodes: List[URI] = sorted(instance.network_nodes())
        self._index: Dict[URI, int] = {uri: i for i, uri in enumerate(self._nodes)}
        self._neigh_cache: Dict[URI, np.ndarray] = {}
        self._build_transition()

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes in the social-path universe."""
        return len(self._nodes)

    def node_index(self, uri: URI) -> int:
        """Dense index of *uri*; raises ``KeyError`` when unknown."""
        return self._index[uri]

    def node_index_of(self, uri: URI) -> Optional[int]:
        """Dense index of *uri*, or ``None`` when not in the universe."""
        return self._index.get(uri)

    def node_uri(self, index: int) -> URI:
        return self._nodes[index]

    # ------------------------------------------------------------------
    def _out_edges_by_node(self) -> Dict[URI, List[Tuple[int, float]]]:
        """Raw network out-edges, subject → [(target index, weight)]."""
        edges: Dict[URI, List[Tuple[int, float]]] = defaultdict(list)
        for uri in self._nodes:
            for target, weight, _pred in self._instance.network_out_edges(uri):
                target_index = self._index.get(target)
                if target_index is not None and weight > 0.0:
                    edges[uri].append((target_index, weight))
        return edges

    def _merged_row(
        self, uri: URI, own_edges: Dict[URI, List[Tuple[int, float]]]
    ) -> Dict[int, float]:
        """One normalized transition row — shared by full builds and
        delta patches so both produce bit-identical float sequences."""
        merged: Dict[int, float] = defaultdict(float)
        for member in self._instance.vertical_neighborhood(uri):
            for target_index, weight in own_edges.get(member, ()):
                merged[target_index] += weight
        total = sum(merged.values())
        if total <= 0.0:
            return {}
        return {
            target_index: weight / total for target_index, weight in merged.items()
        }

    def _matrix_from_rows(self) -> None:
        """(Re)build the transposed stepping CSR from ``self._rows``."""
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for v, row in enumerate(self._rows):
            for target_index, normalized in row.items():
                rows.append(v)
                cols.append(target_index)
                data.append(normalized)
        n = len(self._nodes)
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(n, n), dtype=np.float64
        )
        #: transposed transition, so that ``next = T^T @ border`` is a
        #: single CSR mat-vec.
        self._transition_t = matrix.transpose().tocsr()
        self._transition_t.sort_indices()

    def _build_transition(self) -> None:
        own_edges = self._out_edges_by_node()
        row_dicts: List[Dict[int, float]] = [dict() for _ in self._nodes]
        for uri in self._nodes:
            row_dicts[self._index[uri]] = self._merged_row(uri, own_edges)
        self._rows = row_dicts
        self._matrix_from_rows()

    # ------------------------------------------------------------------
    # Transition placement (SlabStore hooks)
    # ------------------------------------------------------------------
    def transition_arrays(self) -> Optional[Dict[str, np.ndarray]]:
        """The transposed-transition CSR arrays, for placement in a
        :class:`~repro.storage.slab_store.SlabStore` (``None`` in naive
        row-dict mode — there is no matrix to place)."""
        if not self.use_matrix:
            return None
        matrix = self._transition_t
        return {
            "data": matrix.data,
            "indices": matrix.indices,
            "indptr": matrix.indptr,
        }

    def adopt_transition(self, arrays: Dict[str, np.ndarray]) -> None:
        """Rebuild the stepping matrix around externally placed CSR
        arrays (read-only shm / mmap views) — zero-copy: stepping is
        pure ``T^T @ border`` reads, so shared pages are never written.
        """
        n = len(self._nodes)
        matrix = sparse.csr_matrix(
            (arrays["data"], arrays["indices"], arrays["indptr"]),
            shape=(n, n),
            copy=False,
        )
        # The exported arrays came from a sorted canonical CSR; recording
        # that here keeps scipy from ever trying to (re)sort — which
        # would write into the read-only shared buffers.
        matrix.has_sorted_indices = True
        matrix.has_canonical_format = True
        self._transition_t = matrix

    # ------------------------------------------------------------------
    # Delta patching (incremental maintenance)
    # ------------------------------------------------------------------
    def apply_delta(
        self, edge_sources: Iterable[URI]
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        """Patch the transition after new nodes / network edges appeared.

        *edge_sources* are the subjects of the new (or re-weighted)
        network-edge triples.  Because the vertical-neighbor relation is
        symmetric, the rows whose merged out-edges can change are exactly
        the closed vertical neighborhoods of those sources — every such
        row (plus every row of a node new to the universe) is recomputed
        with :meth:`_merged_row`, then the stepping matrix is rebuilt
        from the row dicts (never writing a possibly-adopted CSR in
        place).  Returns ``(old_to_new, affected_rows)``: the old→new
        dense index map when the universe grew (``None`` when indices are
        unchanged) and the sorted new dense indices of every recomputed
        row — a query whose exploration never touched one of those rows
        steps bit-identically before and after the patch.

        The caller must ensure the mutation only *added* universe nodes;
        a shrunk universe raises ``ValueError`` (fall back to a full
        rebuild).
        """
        instance = self._instance
        current = instance.network_nodes()
        added = sorted(uri for uri in current if uri not in self._index)
        if len(current) != len(self._nodes) + len(added):
            raise ValueError(
                "network universe shrank; the proximity index cannot be "
                "patched incrementally"
            )
        old_nodes = self._nodes
        old_rows = self._rows
        old_to_new: Optional[np.ndarray] = None
        if added:
            self._nodes = sorted(current)
            self._index = {uri: i for i, uri in enumerate(self._nodes)}
            old_to_new = np.fromiter(
                (self._index[uri] for uri in old_nodes),
                dtype=np.int64,
                count=len(old_nodes),
            )
            new_rows: List[Dict[int, float]] = [dict() for _ in self._nodes]
            for v, row in enumerate(old_rows):
                new_rows[int(old_to_new[v])] = {
                    int(old_to_new[t]): w for t, w in row.items()
                }
            self._rows = new_rows
            # Neighborhood membership is unchanged by node additions
            # (documents are untouched), only dense indices shifted.
            self._neigh_cache = {
                uri: old_to_new[cached]
                for uri, cached in self._neigh_cache.items()
            }

        sources: Set[URI] = set(edge_sources)
        # A node new to the universe also un-filters any pre-existing
        # network edge pointing at it: the edge's subject rows change too.
        for uri in added:
            for wt in instance.graph.triples(obj=uri):
                if wt.predicate in NETWORK_EDGE_PROPERTIES:
                    sources.add(wt.subject)
        affected: Set[URI] = set(added)
        for source in sources:
            if source not in self._index:
                continue
            affected.update(
                member
                for member in instance.vertical_neighborhood(source)
                if member in self._index
            )
        needed: Set[URI] = set()
        for uri in affected:
            needed.update(instance.vertical_neighborhood(uri))
        own_edges: Dict[URI, List[Tuple[int, float]]] = {}
        for member in needed:
            entries: List[Tuple[int, float]] = []
            for target, weight, _pred in instance.network_out_edges(member):
                target_index = self._index.get(target)
                if target_index is not None and weight > 0.0:
                    entries.append((target_index, weight))
            if entries:
                own_edges[member] = entries
        for uri in affected:
            self._rows[self._index[uri]] = self._merged_row(uri, own_edges)
        self._matrix_from_rows()
        affected_rows = np.fromiter(
            sorted(self._index[uri] for uri in affected),
            dtype=np.int64,
            count=len(affected),
        )
        return old_to_new, affected_rows

    # ------------------------------------------------------------------
    # Border propagation
    # ------------------------------------------------------------------
    def start_vector(self, seeker: URI) -> np.ndarray:
        """``δ_u``: unit mass on the seeker."""
        border = np.zeros(self.size, dtype=np.float64)
        border[self._index[seeker]] = 1.0
        return border

    def step(self, border: np.ndarray) -> np.ndarray:
        """One exploration step: mass of paths one edge longer."""
        if self.use_matrix:
            return self._transition_t @ border
        return self._step_naive(border)

    def step_many(self, borders: np.ndarray) -> np.ndarray:
        """Advance many borders at once with a single mat-mat product.

        *borders* is a ``(size, n_queries)`` array holding one exploration
        border per column; the result has the same shape and each column
        equals ``step(borders[:, j])`` bit for bit — scipy's CSR mat-mat
        accumulates every output column in the same element order as the
        corresponding mat-vec, so batched execution stays exactly
        reproducible against sequential runs.
        """
        if borders.ndim != 2 or borders.shape[0] != self.size:
            raise ValueError(
                f"expected a ({self.size}, n) border matrix, "
                f"got shape {borders.shape!r}"
            )
        if borders.shape[1] == 0:
            return borders.copy()
        if self.use_matrix:
            return self._transition_t @ borders
        return np.column_stack(
            [self._step_naive(borders[:, j]) for j in range(borders.shape[1])]
        )

    def _step_naive(self, border: np.ndarray) -> np.ndarray:
        """Pure-Python propagation (ablation / oracle)."""
        result = np.zeros_like(border)
        for v in np.nonzero(border)[0]:
            mass = border[v]
            for target_index, weight in self._rows[v].items():
                result[target_index] += mass * weight
        return result

    def transition_row(self, uri: URI) -> Dict[int, float]:
        """Normalized out-transitions of *uri* (over its neighborhood)."""
        return dict(self._rows[self._index[uri]])

    # ------------------------------------------------------------------
    # Source proximity
    # ------------------------------------------------------------------
    def closed_neighborhood_indices(self, uri: URI) -> np.ndarray:
        """Dense indexes of *uri* and its vertical neighbors.

        A path reaches a source when it ends at the source or at one of
        its vertical neighbors, so the proximity *to* a source sums the
        accumulated mass over this closed neighborhood.
        """
        cached = self._neigh_cache.get(uri)
        if cached is None:
            members = self._instance.vertical_neighborhood(uri)
            cached = np.fromiter(
                (self._index[m] for m in sorted(members) if m in self._index),
                dtype=np.int64,
            )
            self._neigh_cache[uri] = cached
        return cached

    def source_proximity(self, accumulated: np.ndarray, source: URI) -> float:
        """``prox≤n(u, source)`` from the accumulated per-node proximities."""
        indices = self.closed_neighborhood_indices(source)
        if indices.size == 0:
            return 0.0
        return float(accumulated[indices].sum())
