"""Keyword extension ``Ext(k)`` (Definition 2.1).

Given a saturated S3 instance and a keyword ``k``, the extension of ``k``
is ``{k}`` plus every ``b`` such that ``b type k``, ``b ≺sc k`` or
``b ≺sp k`` holds in ``I``.  Because the graph is saturated, the subclass /
subproperty triples already include their transitive closure, so one level
of lookup yields the complete extension without loss of precision.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..rdf.namespaces import RDF_TYPE, RDFS_SUBCLASS, RDFS_SUBPROPERTY
from ..rdf.terms import Term, URI, coerce_term
from .instance import S3Instance


def keyword_extension(instance: S3Instance, keyword: object) -> Set[Term]:
    """Return ``Ext(keyword)`` over the given instance.

    The result always contains *keyword* itself.  Only weight-1 (certain)
    schema triples contribute, consistently with the saturation rules.
    """
    term = keyword if isinstance(keyword, URI) else coerce_term(keyword)
    extension: Set[Term] = {term}
    graph = instance.graph
    for predicate in (RDF_TYPE, RDFS_SUBCLASS, RDFS_SUBPROPERTY):
        for wt in graph.triples(predicate=predicate, obj=term):
            if wt.weight == 1.0:
                extension.add(wt.subject)
    return extension


def extend_query(instance: S3Instance, keywords: Iterable[object]) -> Dict[Term, Set[Term]]:
    """Extend every query keyword; returns ``{keyword: Ext(keyword)}``.

    This is the query-expansion step of Section 5.1, which on the paper's
    workloads increased query size by ~50% on average.
    """
    extended: Dict[Term, Set[Term]] = {}
    for keyword in keywords:
        term = keyword if isinstance(keyword, URI) else coerce_term(keyword)
        extended[term] = keyword_extension(instance, term)
    return extended
