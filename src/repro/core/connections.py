"""Connections between documents and keywords: ``con(d, k)`` (Section 3.2).

``con(d, k)`` is a set of three-tuples ``(type, f, src)`` with
``type ∈ {S3:contains, S3:relatedTo, S3:commentsOn}``, ``f ∈ Frag(d)`` the
fragment due to which ``d`` is connected, and ``src ∈ Ω ∪ D`` the origin of
the connection.  The rules (for ``k' ∈ Ext(k)``):

* **contains** — fragment ``f`` contains ``k'`` ⇒ ``(contains, f, d)`` for
  every ancestor-or-self ``d`` of ``f`` (the source is ``d`` itself);
* **tags** — a tag on ``f`` with keyword ``k'`` by ``src`` ⇒
  ``(relatedTo, f, src)``; more generally any connection of a tag on ``f``
  to ``k`` propagates as ``(relatedTo, f, src)`` (covers tags on tags);
* **endorsements** — a keyword-less tag ``a`` by ``u`` on subject ``s``
  inherits ``s``'s connections with source ``u``;
* **comments** — a comment ``c`` on ``f`` with a connection to ``k`` due to
  ``src`` ⇒ ``(commentsOn, f, src)`` for ``f``'s ancestors (the source
  carries over; contains-connections of ``c`` have source ``c``).

These rules are monotone over a finite lattice, so we evaluate them as a
worklist fixpoint, one component at a time and only for the query's
extended keywords.  Evidence is stored *per attachment node* as
``(type, src)`` pairs; the per-candidate ``con(d, k)`` is then the union of
the evidence over ``Frag(d)``, with the ``_SELF`` placeholder resolved to
the candidate (contains-connections have the candidate itself as source).

Two evaluation strategies share the candidate-extraction and resolution
helpers below: :class:`ComponentConnections` runs the fixpoint at query
time (the reference implementation and test oracle), while
:class:`repro.core.connection_index.ConnectionIndex` precomputes the
fixpoint per *atomic* keyword offline and unions the per-atom evidence at
query time — sound because the rules never mix keywords, so the fixpoint
of ``Ext(k)`` equals the union of the fixpoints of its atoms.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Set,
    Tuple,
)

from ..rdf.namespaces import S3_COMMENTS_ON, S3_CONTAINS, S3_RELATED_TO
from ..rdf.terms import Term, URI, coerce_term
from .components import Component
from .instance import S3Instance

#: Placeholder source for contains-connections: resolved to the candidate.
_SELF = URI("S3:__self__")

#: ``node URI -> {(type, src)}`` — the per-attachment-node evidence of one
#: query keyword, as produced by the fixpoint or by the precomputed index.
Evidence = Mapping[URI, AbstractSet[Tuple[URI, URI]]]


class Connection(NamedTuple):
    """One resolved element of ``con(d, k)``."""

    ctype: URI
    fragment: URI
    source: URI
    #: ``|pos(d, f)|`` — structural distance from the candidate to ``f``.
    distance: int


def covering_candidates(
    instance: S3Instance,
    component: Component,
    evidence_by_keyword: Mapping[Term, Evidence],
) -> List[URI]:
    """Document nodes ``d`` with ``con(d, k) ≠ ∅`` for every keyword.

    Since the score is a product over query keywords, only these can have
    a non-zero score.  Coverage is computed bottom-up per tree; candidates
    are emitted in post-order per sorted root (children before parents),
    the canonical order both evaluation strategies share.
    """
    keywords = list(evidence_by_keyword)
    candidates: List[URI] = []
    for root in sorted(component.roots):
        document = instance.documents[root]
        coverage: Dict[URI, FrozenSet[int]] = {}

        def visit(node) -> FrozenSet[int]:
            covered = {
                i
                for i, keyword in enumerate(keywords)
                if evidence_by_keyword[keyword].get(node.uri)
            }
            for child in node.children:
                covered |= visit(child)
            result = frozenset(covered)
            coverage[node.uri] = result
            return result

        visit(document.root)
        full = frozenset(range(len(keywords)))
        candidates.extend(uri for uri, cov in coverage.items() if cov == full)
    return candidates


def resolve_connections(
    instance: S3Instance, evidence: Evidence, candidate: URI
) -> List[Connection]:
    """Resolve ``con(candidate, k)`` from one keyword's *evidence* map.

    Walks ``Frag(candidate)`` (the candidate's subtree), turns every
    evidence pair into a :class:`Connection` with its structural distance
    and the ``_SELF`` placeholder resolved to the candidate, and returns
    the connections sorted (a canonical order shared by both evaluation
    strategies).
    """
    document = instance.document_of(candidate)
    if document is None:
        return []
    resolved: Set[Connection] = set()
    base = document.node(candidate)
    base_depth = base.depth
    for node in base.iter_subtree():
        pairs = evidence.get(node.uri)
        if not pairs:
            continue
        distance = node.depth - base_depth
        for ctype, src in pairs:
            source = candidate if src == _SELF else src
            resolved.add(Connection(ctype, node.uri, source, distance))
    return sorted(resolved)


class ComponentConnections:
    """Evidence and candidate extraction for one component and one query.

    Parameters
    ----------
    instance:
        The (saturated) S3 instance.
    component:
        The component to evaluate.
    extensions:
        Mapping query keyword → its extension ``Ext(k)`` (or ``{k}`` when
        semantic expansion is disabled).
    """

    def __init__(
        self,
        instance: S3Instance,
        component: Component,
        extensions: Dict[Term, Set[Term]],
    ):
        self._instance = instance
        self._component = component
        self._extensions = dict(extensions)
        #: keyword -> node URI -> set of (type, src) evidence pairs
        self._evidence: Dict[Term, Dict[URI, Set[Tuple[URI, URI]]]] = {}
        for keyword, extension in self._extensions.items():
            self._evidence[keyword] = self._fixpoint(extension)

    # ------------------------------------------------------------------
    # Fixpoint for one query keyword
    # ------------------------------------------------------------------
    def _fixpoint(self, extension: Set[Term]) -> Dict[URI, Set[Tuple[URI, URI]]]:
        instance = self._instance
        component = self._component
        extension = {coerce_term(k) for k in extension}

        evidence: Dict[URI, Set[Tuple[URI, URI]]] = defaultdict(set)
        # Base case: contains.
        for node_uri in component.nodes:
            document = instance.documents[instance.node_to_document[node_uri]]
            node = document.node(node_uri)
            if any(coerce_term(keyword) in extension for keyword in node.keywords):
                evidence[node_uri].add((S3_CONTAINS, _SELF))

        tag_sources: Dict[URI, Set[URI]] = defaultdict(set)

        def doc_con_sources(root: URI) -> Set[URI]:
            """Sources of ``con(root, k)``: _SELF resolves to *root*."""
            document = instance.documents[root]
            sources: Set[URI] = set()
            for node in document.nodes():
                for _, src in evidence.get(node.uri, ()):
                    sources.add(root if src == _SELF else src)
            return sources

        def fragment_has_connection(uri: URI) -> bool:
            """True when ``con(uri, k)`` is non-empty (doc node or tag)."""
            if instance.is_tag(uri):
                return bool(tag_sources[uri])
            document = instance.document_of(uri)
            if document is None:
                return False
            return any(
                evidence.get(node.uri) for node in document.node(uri).iter_subtree()
            )

        changed = True
        while changed:
            changed = False
            # Tag sources (keyword tags, endorsements, tags on tags).
            for tag_uri in component.tags:
                tag = instance.tags[tag_uri]
                sources: Set[URI] = set()
                if tag.keyword is not None:
                    if coerce_term(tag.keyword) in extension:
                        sources.add(tag.author)
                elif fragment_has_connection(tag.subject):
                    # Endorsement: inherits the subject's connections with
                    # the endorser as source.
                    sources.add(tag.author)
                for higher in instance.tags_on(tag_uri):
                    sources.update(tag_sources[higher])
                if not sources <= tag_sources[tag_uri]:
                    tag_sources[tag_uri] |= sources
                    changed = True
            # Push tag sources onto document-node subjects.
            for tag_uri in component.tags:
                tag = instance.tags[tag_uri]
                if not instance.is_document_node(tag.subject):
                    continue
                pairs = {(S3_RELATED_TO, src) for src in tag_sources[tag_uri]}
                if not pairs <= evidence[tag.subject]:
                    evidence[tag.subject] |= pairs
                    changed = True
            # Comments: the comment's connection sources carry over to the
            # commented fragment (type becomes commentsOn).
            for node_uri in component.nodes:
                comments = instance.comments_on(node_uri)
                if not comments:
                    continue
                pairs: Set[Tuple[URI, URI]] = set()
                for comment in comments:
                    if comment not in instance.documents:
                        continue
                    for src in doc_con_sources(comment):
                        pairs.add((S3_COMMENTS_ON, src))
                if not pairs <= evidence[node_uri]:
                    evidence[node_uri] |= pairs
                    changed = True
        # Drop empty sets materialized by defaultdict reads: downstream code
        # treats key presence as "has evidence".
        return {uri: pairs for uri, pairs in evidence.items() if pairs}

    # ------------------------------------------------------------------
    # Candidate extraction and resolution
    # ------------------------------------------------------------------
    def evidence(self, keyword: Term) -> Dict[URI, Set[Tuple[URI, URI]]]:
        """Raw per-node evidence of *keyword* (the oracle hook used by the
        :class:`~repro.core.connection_index.ConnectionIndex` equivalence
        tests)."""
        return self._evidence.get(keyword, {})

    def candidate_documents(self) -> List[URI]:
        """Document nodes ``d`` with ``con(d, k) ≠ ∅`` for every keyword."""
        return covering_candidates(self._instance, self._component, self._evidence)

    def connections(self, candidate: URI, keyword: Term) -> List[Connection]:
        """Resolve ``con(candidate, keyword)`` as a list of connections."""
        return resolve_connections(
            self._instance, self._evidence.get(keyword, {}), candidate
        )

    def all_connections(self, candidate: URI) -> Dict[Term, List[Connection]]:
        """``con(candidate, k)`` for every query keyword."""
        return {
            keyword: self.connections(candidate, keyword)
            for keyword in self._extensions
        }
