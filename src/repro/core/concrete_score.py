"""The paper's concrete score (Section 3.4, Definition 3.5).

Social proximity — a Katz-style weighted path sum:

    ``prox(a, b) = Cγ · Σ_{p ∈ a;b} −→prox(p) / γ^|p|``, ``Cγ = (γ−1)/γ``

with ``−→prox(p)`` the product of the normalized edge weights of ``p``.

Document score — a product over query keywords of per-keyword sums:

    ``score(d, (u, φ)) = Π_{k∈φ} Σ_{(type,f,src) ∈ con(d,k)}
    η^{|pos(d,f)|} · prox(u, src)``

for a damping factor ``η < 1``.  Ignoring the social part (prox = 1), the
per-keyword sums give the best score to the lowest common ancestor of the
nodes containing the keywords, extending classical XML IR scoring.

Feasibility (Theorem 3.1): because path normalization makes the transition
structure substochastic, the total proximity mass of length-``j`` paths is
at most 1, giving the closed-form bounds implemented below:

* ``prox − prox≤n ≤ Cγ Σ_{j>n} γ^{−j} = γ^{−(n+1)} = B>n``;
* a source of a document in a still-unexplored component is at distance
  ≥ n after iteration ``n``, hence
  ``prox(u, src) ≤ Cγ Σ_{j≥n} γ^{−j} = γ^{−n}``;
* ``Bscore(q, B) = Π_{k∈φ} (W_k · min(B, 1))`` where ``W_k`` bounds the
  per-keyword structural weight sum.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Sequence, Tuple

from .score import FeasibleScore


class S3kScore(FeasibleScore):
    """The concrete S3k score with parameters ``γ > 1`` and ``η < 1``."""

    def __init__(self, gamma: float = 2.0, eta: float = 0.9):
        if gamma <= 1.0:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        if not 0.0 < eta < 1.0:
            raise ValueError(f"eta must be in (0, 1), got {eta}")
        self.gamma = gamma
        self.eta = eta

    @property
    def c_gamma(self) -> float:
        """``Cγ = (γ−1)/γ``, normalizing ``prox`` into [0, 1]."""
        return (self.gamma - 1.0) / self.gamma

    # -- ⊕path ----------------------------------------------------------
    def aggregate_paths(self, pairs: Iterable[Tuple[float, int]]) -> float:
        return self.c_gamma * sum(pp / self.gamma**length for pp, length in pairs)

    def prox_increment(
        self, previous: float, path_proximities: Iterable[float], n: int
    ) -> float:
        # Uprox does not depend on `previous` for this score: the length-n
        # layer contributes additively.
        return self.c_gamma * sum(path_proximities) / self.gamma**n

    # -- attenuation ------------------------------------------------------
    def prox_tail_bound(self, n: int) -> float:
        # Cγ · Σ_{j>n} γ^{−j} · (mass ≤ 1)  =  γ^{−(n+1)}
        return self.gamma ** -(n + 1)

    def unexplored_source_bound(self, n: int) -> float:
        # Cγ · Σ_{j≥n} γ^{−j}  =  γ^{−n}
        return self.gamma ** -n if n > 0 else 1.0

    # -- structural weighting ----------------------------------------------
    def structural_weight(self, distance: int) -> float:
        return self.eta**distance

    # -- ⊕gen -------------------------------------------------------------
    def combine(
        self,
        keyword_count: int,
        tuples: Iterable[Tuple[int, object, int, float]],
    ) -> float:
        sums: Dict[int, float] = defaultdict(float)
        for keyword_index, _type, distance, prox in tuples:
            sums[keyword_index] += self.structural_weight(distance) * prox
        score = 1.0
        for index in range(keyword_count):
            score *= sums.get(index, 0.0)
            if score == 0.0:
                return 0.0
        return score

    def score_bound(
        self, keyword_weight_bounds: Sequence[float], prox_bound: float
    ) -> float:
        bound = 1.0
        capped = min(prox_bound, 1.0)
        for weight in keyword_weight_bounds:
            bound *= weight * capped
        return bound

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"S3kScore(gamma={self.gamma}, eta={self.eta})"
