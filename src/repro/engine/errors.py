"""Shared error shaping for the serving tiers (JSONL loop and HTTP).

Both front-ends answer failures with the same machine-readable record::

    {"error": {"type": "<kind>", "status": <http status>, "message": ...},
     "id": <request id, when known>}

:func:`classify_error` maps an exception to the (HTTP status, kind)
pair; the JSONL ``serve`` loop embeds the payload per line (the stream
never dies on one bad request), while the HTTP tier additionally uses
the status as the response code — so a client sees the identical error
body whether it arrived over a socket or a pipe.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from ..core.connection_index import StaleIndexError

__all__ = [
    "ShardUnavailableError",
    "classify_error",
    "error_message",
    "error_payload",
]


class ShardUnavailableError(RuntimeError):
    """A sharded-executor worker process died (or is respawning) while
    holding this request.

    The router answers the affected in-flight requests with this error —
    shaped as a structured 503, so clients retry against the (respawned)
    shard or another replica — and forks a replacement worker.  Defined
    here rather than in :mod:`repro.engine.sharded` so the error shaping
    has no import cycle with the router.
    """


def classify_error(exc: BaseException) -> Tuple[int, str]:
    """(HTTP status, machine-readable kind) for a serving failure.

    * malformed request (bad JSON, unknown fields, wrong shapes) → 400;
    * unknown seeker / entity (the kernel raises ``KeyError``) → 404;
    * stale persisted index slabs → 503 (the operator must re-index or
      opt into ``--rebuild-stale-index``);
    * a crashed / respawning shard worker → 503 (retryable: the router
      respawns the worker; a load balancer retries elsewhere meanwhile);
    * an expired per-request deadline → 504;
    * anything else → 500.
    """
    if isinstance(exc, StaleIndexError):
        return 503, "stale_index"
    if isinstance(exc, ShardUnavailableError):
        return 503, "shard_unavailable"
    if isinstance(exc, asyncio.TimeoutError):
        return 504, "deadline_exceeded"
    if isinstance(exc, KeyError):
        return 404, "not_found"
    if isinstance(exc, (TypeError, ValueError)):
        # json.JSONDecodeError subclasses ValueError: one arm covers the
        # parse failure and the QueryRequest shape errors alike.
        return 400, "bad_request"
    return 500, "internal"


def error_message(exc: BaseException) -> str:
    """A human-readable one-liner (``str(KeyError)`` keeps its quotes,
    which reads badly in a JSON error body)."""
    if isinstance(exc, KeyError) and len(exc.args) == 1:
        return str(exc.args[0])
    return str(exc) or type(exc).__name__


def error_payload(
    exc: BaseException, request_id: Optional[object] = None
) -> Dict[str, object]:
    """The shared error record for one failed request."""
    status, kind = classify_error(exc)
    payload: Dict[str, object] = {
        "error": {"type": kind, "status": status, "message": error_message(exc)}
    }
    if request_id is not None:
        payload["id"] = request_id
    return payload
