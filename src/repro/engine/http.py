"""HTTP serving tier: an asyncio front-end over the :class:`Engine`.

Millions of users arrive over sockets, not pipes — this module puts the
async micro-batching path behind a minimal HTTP/1.1 server built on
stdlib ``asyncio`` streams (no framework, no extra dependency):

* ``POST /search`` — one :class:`~repro.engine.request.QueryRequest`
  mapping body, or a batch envelope ``{"queries": [...]}``; answers are
  the ``QueryResponse.to_dict()`` records of the JSONL ``serve`` loop,
  so the wire format is identical across front-ends;
* ``POST /mutate`` — one
  :class:`~repro.engine.request.MutationRequest` mapping body
  (``{"op": "add_tag", ...}``); the write is applied and the kernel
  re-aligned — via the delta pipeline when expressible — before the
  200 acknowledgement, under the same admission control, deadlines and
  error shaping as ``/search``;
* ``GET /stats`` — the engine's merged counters plus the server's own;
* ``GET /healthz`` — liveness for load balancers: 200 when serving,
  503 while draining or when the persisted index slabs are stale.

**Backpressure.** Admission is bounded: at most ``max_inflight``
queries may be waiting in the micro-batch window or computing; past
that the server answers ``429 Too Many Requests`` with a
``Retry-After`` hint instead of queueing without bound.  Under
open-loop overload this is what keeps latencies flat — excess arrivals
are rejected in microseconds, not parked until their deadline expires.

**Deadlines.** A request may carry ``X-Deadline-Ms`` (header) or
``deadline_ms`` (body envelope); the server maps it onto the batcher
budget — the kernel's anytime ``time_budget`` is the deadline minus the
micro-batch window — and enforces it with ``asyncio.wait_for``, so an
expired request answers ``504`` while its co-batched neighbors are
untouched (the batcher's futures are shielded from waiter
cancellation).

**Graceful drain.** ``SIGTERM`` (or :meth:`HttpServer.drain`) stops
accepting new connections, answers requests injected on live
keep-alive connections with ``503`` + ``Connection: close``, waits for
in-flight requests to flush through the micro-batcher, closes idle
connections, and releases the engine — no accepted request is dropped.

**Failure injection.** :class:`FaultInjector` gives tests deterministic
control of every robustness path without sleeps: a kernel gate parks
requests in a known in-flight state (the executor thread blocks on a
``threading.Event``), and ``force_queue_full`` trips the 429 path with
one request.  The hooks are inert unless armed.

The tiny HTTP client at the bottom (:func:`http_call`,
:class:`HttpClientConnection`) exists for the in-process test harness
and the open-loop load benchmark; it is not a general-purpose client.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import re
import signal
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

from .errors import classify_error, error_payload
from .facade import Engine, StaleIndexError
from .request import MutationRequest, QueryRequest

__all__ = [
    "HttpConfig",
    "HttpServer",
    "FaultInjector",
    "run_http_server",
    "http_call",
    "HttpClientConnection",
    "ClientResponse",
]

log = logging.getLogger("repro.engine.http")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_ROUTES = {
    "/search": "POST",
    "/mutate": "POST",
    "/stats": "GET",
    "/healthz": "GET",
}

#: Refuse absurd bodies outright (a batch of thousands of queries
#: should arrive as several requests that admission control can meter).
MAX_BODY_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class HttpConfig:
    """Tunable knobs of the HTTP tier (all have serving defaults)."""

    host: str = "127.0.0.1"
    #: port 0 binds an ephemeral port (the bound one is ``server.port``)
    port: int = 8080
    #: bounded admission: max queries waiting in the micro-batch window
    #: or computing; overflow answers 429 instead of queueing unbounded
    max_inflight: int = 64
    #: Retry-After seconds advertised with a 429
    retry_after: int = 1
    #: serving deadline (seconds) applied when a request carries none;
    #: ``None`` waits for the kernel
    default_deadline: Optional[float] = None
    #: reserved out of a request deadline for response writing when the
    #: kernel ``time_budget`` is derived (on top of the batch window)
    deadline_slack: float = 0.002
    #: max seconds drain waits for in-flight requests before force-close
    drain_grace: float = 30.0


class FaultInjector:
    """Deterministic fault hooks for tests (inert unless armed).

    * :meth:`hold_kernel` — every kernel micro-batch blocks on a
      ``threading.Event`` in the executor thread until
      :meth:`release_kernel`: tests park requests in a known in-flight
      state (admitted, batched, computing) without any sleeping;
    * :attr:`force_queue_full` — admission control behaves as if the
      bounded queue were at capacity, so the 429 path is exercised with
      a single request.

    Arm the hooks **before** the server answers its first query: the
    engine's batcher captures the compute hook when it is created.
    """

    #: ceiling on how long a gated kernel waits before erroring out —
    #: a stuck test fails loudly instead of wedging the executor
    GATE_TIMEOUT = 60.0

    def __init__(self) -> None:
        self.force_queue_full = False
        self._gate: Optional[threading.Event] = None

    def hold_kernel(self) -> threading.Event:
        """Arm (and return) the kernel gate; compute blocks until set."""
        if self._gate is None:
            self._gate = threading.Event()
        return self._gate

    def release_kernel(self) -> None:
        if self._gate is not None:
            self._gate.set()

    def install(self, engine: Engine) -> None:
        """Wrap the engine's batch compute with the (lazily armed) gate.

        The wrapper consults the gate per micro-batch, so tests may arm
        :meth:`hold_kernel` any time before the batch they want parked.
        """
        injector = self
        original = engine._search_requests

        def gated(requests):
            gate = injector._gate
            if gate is not None and not gate.wait(injector.GATE_TIMEOUT):
                raise RuntimeError("fault-injection kernel gate never released")
            return original(requests)

        engine._search_requests = gated  # instance attr shadows the method


#: CR / LF / NUL in an emitted header value would let a client split the
#: response or forge extra headers (request-ids are echoed verbatim).
_HEADER_UNSAFE = re.compile(r"[\r\n\x00]")


def _header_value(value: object) -> str:
    """Make *value* safe to emit as an HTTP/1.1 header value.

    Strips response-splitting control bytes and forces latin-1
    encodability (non-encodable characters become ``?``), so a hostile
    or merely exotic client-supplied request id can neither inject
    headers nor crash the connection writer.
    """
    text = _HEADER_UNSAFE.sub("", str(value))
    return text.encode("latin-1", "replace").decode("latin-1")


def _jsonable(value: object) -> object:
    """JSON fallback for numpy scalars hiding in stats payloads."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class _BadRequestLine(Exception):
    """The connection sent bytes that are not an HTTP/1.1 request."""


class HttpServer:
    """The asyncio HTTP front-end over one :class:`Engine`.

    Construct with a live engine, or with ``failure=StaleIndexError(...)``
    (what :meth:`from_store` does when the persisted slabs are stale) to
    run **degraded**: every ``/search`` and ``/healthz`` answers 503
    with the shaped error, so orchestrators see an unhealthy replica
    with a remedy in the body instead of a dead process.
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        *,
        config: Optional[HttpConfig] = None,
        failure: Optional[BaseException] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if engine is None and failure is None:
            raise ValueError("HttpServer needs an engine or a failure")
        self.engine = engine
        self.config = config if config is not None else HttpConfig()
        self.failure = failure
        self.faults = faults if faults is not None else FaultInjector()
        if engine is not None:
            self.faults.install(engine)
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._request_ids = itertools.count()
        # -- connection / drain state ------------------------------------
        self._connections: Dict[asyncio.Task, Dict[str, object]] = {}
        self._state = asyncio.Condition()
        self._inflight = 0
        self._draining = False
        self._drain_begun = False
        self._drain_started = asyncio.Event()
        self._terminated = asyncio.Event()
        self._drain_task: Optional[asyncio.Task] = None
        # -- counters (surfaced via /stats) ------------------------------
        self.counters: Dict[str, int] = {
            "requests": 0,
            "queries_answered": 0,
            "mutations_applied": 0,
            "rejected_429": 0,
            "deadline_504": 0,
            "draining_503": 0,
            "errors": 0,
            "peak_inflight": 0,
        }

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        store,
        *,
        engine_config=None,
        config: Optional[HttpConfig] = None,
        stale_slabs: str = "error",
        faults: Optional[FaultInjector] = None,
        shards: int = 1,
        slab_backend: str = "mmap",
        sidecar_dir=None,
    ) -> "HttpServer":
        """A server over a SQLite store; stale slabs yield a degraded
        server (503 everywhere) instead of a crash — the HTTP analogue
        of the CLI's loud :class:`StaleIndexError` abort.

        With ``shards > 1`` the server fronts a process-parallel
        :class:`~repro.engine.sharded.ShardedEngine` instead of one
        in-process engine: the persisted index slabs are placed once
        (*slab_backend*: mmap'd sidecar files, POSIX shm, or plain heap
        + fork copy-on-write) and every worker serves from the shared
        copy.  Everything above the engine — admission control,
        deadlines, drain, failure injection — is unchanged; drain
        quiesces the router before the workers stop.
        """
        try:
            if shards > 1:
                from .sharded import ShardedEngine

                engine = ShardedEngine.from_store(
                    store,
                    shards=shards,
                    config=engine_config,
                    stale_slabs=stale_slabs,
                    slab_backend=slab_backend,
                    sidecar_dir=sidecar_dir,
                )
            else:
                engine = Engine.from_store(
                    store, config=engine_config, stale_slabs=stale_slabs
                )
        except StaleIndexError as exc:
            log.error("stale index slabs, serving degraded: %s", exc)
            return cls(None, config=config, failure=exc, faults=faults)
        return cls(engine, config=config, faults=faults)

    async def start(self) -> "HttpServer":
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(
            "listening on http://%s:%d (max_inflight=%d)",
            self.config.host,
            self.port,
            self.config.max_inflight,
        )
        return self

    def install_signal_handlers(self) -> None:
        """SIGTERM / SIGINT trigger one graceful drain."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix loops: the CLI falls back to KeyboardInterrupt

    def request_shutdown(self) -> None:
        """Idempotent shutdown trigger (what the signal handlers call)."""
        if self._drain_task is None and not self._drain_begun:
            self._drain_task = asyncio.ensure_future(self.drain())

    async def wait_terminated(self) -> None:
        await self._terminated.wait()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def drain_started(self) -> asyncio.Event:
        """Set the moment drain begins (the listener is already closed)."""
        return self._drain_started

    async def wait_for_inflight(self, count: int) -> None:
        """Block until at least *count* queries are admitted (test sync
        point: no sleeps needed to know a request is parked in-flight)."""
        async with self._state:
            await self._state.wait_for(lambda: self._inflight >= count)

    async def drain(self) -> None:
        """Stop accepting, flush in-flight work, release the engine.

        Sequence: close the listener (new connections are refused);
        requests injected on existing keep-alive connections answer 503
        + ``Connection: close``; wait — bounded by ``drain_grace`` — for
        every in-flight request to finish and its response to be
        written; force-close idle connections; flush the engine's
        micro-batcher and executor.  Idempotent: late callers await the
        same termination.
        """
        if self._drain_begun:
            await self._terminated.wait()
            return
        self._drain_begun = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drain_started.set()
        log.info("drain: listener closed, %d connection(s) open", len(self._connections))
        try:
            await asyncio.wait_for(self._wait_idle(), timeout=self.config.drain_grace)
        except asyncio.TimeoutError:  # pragma: no cover - needs a wedged kernel
            log.warning(
                "drain: grace of %.1fs expired with requests still in flight",
                self.config.drain_grace,
            )
        for record in list(self._connections.values()):
            writer = record["writer"]
            if not writer.is_closing():  # type: ignore[union-attr]
                writer.close()  # type: ignore[union-attr]
        handlers = list(self._connections)
        if handlers:
            await asyncio.gather(*handlers, return_exceptions=True)
        if self.engine is not None:
            await self.engine.aclose()
        self._terminated.set()
        log.info("drain: complete")

    async def _wait_idle(self) -> None:
        async with self._state:
            await self._state.wait_for(
                lambda: not any(
                    record["busy"] for record in self._connections.values()
                )
            )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        record: Dict[str, object] = {"writer": writer, "busy": False}
        self._connections[task] = record
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequestLine:
                    writer.write(
                        self._encode(400, error_payload(ValueError("malformed HTTP request")), close=True)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                async with self._state:
                    record["busy"] = True
                    self._state.notify_all()
                close = True
                try:
                    method, path, headers, body = request
                    started = time.perf_counter()
                    try:
                        status, payload, extra = await self._dispatch(
                            method, path, headers, body
                        )
                    except Exception as exc:  # noqa: BLE001 - last-resort 500
                        self.counters["errors"] += 1
                        status, payload, extra = 500, error_payload(exc), {}
                    close = (
                        self._draining
                        or headers.get("connection", "").lower() == "close"
                    )
                    try:
                        data = self._encode(status, payload, close=close, extra=extra)
                    except Exception as exc:  # noqa: BLE001 - unencodable payload
                        self.counters["errors"] += 1
                        status, close, extra = 500, True, {}
                        data = self._encode(500, error_payload(exc), close=True)
                    writer.write(data)
                    await writer.drain()
                    log.info(
                        "%s %s -> %d id=%s %.2fms",
                        method,
                        path,
                        status,
                        (extra or {}).get("x-request-id", "-"),
                        (time.perf_counter() - started) * 1e3,
                    )
                finally:
                    async with self._state:
                        record["busy"] = False
                        self._state.notify_all()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None  # EOF: client closed the keep-alive connection
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequestLine(line[:80])
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            header_line = await reader.readline()
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, _, value = header_line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", 0) or 0)
        except ValueError:
            raise _BadRequestLine(b"unparseable content-length") from None
        if length < 0:
            raise _BadRequestLine(b"negative content-length")
        if length > MAX_BODY_BYTES:
            raise _BadRequestLine(b"body too large")
        body = await reader.readexactly(length) if length else b""
        path = target.partition("?")[0]
        return method, path, headers, body

    def _encode(
        self,
        status: int,
        payload: Dict[str, object],
        *,
        close: bool,
        extra: Optional[Dict[str, str]] = None,
    ) -> bytes:
        body = json.dumps(payload, default=_jsonable).encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            "content-type: application/json",
            f"content-length: {len(body)}",
            f"connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra or {}).items():
            headers.append(f"{_header_value(name)}: {_header_value(value)}")
        return ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        self.counters["requests"] += 1
        if path not in _ROUTES:
            self.counters["errors"] += 1
            return 404, error_payload(KeyError(f"no such endpoint: {path}")), {}
        if method != _ROUTES[path]:
            self.counters["errors"] += 1
            payload = {
                "error": {
                    "type": "method_not_allowed",
                    "status": 405,
                    "message": f"{path} only accepts {_ROUTES[path]}",
                }
            }
            return 405, payload, {"allow": _ROUTES[path]}
        if path == "/healthz":
            return self._healthz()
        if path == "/stats":
            return self._stats()
        if path == "/mutate":
            return await self._mutate(headers, body)
        return await self._search(headers, body)

    def _healthz(self) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        if self.failure is not None:
            payload = error_payload(self.failure)
            payload["status"] = "stale_index"
            return 503, payload, {}
        if self._draining:
            return 503, {"status": "draining"}, {}
        served = self.engine.stats()["engine"]["queries_served"]
        return 200, {"status": "ok", "queries_served": served}, {}

    def _stats(self) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        server: Dict[str, object] = dict(self.counters)
        server["inflight"] = self._inflight
        server["max_inflight"] = self.config.max_inflight
        server["draining"] = self._draining
        payload: Dict[str, object] = {"server": server}
        if self.failure is not None:
            payload["error"] = error_payload(self.failure)["error"]
        if self.engine is not None:
            payload["engine"] = self.engine.stats()
        return 200, payload, {}

    # ------------------------------------------------------------------
    # /search
    # ------------------------------------------------------------------
    async def _search(
        self, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        request_id: object = headers.get("x-request-id") or f"req-{next(self._request_ids)}"
        extra = {"x-request-id": str(request_id)}
        if self.failure is not None:
            self.counters["errors"] += 1
            return 503, error_payload(self.failure, request_id), extra
        if self._draining:
            self.counters["draining_503"] += 1
            payload = {
                "error": {
                    "type": "draining",
                    "status": 503,
                    "message": "server is draining; retry against another replica",
                },
                "id": request_id,
            }
            return 503, payload, extra
        try:
            payload_obj = json.loads(body.decode("utf-8")) if body else None
            if not isinstance(payload_obj, dict):
                raise TypeError(
                    "the request body must be a JSON object (a query mapping "
                    "or a {'queries': [...]} batch)"
                )
            if "id" in payload_obj and "x-request-id" not in headers:
                request_id = payload_obj["id"]
                extra["x-request-id"] = str(request_id)
            deadline = self._deadline_of(headers, payload_obj)
            queries = payload_obj.pop("queries", None)
            if queries is not None and not isinstance(queries, list):
                raise TypeError("'queries' must be a list of query mappings")
        except Exception as exc:  # noqa: BLE001 - shaped below
            self.counters["errors"] += 1
            return classify_error(exc)[0], error_payload(exc, request_id), extra

        cost = max(1, len(queries)) if queries is not None else 1
        if cost > self.config.max_inflight:
            # No amount of retrying can admit this batch — it is larger
            # than the whole admission queue.  Answer 413 with a remedy
            # instead of a 429 whose Retry-After could never succeed.
            self.counters["errors"] += 1
            payload = {
                "error": {
                    "type": "batch_too_large",
                    "status": 413,
                    "message": (
                        f"batch of {cost} queries exceeds max_inflight="
                        f"{self.config.max_inflight}; split it into "
                        f"smaller requests"
                    ),
                },
                "id": request_id,
            }
            return 413, payload, extra
        if (
            self.faults.force_queue_full
            or self._inflight + cost > self.config.max_inflight
        ):
            self.counters["rejected_429"] += 1
            payload = {
                "error": {
                    "type": "overloaded",
                    "status": 429,
                    "message": (
                        f"admission queue full "
                        f"({self._inflight}/{self.config.max_inflight} in flight)"
                    ),
                },
                "id": request_id,
            }
            extra["retry-after"] = str(self.config.retry_after)
            return 429, payload, extra

        async with self._state:
            self._inflight += cost
            self.counters["peak_inflight"] = max(
                self.counters["peak_inflight"], self._inflight
            )
            self._state.notify_all()
        try:
            if queries is None:
                try:
                    record = await self._answer_one(payload_obj, deadline, request_id)
                except Exception as exc:  # noqa: BLE001 - shaped below
                    status = classify_error(exc)[0]
                    if status == 504:
                        self.counters["deadline_504"] += 1
                    else:
                        self.counters["errors"] += 1
                    return status, error_payload(exc, request_id), extra
                self.counters["queries_answered"] += 1
                return 200, record, extra
            # Batch envelope: per-item answers or shaped errors, exactly
            # like the JSONL loop — the envelope itself is the 200.
            outcomes = await asyncio.gather(
                *[
                    self._answer_one(item, deadline, f"{request_id}/{position}")
                    for position, item in enumerate(queries)
                ],
                return_exceptions=True,
            )
            records: List[Dict[str, object]] = []
            for position, outcome in enumerate(outcomes):
                if isinstance(outcome, BaseException):
                    if classify_error(outcome)[0] == 504:
                        self.counters["deadline_504"] += 1
                    else:
                        self.counters["errors"] += 1
                    records.append(
                        error_payload(outcome, f"{request_id}/{position}")
                    )
                else:
                    self.counters["queries_answered"] += 1
                    records.append(outcome)
            return 200, {"id": request_id, "results": records}, extra
        finally:
            async with self._state:
                self._inflight -= cost
                self._state.notify_all()

    def _deadline_of(
        self, headers: Dict[str, str], payload: Dict[str, object]
    ) -> Optional[float]:
        raw: object = headers.get("x-deadline-ms")
        if raw is None:
            raw = payload.pop("deadline_ms", None)
        if raw is None:
            return self.config.default_deadline
        deadline = float(raw) / 1e3
        if deadline <= 0:
            raise ValueError(f"deadline_ms must be positive, got {raw!r}")
        return deadline

    async def _answer_one(
        self, obj: object, deadline: Optional[float], request_id: object
    ) -> Dict[str, object]:
        if isinstance(obj, dict):
            obj = dict(obj)
            item_id = obj.pop("id", request_id)
        else:
            item_id = request_id
        request = QueryRequest.from_obj(
            obj, default_k=self.engine.config.default_k
        )
        if deadline is not None and request.time_budget is None:
            # Map the serving deadline onto the batcher budget: the kernel
            # gets the deadline minus the micro-batch window (and a write
            # slack), floored so a tight deadline still explores a little.
            slack = self.engine.config.batch_deadline + self.config.deadline_slack
            request = replace(
                request, time_budget=max(deadline - slack, deadline / 2)
            )
        if deadline is not None:
            response = await asyncio.wait_for(
                self.engine.asearch(request), timeout=deadline
            )
        else:
            response = await self.engine.asearch(request)
        record = response.to_dict()
        record["id"] = item_id
        return record

    # ------------------------------------------------------------------
    # /mutate
    # ------------------------------------------------------------------
    async def _mutate(
        self, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """One write, under the same admission control as ``/search``.

        A mutation occupies one admission slot while the delta (or
        fallback rebuild) propagates, so a write burst is metered by the
        same 429 backpressure as a read burst.  Deadlines map onto
        ``asyncio.wait_for`` exactly like query deadlines — note a 504
        abandons the *wait*, not the write: the mutation may still
        commit after the deadline answer (at-most-once is the client's
        retry contract via idempotent tag/edge URIs).
        """
        request_id: object = (
            headers.get("x-request-id") or f"req-{next(self._request_ids)}"
        )
        extra = {"x-request-id": str(request_id)}
        if self.failure is not None:
            self.counters["errors"] += 1
            return 503, error_payload(self.failure, request_id), extra
        if self._draining:
            self.counters["draining_503"] += 1
            payload = {
                "error": {
                    "type": "draining",
                    "status": 503,
                    "message": "server is draining; retry against another replica",
                },
                "id": request_id,
            }
            return 503, payload, extra
        try:
            payload_obj = json.loads(body.decode("utf-8")) if body else None
            if not isinstance(payload_obj, dict):
                raise TypeError(
                    "the request body must be a JSON mutation mapping "
                    "with an 'op' field"
                )
            if "id" in payload_obj and "x-request-id" not in headers:
                request_id = payload_obj["id"]
                extra["x-request-id"] = str(request_id)
            deadline = self._deadline_of(headers, payload_obj)
            request = MutationRequest.from_obj(payload_obj)
        except Exception as exc:  # noqa: BLE001 - shaped below
            self.counters["errors"] += 1
            return classify_error(exc)[0], error_payload(exc, request_id), extra
        if (
            self.faults.force_queue_full
            or self._inflight + 1 > self.config.max_inflight
        ):
            self.counters["rejected_429"] += 1
            payload = {
                "error": {
                    "type": "overloaded",
                    "status": 429,
                    "message": (
                        f"admission queue full "
                        f"({self._inflight}/{self.config.max_inflight} in flight)"
                    ),
                },
                "id": request_id,
            }
            extra["retry-after"] = str(self.config.retry_after)
            return 429, payload, extra
        async with self._state:
            self._inflight += 1
            self.counters["peak_inflight"] = max(
                self.counters["peak_inflight"], self._inflight
            )
            self._state.notify_all()
        try:
            try:
                if deadline is not None:
                    response = await asyncio.wait_for(
                        self.engine.amutate(request), timeout=deadline
                    )
                else:
                    response = await self.engine.amutate(request)
            except Exception as exc:  # noqa: BLE001 - shaped below
                status = classify_error(exc)[0]
                if status == 504:
                    self.counters["deadline_504"] += 1
                else:
                    self.counters["errors"] += 1
                return status, error_payload(exc, request_id), extra
            self.counters["mutations_applied"] += 1
            record = response.to_dict()
            record["id"] = request_id
            return 200, record, extra
        finally:
            async with self._state:
                self._inflight -= 1
                self._state.notify_all()


# ----------------------------------------------------------------------
# CLI runner
# ----------------------------------------------------------------------
async def _amain(server: HttpServer, ready=None) -> None:
    await server.start()
    server.install_signal_handlers()
    if ready is not None:
        ready(server)
    await server.wait_terminated()


def run_http_server(server: HttpServer, *, ready=None) -> Dict[str, int]:
    """Run *server* until a signal drains it; returns its counters."""
    try:
        asyncio.run(_amain(server, ready=ready))
    except KeyboardInterrupt:  # pragma: no cover - non-unix fallback
        pass
    return dict(server.counters)


# ----------------------------------------------------------------------
# Minimal HTTP client (test harness + load benchmark)
# ----------------------------------------------------------------------
@dataclass
class ClientResponse:
    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Dict[str, object]:
        return json.loads(self.body.decode("utf-8"))


class HttpClientConnection:
    """One keep-alive client connection (in-process testing / benching)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def open(cls, port: int, host: str = "127.0.0.1") -> "HttpClientConnection":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self,
        method: str,
        path: str,
        *,
        body: Union[None, bytes, str, Dict[str, object]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ClientResponse:
        if isinstance(body, dict):
            body = json.dumps(body)
        if isinstance(body, str):
            body = body.encode("utf-8")
        payload = body or b""
        lines = [f"{method} {path} HTTP/1.1", "host: localhost"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        lines.append(f"content-length: {len(payload)}")
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> ClientResponse:
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        response_headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", 0) or 0)
        body = await self._reader.readexactly(length) if length else b""
        return ClientResponse(status=status, headers=response_headers, body=body)

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def http_call(
    port: int,
    method: str,
    path: str,
    *,
    body: Union[None, bytes, str, Dict[str, object]] = None,
    headers: Optional[Dict[str, str]] = None,
    host: str = "127.0.0.1",
) -> ClientResponse:
    """One request on a fresh connection (closed afterwards)."""
    connection = await HttpClientConnection.open(port, host=host)
    try:
        return await connection.request(method, path, body=body, headers=headers)
    finally:
        await connection.aclose()
