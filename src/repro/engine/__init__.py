"""The serving layer: Engine facade, typed requests, async micro-batching.

Layering (see README *Architecture*)::

    HTTP / JSONL front-ends
             │
    QueryRequest ──> Engine ──> Batcher ──> S3kSearch (kernel)
                      │            │
                      │            └─ deadline / size flushes,
                      │               in-flight request collapsing
                      └─ instance + ConnectionIndex lifecycle,
                         result / plan caches, version invalidation,
                         stats()

:class:`Engine` is the single supported entry point; direct
:class:`~repro.core.search.S3kSearch` construction keeps working as the
internal compute kernel for tests and benchmarks.
:class:`ShardedEngine` is the process-parallel drop-in: the same request
API routed over N worker processes, each a full ``Engine`` serving from
shared (mmap / shm / fork-COW) index slabs.
"""

from .batcher import Batcher, Served
from .errors import ShardUnavailableError, classify_error, error_payload
from .facade import Engine, EngineConfig
from .http import FaultInjector, HttpConfig, HttpServer, run_http_server
from .request import (
    MutationRequest,
    MutationResponse,
    QueryRequest,
    QueryResponse,
)
from .serve import run_serve, serve_lines
from .sharded import ShardedEngine
from ..core.connection_index import StaleIndexError

__all__ = [
    "Engine",
    "EngineConfig",
    "ShardedEngine",
    "ShardUnavailableError",
    "Batcher",
    "Served",
    "QueryRequest",
    "QueryResponse",
    "MutationRequest",
    "MutationResponse",
    "StaleIndexError",
    "serve_lines",
    "run_serve",
    "HttpServer",
    "HttpConfig",
    "FaultInjector",
    "run_http_server",
    "classify_error",
    "error_payload",
]
