"""The Engine facade: one object that owns the whole serving lifecycle.

``Engine`` is the single supported entry point for answering S3k
queries.  It owns

* the **instance** (loaded from a :class:`~repro.storage.sqlite_store.
  SQLiteStore` or passed in), kept saturated;
* the **kernel** — an internal :class:`~repro.core.search.S3kSearch`
  holding the shared immutable indexes, the precomputed
  :class:`~repro.core.connection_index.ConnectionIndex` (adopted from
  persisted slabs when fresh, with a loud
  :class:`~repro.core.connection_index.StaleIndexError` when they are
  not), and the result / plan LRU caches;
* **version-based invalidation** — mutations through the facade (or
  directly on the instance) bump :attr:`S3Instance.version`; the facade
  rebuilds its kernel before the next answer, so no structural index is
  ever served stale;
* the **async serving path** — an asyncio
  :class:`~repro.engine.batcher.Batcher` per event loop accumulating
  concurrent ``await engine.asearch(...)`` calls into deadline-bounded
  micro-batches, collapsing identical in-flight requests, and
  dispatching to the kernel's lock-step ``search_many`` in a
  single-worker executor;
* one **stats()** surface merging engine, cache, index and batcher
  counters (what the CLI and :mod:`repro.eval.reporting` read).

The sharding seam the ROADMAP names next — one ``Engine`` per shard
behind the same request API — is exactly this boundary: everything
above speaks :class:`QueryRequest` / :class:`QueryResponse`, everything
below is per-shard state.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.connection_index import ConnectionIndex, StaleIndexError
from ..core.instance import S3Instance
from ..core.score import FeasibleScore
from ..core.search import S3kSearch, SearchResult
from ..social.tags import Tag
from ..storage.sqlite_store import SQLiteStore
from .batcher import DEFAULT_MAX_BATCH_SIZE, DEFAULT_MAX_DELAY, Batcher
from .request import (
    MutationRequest,
    MutationResponse,
    QueryRequest,
    QueryResponse,
)

__all__ = ["Engine", "EngineConfig", "StaleIndexError"]


@dataclass(frozen=True)
class EngineConfig:
    """Tunable knobs of an :class:`Engine` (all have serving defaults)."""

    #: default result count for requests that do not carry their own ``k``
    default_k: int = 5
    #: default semantic-extension toggle
    semantic: bool = True
    #: micro-batch size bound of the async path (size flush)
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    #: micro-batch latency budget in seconds (deadline flush)
    batch_deadline: float = DEFAULT_MAX_DELAY
    #: collapse identical in-flight requests onto one computation
    collapse: bool = True
    #: kernel knobs (see :class:`~repro.core.search.S3kSearch`)
    use_matrix: bool = True
    use_connection_index: bool = True
    result_cache_size: int = 1024
    plan_cache_size: int = 4096


def _merge_batcher_counters(totals: Dict[str, float], stats: Dict[str, float]) -> None:
    """Fold one batcher's counters into *totals* (sums, except
    ``largest_batch`` which is a maximum; the derived ``mean_batch_size``
    / ``collapse_rate`` are recomputed from the merged totals)."""
    for name, value in stats.items():
        if name in ("mean_batch_size", "collapse_rate"):
            continue
        if name == "largest_batch":
            totals[name] = max(totals.get(name, 0), value)
        else:
            totals[name] = totals.get(name, 0) + value


class Engine:
    """Facade over instance + kernel + caches + async micro-batching.

    Construct from a live instance (``Engine(instance)``) or a SQLite
    store (:meth:`Engine.from_store`).  Answer queries with
    :meth:`search` (one), :meth:`search_many` (a batch, lock-step) or
    ``await`` :meth:`asearch` (concurrent callers, micro-batched under
    the configured latency budget).  All three accept anything
    :meth:`QueryRequest.from_obj` understands and return
    :class:`QueryResponse` objects with bit-identical results across
    entry points.
    """

    def __init__(
        self,
        instance: S3Instance,
        *,
        score: Optional[FeasibleScore] = None,
        connection_index: Optional[ConnectionIndex] = None,
        config: Optional[EngineConfig] = None,
    ):
        self.config = config if config is not None else EngineConfig()
        self.instance = instance
        self._score = score
        self._kernel: Optional[S3kSearch] = None
        self._kernel_version = -1
        self._kernel_ever_built = False
        self._initial_connection_index = connection_index
        self._batcher: Optional[Batcher] = None
        self._batcher_loop = None
        self._executor: Optional[ThreadPoolExecutor] = None
        # -- counters ----------------------------------------------------
        self._queries_served = 0
        self._kernel_rebuilds = 0
        self._slabs_persisted = 0
        self._slabs_adopted = 0
        #: incremental-maintenance counters (the ``maintenance`` stats block)
        self._maintenance: Dict[str, float] = {
            "mutations_applied": 0,
            "deltas_applied": 0,
            "components_patched": 0,
            "fallback_rebuilds": 0,
            "patch_wall_seconds": 0.0,
        }
        #: counters of batchers retired by event-loop changes
        self._batch_totals: Dict[str, float] = {}
        self._ensure_kernel()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        store: Union[str, Path, SQLiteStore],
        *,
        score: Optional[FeasibleScore] = None,
        config: Optional[EngineConfig] = None,
        stale_slabs: str = "error",
    ) -> "Engine":
        """An engine over the instance (and index slabs) of a store.

        *stale_slabs* controls what happens when a persisted
        ConnectionIndex slab no longer matches the stored instance:

        * ``"error"`` (default) — raise :class:`StaleIndexError`; a
          mismatching slab means the instance changed after ``python -m
          repro index`` ran, and silently recomputing would hide that the
          warm start the operator paid for is gone;
        * ``"rebuild"`` — skip the stale slab and rebuild it lazily.
        """
        if stale_slabs not in ("error", "rebuild"):
            raise ValueError(
                f"stale_slabs must be 'error' or 'rebuild', got {stale_slabs!r}"
            )
        config = config if config is not None else EngineConfig()
        owns_store = not isinstance(store, SQLiteStore)
        opened = SQLiteStore(store) if owns_store else store
        try:
            instance = opened.load_instance()
            persisted = opened.connection_index_slab_count()
            connection_index = None
            if config.use_connection_index:
                connection_index = opened.load_connection_index(
                    instance, strict=(stale_slabs == "error")
                )
        finally:
            if owns_store:
                opened.close()
        engine = cls(
            instance, score=score, connection_index=connection_index, config=config
        )
        engine._slabs_persisted = persisted
        if connection_index is not None:
            engine._slabs_adopted = int(
                connection_index.stats()["components_built"]
            )
        return engine

    # ------------------------------------------------------------------
    # Kernel lifecycle / invalidation
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> S3kSearch:
        """The current compute kernel (re-aligned after instance mutations)."""
        return self._ensure_kernel()

    @property
    def kernel_version(self) -> int:
        """Instance version the current kernel is aligned with (-1 before
        the first build).  Running behind :attr:`S3Instance.version` is
        the pending-maintenance signal; reading it never triggers a
        rebuild."""
        return self._kernel_version

    def _ensure_kernel(self) -> S3kSearch:
        """Re-align the kernel when the instance moved underneath it.

        Delta-first: when the instance's mutation log covers the gap with
        typed deltas, the existing kernel is patched in place
        (:meth:`S3kSearch.apply_deltas`) — copy-on-patch over the
        untouched components and scoped cache eviction.  Only when a
        delta is inexpressible (opaque mutation, component merge, log
        gap) does the facade fall back to replacing the whole kernel,
        which is counted as a ``fallback_rebuild``.
        """
        if self._kernel is not None and self._kernel_version == self.instance.version:
            return self._kernel
        if self._kernel is not None and self._kernel_version >= 0:
            deltas = self.instance.deltas_since(self._kernel_version)
            if deltas:
                started = time.perf_counter()
                info = self._kernel.apply_deltas(deltas)
                if info is not None:
                    maintenance = self._maintenance
                    maintenance["deltas_applied"] += int(
                        info.get("deltas_applied", 0)
                    )
                    maintenance["components_patched"] += int(
                        info.get("components_patched", 0)
                    )
                    maintenance["patch_wall_seconds"] += (
                        time.perf_counter() - started
                    )
                    self._kernel_version = self.instance.version
                    return self._kernel
            self._maintenance["fallback_rebuilds"] += 1
        # The warm index is consumed by the first build only; rebuilds get
        # a fresh ConnectionIndex (the component partition may have moved).
        connection_index = self._initial_connection_index
        self._initial_connection_index = None
        kernel = S3kSearch(
            self.instance,
            score=self._score,
            use_matrix=self.config.use_matrix,
            use_connection_index=self.config.use_connection_index,
            connection_index=connection_index,
            result_cache_size=self.config.result_cache_size,
            plan_cache_size=self.config.plan_cache_size,
        )
        if self._kernel_ever_built:
            self._kernel_rebuilds += 1
        self._kernel_ever_built = True
        self._kernel = kernel
        self._kernel_version = self.instance.version
        return kernel

    def invalidate(self) -> None:
        """Force a kernel rebuild before the next answer.

        Mutations through the facade (or any instance mutation that bumps
        :attr:`S3Instance.version`) trigger this automatically; the
        explicit hook covers callers that mutate content the version
        counter cannot see.
        """
        self._kernel = None

    def warm(self) -> "Engine":
        """Eagerly build every ConnectionIndex slab (serve with zero
        query-time fixpoint work)."""
        kernel = self._ensure_kernel()
        if kernel.connection_index is not None:
            kernel.connection_index.ensure_all()
        return self

    # -- mutations through the facade ----------------------------------
    def add_tag(self, tag: Tag) -> None:
        """Add a tag; caches and indexes invalidate before the next answer."""
        self.instance.add_tag(tag)

    def add_comment_edge(
        self, comment: object, target: object, relation: Optional[object] = None
    ) -> None:
        """Add a commentsOn edge; invalidation as for :meth:`add_tag`."""
        self.instance.add_comment_edge(comment, target, relation)

    def add_document(self, document, posted_by: Optional[object] = None) -> None:
        self.instance.add_document(document, posted_by=posted_by)

    def add_social_edge(
        self, source: object, target: object, weight: float, **kwargs
    ) -> None:
        self.instance.add_social_edge(source, target, weight, **kwargs)

    # -- the typed write path (live mutate/query serving) ----------------
    def mutate(self, mutation: object) -> MutationResponse:
        """Apply one typed write and re-align the kernel immediately.

        Accepts anything :meth:`MutationRequest.from_obj` understands.
        Unlike the bare ``add_*`` facade methods (which leave the kernel
        stale until the next answer), this applies the mutation *and*
        runs the maintenance step under the same serialization as the
        query path, so the response's ``version`` is the first one
        answers can observe — and reports whether the kernel was patched
        incrementally (``mode="delta"``) or rebuilt.
        """
        request = MutationRequest.from_obj(mutation)
        return self._run_serialized(lambda: self._apply_mutation(request))

    async def amutate(self, mutation: object) -> MutationResponse:
        """Async :meth:`mutate`: runs on the single serving worker, so
        writes serialize with in-flight query micro-batches."""
        import asyncio

        request = MutationRequest.from_obj(mutation)
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-engine"
            )
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor, self._apply_mutation, request
            )
        except RuntimeError:  # executor already shut down: no async work
            return self._apply_mutation(request)

    def _apply_mutation(self, request: MutationRequest) -> MutationResponse:
        """Instance write + kernel maintenance (runs on the worker)."""
        started = time.perf_counter()
        if request.op == "add_tag":
            self.instance.add_tag(request.to_tag())
        else:
            self.instance.add_comment_edge(
                request.comment, request.target, request.relation
            )
        deltas_before = self._maintenance["deltas_applied"]
        patched_before = self._maintenance["components_patched"]
        self._ensure_kernel()
        self._maintenance["mutations_applied"] += 1
        # A cold first build and an inexpressible-delta fallback both
        # count as "rebuild": only an actually consumed delta is one.
        delta_applied = self._maintenance["deltas_applied"] > deltas_before
        return MutationResponse(
            request=request,
            version=self.instance.version,
            mode="delta" if delta_applied else "rebuild",
            components_patched=int(
                self._maintenance["components_patched"] - patched_before
            ),
            latency_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _coerce(
        self,
        query: object,
        k: Optional[int] = None,
        semantic: Optional[bool] = None,
        max_iterations: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> QueryRequest:
        if isinstance(query, QueryRequest):
            # A request carries its own settings, but an *explicit* call
            # argument (engine.search(request, semantic=False)) is an
            # override — dropping it silently would compute the wrong
            # answer with no signal.
            overrides: Dict[str, object] = {}
            if k is not None:
                overrides["k"] = k
            if semantic is not None:
                overrides["semantic"] = semantic
            if max_iterations is not None:
                overrides["max_iterations"] = max_iterations
            if time_budget is not None:
                overrides["time_budget"] = time_budget
            return replace(query, **overrides) if overrides else query
        return QueryRequest.from_obj(
            query,
            default_k=k if k is not None else self.config.default_k,
            semantic=semantic if semantic is not None else self.config.semantic,
            max_iterations=max_iterations,
            time_budget=time_budget,
        )

    def _run_serialized(self, fn):
        """Run kernel work under the same serialization as the async path.

        The kernel's caches are not thread-safe, so once the serving
        executor exists (some ``asearch`` ran), sync entry points must
        not touch the kernel concurrently with an in-flight micro-batch:
        they queue behind it on the single worker.  With no executor
        (purely synchronous usage) this is a plain call.
        """
        executor = self._executor
        if executor is None:
            return fn()
        try:
            future = executor.submit(fn)
        except RuntimeError:  # executor already shut down: no async work
            return fn()
        return future.result()

    def _search_requests(
        self, requests: Sequence[QueryRequest]
    ) -> List[SearchResult]:
        """Answer normalized requests via one lock-step kernel call.

        The kernel honors each request's own settings (semantic flag,
        anytime budgets), so a mixed micro-batch needs no splitting.
        """
        results = self._ensure_kernel().search_many(requests)
        self._queries_served += len(requests)
        return results

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def search(
        self,
        query: object,
        keywords: Optional[Sequence[object]] = None,
        k: Optional[int] = None,
        **settings,
    ) -> QueryResponse:
        """Answer one query synchronously.

        ``engine.search(request)`` with anything
        :meth:`QueryRequest.from_obj` accepts, or the kernel's calling
        shape ``engine.search(seeker, keywords, k, semantic=...)`` (``k``
        positional or keyword, as on :meth:`S3kSearch.search`).
        """
        if keywords is not None:
            query = (query, keywords)
        request = self._coerce(query, k=k, **settings)

        def compute() -> SearchResult:
            return self._ensure_kernel().search(
                request.seeker,
                request.keywords,
                k=request.k,
                semantic=request.semantic,
                max_iterations=request.max_iterations,
                time_budget=request.time_budget,
            )

        result = self._run_serialized(compute)
        self._queries_served += 1
        return QueryResponse(
            request=request,
            result=result,
            batch_size=1,
            flush_reason="sync",
            latency_seconds=result.wall_time,
        )

    def search_many(
        self, queries: Sequence[object], **settings
    ) -> List[QueryResponse]:
        """Answer a batch in lock-step; results come back in input order."""
        requests = [self._coerce(query, **settings) for query in queries]
        # Serialized against in-flight micro-batches; the Batcher itself
        # calls _search_requests directly (it already runs on the worker).
        results = self._run_serialized(lambda: self._search_requests(requests))
        return [
            QueryResponse(
                request=request,
                result=result,
                batch_size=len(requests),
                flush_reason="sync",
                latency_seconds=result.wall_time,
            )
            for request, result in zip(requests, results)
        ]

    async def asearch(self, query: object, **settings) -> QueryResponse:
        """Answer one query on the async serving path.

        Concurrent callers accumulate into micro-batches under the
        configured ``(max_batch_size, batch_deadline)`` budget; identical
        in-flight requests collapse onto one computation.  Results are
        bit-identical to :meth:`search`.
        """
        request = self._coerce(query, **settings)
        batcher = self._ensure_batcher()
        started = time.perf_counter()
        served = await batcher.submit(request)
        return QueryResponse(
            request=request,
            result=served.result,
            batch_size=served.batch_size,
            collapsed=served.collapsed,
            flush_reason=served.flush_reason,
            latency_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # Async plumbing
    # ------------------------------------------------------------------
    def _ensure_batcher(self) -> Batcher:
        """The batcher of the *running* event loop (one per loop).

        asyncio timers and futures are loop-bound, so a batcher created
        under a previous loop (e.g. a prior ``asyncio.run``) is retired —
        its counters fold into the engine totals — and a fresh one is
        created for the current loop.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        if self._batcher is not None and self._batcher_loop is loop:
            return self._batcher
        if self._batcher is not None:
            self._retire_batcher()
        if self._executor is None:
            # One worker on purpose: the kernel's caches are not
            # thread-safe, and one exploration at a time is exactly the
            # micro-batching model (concurrency lives in the batch).
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-engine"
            )
        self._batcher = Batcher(
            self._search_requests,
            max_batch_size=self.config.max_batch_size,
            max_delay=self.config.batch_deadline,
            executor=self._executor,
            collapse=self.config.collapse,
        )
        self._batcher_loop = loop
        return self._batcher

    def _retire_batcher(self) -> None:
        if self._batcher is None:
            return
        _merge_batcher_counters(self._batch_totals, self._batcher.stats())
        self._batcher = None
        self._batcher_loop = None

    async def aclose(self) -> None:
        """Flush pending micro-batches and release the executor."""
        if self._batcher is not None:
            await self._batcher.aclose()
            self._retire_batcher()
        self.close()

    def close(self) -> None:
        """Release the serving executor (sync side of :meth:`aclose`)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, object]]:
        """Every serving counter in one place.

        Sections: ``engine`` (served queries, kernel rebuilds, instance
        version), ``maintenance`` (writes applied, deltas consumed,
        components patched, fallback rebuilds, patch wall seconds),
        ``result_cache`` (hit / miss / occupancy),
        ``connection_index`` (slab counts incl. persisted / adopted,
        size, build time), ``batcher`` (flush and collapse counters,
        aggregated across retired event loops) and ``exploration``
        (fast-/slow-path certification counters and per-phase wall
        seconds of the batched exploration loop — the screen hit rate
        behind ``/stats``).

        A pure read: it reports the *current* kernel and never triggers
        a rebuild (a monitoring loop polling between mutations must not
        pay kernel constructions; the rebuild happens on the next
        query).  After a mutation, ``engine.instance_version`` running
        ahead of ``engine.kernel_version`` is the pending-rebuild
        signal.
        """
        kernel = self._kernel
        connection: Dict[str, object] = {}
        if kernel is not None and kernel.connection_index is not None:
            connection = dict(kernel.connection_index.stats())
            connection["slabs_persisted"] = self._slabs_persisted
            connection["slabs_adopted"] = self._slabs_adopted
        batcher: Dict[str, object] = dict(self._batch_totals)
        if self._batcher is not None:
            _merge_batcher_counters(batcher, self._batcher.stats())
        computed = batcher.get("computed", 0)
        submitted = batcher.get("submitted", 0)
        batches = batcher.get("batches", 0)
        if computed:
            batcher["collapse_rate"] = round(submitted / computed, 3)
        if batches:
            batcher["mean_batch_size"] = round(computed / batches, 3)
        return {
            "engine": {
                "queries_served": self._queries_served,
                "kernel_rebuilds": self._kernel_rebuilds,
                "instance_version": self.instance.version,
                "kernel_version": self._kernel_version,
            },
            "maintenance": {
                name: (round(value, 6) if name == "patch_wall_seconds" else value)
                for name, value in self._maintenance.items()
            },
            "result_cache": dict(self.cache_stats),
            "connection_index": connection,
            "batcher": batcher,
            "exploration": dict(self.exploration_stats),
        }

    # -- BatchStats compatibility --------------------------------------
    @property
    def cache_stats(self) -> Dict[str, int]:
        """Result-cache counters (same shape as ``S3kSearch.cache_stats``).

        Read-only like :meth:`stats`: no kernel rebuild on access."""
        if self._kernel is None:
            return {"hits": 0, "misses": 0, "size": 0, "maxsize": 0}
        return self._kernel.cache_stats

    @property
    def exploration_stats(self) -> Dict[str, object]:
        """Kernel certification counters (same shape as
        ``S3kSearch.exploration_stats``).

        Read-only like :meth:`stats`: no kernel rebuild on access; empty
        before the first query builds a kernel."""
        if self._kernel is None:
            return {}
        return dict(self._kernel.exploration_stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Engine(users={len(self.instance.users)}, "
            f"documents={len(self.instance.documents)}, "
            f"served={self._queries_served})"
        )
