"""Deadline-driven micro-batching for the async serving path.

Concurrent ``await engine.asearch(request)`` calls land here: requests
accumulate in a *window* and are dispatched to the kernel's lock-step
``search_many`` as one micro-batch when either

* the window reaches ``max_batch_size`` (**size flush** — the batch is
  full, no reason to wait), or
* ``max_delay`` seconds have passed since the window opened (**deadline
  flush** — the latency budget for the oldest waiting request is spent).

Identical requests are *collapsed*: a request equal to one already
waiting in the window, or equal to one already dispatched and still
computing, simply awaits that computation instead of occupying a batch
slot of its own.  Under hot / trending traffic this is what turns N
duplicate queries into one exploration (the measured ``collapse_rate``
is submitted / computed requests, > 1 whenever any collapsing happened).

Compute runs in an executor so the event loop stays responsive while the
kernel explores; the owning :class:`~repro.engine.facade.Engine` passes a
single-worker executor, which serializes kernel access (the kernel's
caches are not thread-safe) without limiting how many requests overlap
in the serving layer.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.search import SearchResult
from .request import QueryRequest

#: Default micro-batch latency budget, seconds: small enough to be
#: invisible next to one exploration, large enough to let concurrent
#: submissions pile into one mat-mat step.
DEFAULT_MAX_DELAY = 0.005
DEFAULT_MAX_BATCH_SIZE = 32


@dataclass
class Served:
    """What a waiter receives when its micro-batch completes."""

    result: SearchResult
    batch_size: int
    flush_reason: str
    collapsed: bool = False


class Batcher:
    """Accumulate concurrent requests into deadline-bounded micro-batches.

    *compute* answers one list of unique :class:`QueryRequest` objects
    (blocking, called in *executor*); *max_batch_size* and *max_delay*
    bound the window.  All coordination runs on the event loop the
    requests are submitted from — a batcher must not be shared across
    loops (the :class:`~repro.engine.facade.Engine` creates one per
    loop).
    """

    def __init__(
        self,
        compute: Callable[[List[QueryRequest]], Sequence[SearchResult]],
        *,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_delay: float = DEFAULT_MAX_DELAY,
        executor: Optional[Executor] = None,
        collapse: bool = True,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self._compute = compute
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay
        self._executor = executor
        self._collapse = collapse
        #: the open window, in submission order.  A list of slots, not a
        #: dict: with collapsing disabled two equal requests must occupy
        #: two slots (a dict keyed by request would overwrite the first
        #: waiter's future and strand it forever).
        self._window: List[Tuple[QueryRequest, asyncio.Future]] = []
        #: collapse lookup over the open window (consulted only when
        #: collapsing is enabled)
        self._window_futures: Dict[QueryRequest, asyncio.Future] = {}
        self._timer: Optional[asyncio.TimerHandle] = None
        #: dispatched-but-unfinished computations, for in-flight collapsing
        self._inflight: Dict[QueryRequest, asyncio.Future] = {}
        self._tasks: Set[asyncio.Task] = set()
        # -- counters (all monotone; surfaced via Engine.stats()) --------
        self.submitted = 0
        self.computed = 0
        self.collapsed = 0
        self.batches = 0
        self.size_flushes = 0
        self.deadline_flushes = 0
        self.largest_batch = 0

    # ------------------------------------------------------------------
    async def submit(self, request: QueryRequest) -> Served:
        """Answer *request*, riding or opening a micro-batch."""
        loop = asyncio.get_running_loop()
        self.submitted += 1
        if self._collapse:
            future = self._window_futures.get(request) or self._inflight.get(
                request
            )
            if future is not None:
                self.collapsed += 1
                served = await asyncio.shield(future)
                return Served(
                    result=served.result,
                    batch_size=served.batch_size,
                    flush_reason=served.flush_reason,
                    collapsed=True,
                )
        future = loop.create_future()
        self._window.append((request, future))
        self._window_futures[request] = future
        if len(self._window) == 1 and self.max_delay > 0:
            self._timer = loop.call_later(
                self.max_delay, self._flush, "deadline"
            )
        if len(self._window) >= self.max_batch_size:
            self._flush("size")
        elif self.max_delay == 0:
            # A zero latency budget is an immediately-expiring deadline,
            # not a full window.
            self._flush("deadline")
        return await asyncio.shield(future)

    # ------------------------------------------------------------------
    def _flush(self, reason: str) -> None:
        """Dispatch the open window as one micro-batch (loop thread only)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._window:
            return
        window, self._window = self._window, []
        self._window_futures = {}
        requests = [request for request, _ in window]
        futures = [future for _, future in window]
        self.batches += 1
        self.computed += len(requests)
        self.largest_batch = max(self.largest_batch, len(requests))
        if reason == "size":
            self.size_flushes += 1
        elif reason == "deadline":
            self.deadline_flushes += 1
        for request, future in window:
            self._inflight[request] = future
        task = asyncio.get_running_loop().create_task(
            self._run_batch(requests, futures, reason)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_batch(
        self,
        requests: List[QueryRequest],
        futures: List[asyncio.Future],
        reason: str,
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._executor, self._compute, requests
            )
        except Exception as batch_exc:
            # One bad request (unknown seeker, malformed budget) must not
            # poison its co-batched neighbors: fall back to answering each
            # request on its own, so only the offender sees the error.
            if len(requests) == 1:
                # Already a solo computation: re-running it would fail
                # identically at double the cost.
                self._inflight.pop(requests[0], None)
                if not futures[0].done():
                    futures[0].set_exception(batch_exc)
                return
            for request, future in zip(requests, futures):
                try:
                    (result,) = await loop.run_in_executor(
                        self._executor, self._compute, [request]
                    )
                except Exception as exc:
                    self._inflight.pop(request, None)
                    if not future.done():
                        future.set_exception(exc)
                    continue
                self._inflight.pop(request, None)
                if not future.done():
                    future.set_result(
                        Served(result=result, batch_size=1, flush_reason=reason)
                    )
            return
        for request, future, result in zip(requests, futures, results):
            self._inflight.pop(request, None)
            if not future.done():
                future.set_result(
                    Served(
                        result=result,
                        batch_size=len(requests),
                        flush_reason=reason,
                    )
                )

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Flush any open window and wait for in-flight batches."""
        self._flush("close")
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    def stats(self) -> Dict[str, float]:
        """Monotone serving counters (merged into ``Engine.stats()``)."""
        return {
            "submitted": self.submitted,
            "computed": self.computed,
            "collapsed": self.collapsed,
            "batches": self.batches,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "largest_batch": self.largest_batch,
            "mean_batch_size": (
                round(self.computed / self.batches, 3) if self.batches else 0.0
            ),
            "collapse_rate": (
                round(self.submitted / self.computed, 3) if self.computed else 0.0
            ),
        }
