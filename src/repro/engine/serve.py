"""JSONL serving loop: the ``python -m repro serve`` REPL.

Reads one JSON request per line (``{"seeker": ..., "keywords": [...],
"k": ...}``, the :meth:`~repro.engine.request.QueryRequest.from_obj`
mapping shape, plus an optional ``"id"`` echoed back), submits every
request to :meth:`Engine.asearch` *without waiting between lines* — so
concurrent requests accumulate into micro-batches exactly as live
traffic would — and writes one JSON response per answer as it
completes.  Responses carry the request ``id`` (defaulting to the input
line ordinal), so out-of-order completion is fine for callers.

A line carrying an ``"op"`` field is a **mutation** (the
:meth:`~repro.engine.request.MutationRequest.from_obj` mapping shape,
e.g. ``{"op": "add_tag", "uri": ..., "subject": ..., "author": ...,
"keyword": ...}``): it goes to :meth:`Engine.amutate`, which applies
the write and re-aligns the kernel — incrementally when the delta
pipeline can express it — before the acknowledgement record (carrying
the new ``version`` and the ``mode``, ``delta`` or ``rebuild``) is
written.

A malformed line produces a structured ``{"id": ..., "error": {"type":
..., "status": ..., "message": ...}}`` record — shaped by the same
:mod:`repro.engine.errors` helper the HTTP tier answers with — instead
of killing the stream.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Dict, Iterable, Optional

from .errors import error_payload
from .facade import Engine
from .request import MutationRequest, QueryRequest

__all__ = ["serve_lines", "run_serve"]


async def serve_lines(
    engine: Engine,
    lines: Iterable[str],
    write: Callable[[str], object],
    *,
    default_k: Optional[int] = None,
) -> Dict[str, int]:
    """Serve an iterable of JSONL request lines; returns serve counters."""
    # Completed tasks prune themselves: a long-lived stream must not
    # accumulate one finished Task per request forever.
    tasks: set = set()
    counters = {"requests": 0, "answered": 0, "mutated": 0, "errors": 0}

    async def answer(ordinal: int, line: str) -> None:
        identifier: object = ordinal
        try:
            payload = json.loads(line)
            if isinstance(payload, dict):
                identifier = payload.get("id", ordinal)
            if isinstance(payload, dict) and "op" in payload:
                response = await engine.amutate(
                    MutationRequest.from_obj(payload)
                )
                counter = "mutated"
            else:
                request = QueryRequest.from_obj(
                    payload,
                    default_k=(
                        default_k
                        if default_k is not None
                        else engine.config.default_k
                    ),
                )
                response = await engine.asearch(request)
                counter = "answered"
        except Exception as exc:  # noqa: BLE001 - serve loops must not die
            counters["errors"] += 1
            write(json.dumps(error_payload(exc, request_id=identifier)) + "\n")
            return
        counters[counter] += 1
        record = response.to_dict()
        record["id"] = identifier
        write(json.dumps(record) + "\n")

    # Pull lines through an executor thread: a live client (pipe, REPL)
    # blocks between lines, and a blocking read on the event loop would
    # stall every in-flight micro-batch — answers must stream out while
    # the server waits for the next request.
    loop = asyncio.get_running_loop()
    iterator = iter(lines)

    def next_line() -> Optional[str]:
        return next(iterator, None)

    ordinal = 0
    while True:
        line = await loop.run_in_executor(None, next_line)
        if line is None:
            break
        stripped = line.strip()
        if stripped:
            counters["requests"] += 1
            task = asyncio.create_task(answer(ordinal, stripped))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        ordinal += 1
    if tasks:
        await asyncio.gather(*list(tasks))
    await engine.aclose()
    return counters


def run_serve(
    engine: Engine,
    lines: Iterable[str],
    write: Callable[[str], object],
    *,
    default_k: Optional[int] = None,
) -> Dict[str, int]:
    """Synchronous wrapper: run :func:`serve_lines` in a fresh loop."""
    return asyncio.run(serve_lines(engine, lines, write, default_k=default_k))
