"""Typed serving requests and responses (the Engine wire format).

:class:`QueryRequest` is the single normalization point for everything
callers used to hand the kernel as ad-hoc ``(seeker, keywords[, k])``
tuples, ``QuerySpec`` objects or keyword arguments: construction
canonicalizes the seeker to a :class:`~repro.rdf.terms.URI` and the
keywords to the deduplicated term tuple the kernel coalesces on, so a
request *is* its own identity key — two requests for the same answer
compare (and hash) equal, which is what the batcher's in-flight
collapsing and the result cache key off.

:class:`QueryResponse` pairs the kernel's
:class:`~repro.core.search.SearchResult` with serving metadata (the
micro-batch the request rode in, whether it collapsed onto another
in-flight computation, the observed submission-to-answer latency) and
serializes to the JSONL shape of the ``serve`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.search import SearchResult, _normalize_keywords
from ..rdf.terms import Term, URI
from ..social.tags import Tag


@dataclass(frozen=True)
class QueryRequest:
    """One normalized S3k query: who asks, for what, and under which budget.

    ``semantic`` toggles keyword extension; ``max_iterations`` /
    ``time_budget`` activate the anytime termination (a request carrying
    either bypasses the result cache, exactly as the kernel does).
    """

    seeker: URI
    keywords: Tuple[Term, ...]
    k: int = 5
    semantic: bool = True
    max_iterations: Optional[int] = None
    time_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if isinstance(self.keywords, (str, bytes)):
            # A bare string would be iterated character by character — an
            # easy JSON mistake ("keywords": "w0") that must not produce a
            # well-formed answer for the wrong query.
            raise TypeError(
                f"keywords must be a sequence of keywords, not a single "
                f"string: {self.keywords!r}"
            )
        object.__setattr__(self, "seeker", URI(self.seeker))
        object.__setattr__(self, "keywords", _normalize_keywords(self.keywords))
        object.__setattr__(self, "k", int(self.k))

    # ------------------------------------------------------------------
    @classmethod
    def from_obj(
        cls,
        obj: object,
        default_k: int = 5,
        semantic: bool = True,
        max_iterations: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> "QueryRequest":
        """Normalize any accepted query shape into a request.

        Accepts, in order of precedence:

        * a :class:`QueryRequest` — returned unchanged (it already carries
          its own settings);
        * a mapping with ``seeker`` / ``keywords`` keys and optional
          ``k`` / ``semantic`` / ``max_iterations`` / ``time_budget``
          (the JSONL ``serve`` shape);
        * any object with ``seeker`` / ``keywords`` attributes and an
          optional ``k`` (e.g. :class:`repro.queries.workload.QuerySpec`);
        * a ``(seeker, keywords)`` or ``(seeker, keywords, k)`` tuple.

        A missing / zero / ``None`` ``k`` falls back to *default_k*; the
        remaining defaults fill whatever the object does not specify.
        """
        if isinstance(obj, cls):
            return obj
        if isinstance(obj, Mapping):
            unknown = set(obj) - _REQUEST_KEYS - {"id"}
            if unknown:
                raise TypeError(
                    f"unknown query fields {sorted(unknown)!r}; "
                    f"expected a subset of {sorted(_REQUEST_KEYS)}"
                )
            if "seeker" not in obj or "keywords" not in obj:
                raise TypeError(
                    "a query mapping needs at least 'seeker' and 'keywords', "
                    f"got {sorted(obj)!r}"
                )
            return cls(
                seeker=obj["seeker"],
                keywords=obj["keywords"],
                k=int(obj.get("k") or default_k),
                semantic=bool(obj.get("semantic", semantic)),
                max_iterations=obj.get("max_iterations", max_iterations),
                time_budget=obj.get("time_budget", time_budget),
            )
        if hasattr(obj, "seeker") and hasattr(obj, "keywords"):
            return cls(
                seeker=getattr(obj, "seeker"),
                keywords=getattr(obj, "keywords"),
                k=int(getattr(obj, "k", default_k) or default_k),
                semantic=bool(getattr(obj, "semantic", semantic)),
                max_iterations=getattr(obj, "max_iterations", max_iterations),
                time_budget=getattr(obj, "time_budget", time_budget),
            )
        if isinstance(obj, (tuple, list)):
            if len(obj) == 2:
                seeker, keywords = obj
                return cls(
                    seeker=seeker,
                    keywords=keywords,
                    k=default_k,
                    semantic=semantic,
                    max_iterations=max_iterations,
                    time_budget=time_budget,
                )
            if len(obj) == 3:
                seeker, keywords, query_k = obj
                return cls(
                    seeker=seeker,
                    keywords=keywords,
                    k=int(query_k),
                    semantic=semantic,
                    max_iterations=max_iterations,
                    time_budget=time_budget,
                )
        raise TypeError(
            "queries must be QueryRequest objects, mappings, "
            "(seeker, keywords[, k]) tuples or objects with seeker/keywords "
            f"attributes, got {obj!r}"
        )

    # ------------------------------------------------------------------
    @property
    def settings(self) -> Tuple:
        """Execution settings shared by one kernel ``search_many`` call."""
        return (self.semantic, self.max_iterations, self.time_budget)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable echo of the request."""
        payload: Dict[str, object] = {
            "seeker": str(self.seeker),
            "keywords": [str(keyword) for keyword in self.keywords],
            "k": self.k,
            "semantic": self.semantic,
        }
        if self.max_iterations is not None:
            payload["max_iterations"] = self.max_iterations
        if self.time_budget is not None:
            payload["time_budget"] = self.time_budget
        return payload


_REQUEST_KEYS = {f.name for f in fields(QueryRequest)}


@dataclass(frozen=True)
class MutationRequest:
    """One normalized write: a new tag or a new comment edge.

    The two ops mirror the incrementally propagatable
    :class:`~repro.core.instance.MutationDelta` shapes — anything else
    must go through the instance API directly (and pays a full kernel
    rebuild).  Construction canonicalizes every node reference to a
    :class:`~repro.rdf.terms.URI`, so a request is picklable and
    identical across the sharded broadcast.
    """

    op: str
    #: ``add_tag`` fields
    uri: Optional[URI] = None
    subject: Optional[URI] = None
    author: Optional[URI] = None
    keyword: Optional[str] = None
    tag_type: Optional[URI] = None
    #: ``add_comment_edge`` fields
    comment: Optional[URI] = None
    target: Optional[URI] = None
    relation: Optional[URI] = None

    def __post_init__(self) -> None:
        if self.op == "add_tag":
            if self.uri is None or self.subject is None or self.author is None:
                raise ValueError(
                    "an add_tag mutation needs 'uri', 'subject' and 'author'"
                )
            object.__setattr__(self, "uri", URI(self.uri))
            object.__setattr__(self, "subject", URI(self.subject))
            object.__setattr__(self, "author", URI(self.author))
            if self.tag_type is not None:
                object.__setattr__(self, "tag_type", URI(self.tag_type))
            if self.keyword is not None:
                object.__setattr__(self, "keyword", str(self.keyword))
        elif self.op == "add_comment_edge":
            if self.comment is None or self.target is None:
                raise ValueError(
                    "an add_comment_edge mutation needs 'comment' and 'target'"
                )
            object.__setattr__(self, "comment", URI(self.comment))
            object.__setattr__(self, "target", URI(self.target))
            if self.relation is not None:
                object.__setattr__(self, "relation", URI(self.relation))
        else:
            raise ValueError(
                f"unknown mutation op {self.op!r}; "
                "expected 'add_tag' or 'add_comment_edge'"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_obj(cls, obj: object) -> "MutationRequest":
        """Normalize a request object or a JSON mapping (the wire shape)."""
        if isinstance(obj, cls):
            return obj
        if isinstance(obj, Mapping):
            if "op" not in obj:
                raise ValueError(
                    f"a mutation mapping needs an 'op' field, got {sorted(obj)!r}"
                )
            unknown = set(obj) - _MUTATION_KEYS - {"id"}
            if unknown:
                raise ValueError(
                    f"unknown mutation fields {sorted(unknown)!r}; "
                    f"expected a subset of {sorted(_MUTATION_KEYS)}"
                )
            return cls(**{key: obj[key] for key in obj if key != "id"})
        raise TypeError(
            "mutations must be MutationRequest objects or mappings with an "
            f"'op' field, got {obj!r}"
        )

    def to_tag(self) -> Tag:
        """The :class:`Tag` an ``add_tag`` request describes."""
        if self.op != "add_tag":
            raise ValueError(f"not an add_tag mutation: {self.op!r}")
        return Tag(
            uri=self.uri,
            subject=self.subject,
            author=self.author,
            keyword=self.keyword,
            tag_type=self.tag_type,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable echo of the mutation."""
        payload: Dict[str, object] = {"op": self.op}
        for name in (
            "uri",
            "subject",
            "author",
            "keyword",
            "tag_type",
            "comment",
            "target",
            "relation",
        ):
            value = getattr(self, name)
            if value is not None:
                payload[name] = str(value)
        return payload


_MUTATION_KEYS = {f.name for f in fields(MutationRequest)}


@dataclass
class MutationResponse:
    """Outcome of one applied mutation."""

    request: MutationRequest
    #: instance version after the write
    version: int
    #: how the kernel re-aligned: ``"delta"`` (incremental patch) or
    #: ``"rebuild"`` (full fallback)
    mode: str
    #: connection-index slabs rebuilt by the delta path (0 on rebuild)
    components_patched: int = 0
    #: submission-to-applied latency observed by the serving layer, seconds
    latency_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """The JSONL record the ``serve`` subcommand emits per mutation."""
        payload = self.request.to_dict()
        payload.update(
            {
                "version": self.version,
                "mode": self.mode,
                "components_patched": self.components_patched,
                "latency_ms": round(self.latency_seconds * 1e3, 3),
            }
        )
        return payload


@dataclass
class QueryResponse:
    """One served answer: the kernel result plus serving metadata."""

    request: QueryRequest
    result: SearchResult
    #: size of the micro-batch this request was computed in (1 for
    #: sequential `Engine.search`)
    batch_size: int = 1
    #: True when the request joined another identical in-flight request's
    #: computation instead of occupying its own batch slot
    collapsed: bool = False
    #: what dispatched the micro-batch: "size", "deadline", "close", or
    #: "sync" for the non-async entry points
    flush_reason: str = "sync"
    #: submission-to-answer latency observed by the serving layer, seconds
    latency_seconds: float = 0.0

    # -- result passthroughs (keep BatchStats / reporting code working) --
    @property
    def results(self) -> List:
        """Ranked results, in rank order."""
        return self.result.results

    @property
    def uris(self) -> List[URI]:
        return self.result.uris

    @property
    def wall_time(self) -> float:
        return self.result.wall_time

    def to_dict(self) -> Dict[str, object]:
        """The JSONL record the ``serve`` subcommand emits per answer."""
        payload = self.request.to_dict()
        payload.update(
            {
                "results": [
                    {"uri": str(r.uri), "lower": r.lower, "upper": r.upper}
                    for r in self.result.results
                ],
                "iterations": self.result.iterations,
                "terminated_by": self.result.terminated_by,
                "batch_size": self.batch_size,
                "collapsed": self.collapsed,
                "latency_ms": round(self.latency_seconds * 1e3, 3),
            }
        )
        return payload
