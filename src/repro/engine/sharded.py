"""Process-parallel sharded serving: a router over N worker processes.

One GIL-bound interpreter caps the serving tier no matter how well the
kernel batches — and the in-process sharding experiment the ROADMAP
records *regressed* (0.67x at 4 shards: partitions contending for one
interpreter only add routing overhead).  This module is the real
design: every shard is a **full ``Engine`` in its own worker process**,
and the immutable index arrays are shared physically instead of being
deserialized per worker:

* the router builds **one** warm engine (instance, proximity matrix,
  ConnectionIndex slabs), optionally places the big arrays through a
  :class:`~repro.storage.slab_store.SlabStore` (mmap'd uncompressed-npz
  sidecars or POSIX shared memory), and then **forks** the workers —
  copy-on-write plus file/shm-backed buffers mean N shards hold one
  physical copy of every slab, not N;
* the router speaks the existing :class:`QueryRequest` /
  :class:`QueryResponse` wire format: requests pickle over a pipe per
  shard, each worker drains its pipe greedily into the engine's
  lock-step ``search_many`` (micro-batching survives the process hop),
  and answers resolve ``concurrent.futures`` futures that both the sync
  and asyncio entry points await.

**Routing and bit-identity.**  A query is routed *whole* to one shard
by a stable hash of its identity key ``(seeker, keywords)`` — never
split across shards.  Splitting a query per component and merging top-k
at gather sounds appealing (component evidence *is* independent), but
it cannot be bit-identical to single-process ``search``: the reported
``[lower, upper]`` intervals depend on the iteration at which the
threshold test fires, and a shard that sees only a subset of the
candidates stops at a different iteration, so merged intervals would
drift even though the ranking is sound.  Worse, uniform one-keyword
traffic matches most components, so per-component fan-out degenerates
into every-shard-computes-every-query — exactly the regression shape
the experiment measured.  Whole-query routing keeps results bit-equal
to ``Engine.search`` by construction, scales linearly on uniform
traffic, and the stable hash gives *affinity*: identical hot requests
land on the same shard, so per-shard result caches and in-flight
collapse keep working.  Multi-query batches (``search_many``, the HTTP
batch envelope) still fan out across all shards in parallel and gather
in input order.

**Failure containment.**  A worker that dies (OOM-kill, segfault, test
crash hook) fails only its in-flight requests — each answers a
structured 503 ``shard_unavailable`` — and the router immediately forks
a replacement from its own warm image (no index rebuild, no store
reload).  Draining stops admission first (the HTTP tier closes its
listener and waits idle) and only then stops the workers, so no
accepted request ever sees a dying shard.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import threading
import time
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from .errors import ShardUnavailableError
from .facade import Engine, EngineConfig, _merge_batcher_counters
from .request import (
    MutationRequest,
    MutationResponse,
    QueryRequest,
    QueryResponse,
)

__all__ = ["ShardedEngine", "ShardUnavailableError", "route_shard"]

#: Ceiling on one router→worker round trip before the caller errors out
#: (a wedged worker must fail loudly, not hang the serving tier).
DEFAULT_CALL_TIMEOUT = 60.0

#: Budget for collecting per-worker stats; a busy worker past it serves
#: its last known snapshot instead of stalling ``/stats``.
STATS_TIMEOUT = 2.0


def route_shard(request: QueryRequest, n_shards: int) -> int:
    """Stable shard of *request*: crc32 of the ``(seeker, keywords)`` key.

    Deliberately independent of ``PYTHONHASHSEED`` and of the per-request
    execution settings (``k`` / budgets): the same seeker+keywords always
    lands on the same shard, so its plan-cache entry and any identical
    in-flight request are already there.
    """
    key = "\x1f".join((str(request.seeker), *map(str, request.keywords)))
    return zlib.crc32(key.encode("utf-8")) % n_shards


def _picklable(exc: BaseException) -> BaseException:
    """Ensure an exception survives the pipe (fallback: repr in a
    RuntimeError) — a worker must never die because an error couldn't
    be reported."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickle failure takes the fallback
        return RuntimeError(f"{type(exc).__name__}: {exc!r}")


# ----------------------------------------------------------------------
# Worker side (runs in the forked child)
# ----------------------------------------------------------------------
def _worker_loop(conn, engine: Engine, worker_index: int, max_batch: int) -> None:
    """Serve one shard: drain the pipe greedily, answer via the engine.

    The first blocking ``recv`` plus a non-blocking ``poll`` drain
    rebuilds micro-batches on the worker side of the process hop: under
    load the pipe holds several queued requests and one lock-step
    ``search_many`` answers them all, exactly like the in-process
    batcher.  Control messages (``stats``, ``stop``, the test-only crash
    hook) interleave with searches in arrival order.
    """
    # The fork may have copied serving plumbing from a parent engine that
    # had already answered async traffic; its executor threads do not
    # survive the fork, so drop the references and start clean.
    engine._executor = None
    engine._batcher = None
    engine._batcher_loop = None
    started = time.monotonic()
    served = 0
    die_on_next_search = False
    stop = False

    def flush(searches: List) -> int:
        """Answer the accumulated searches in one lock-step call."""
        if not searches:
            return 0
        requests = [request for _rid, request in searches]
        try:
            results = engine._search_requests(requests)
            for (rid, _request), result in zip(searches, results):
                conn.send(("ok", rid, (result, len(requests))))
        except Exception:  # noqa: BLE001 - isolate the poisoned request
            # One bad request (unknown seeker, ...) poisons the
            # lock-step call; re-run individually so its co-batched
            # neighbors still answer, like the Batcher's fallback.
            for rid, request in searches:
                try:
                    result = engine._search_requests([request])[0]
                    conn.send(("ok", rid, (result, 1)))
                except Exception as exc:  # noqa: BLE001 - shaped upstream
                    conn.send(("err", rid, _picklable(exc)))
        return len(searches)

    while not stop:
        try:
            batch = [conn.recv()]
        except (EOFError, OSError):
            break  # router went away; nothing left to answer
        while len(batch) < max_batch and conn.poll(0):
            try:
                batch.append(conn.recv())
            except (EOFError, OSError):
                stop = True
                break
        searches: List = []
        for kind, rid, payload in batch:
            if kind == "search":
                if die_on_next_search:
                    os._exit(17)  # test crash hook: die holding requests
                searches.append((rid, payload))
            elif kind == "mutate":
                # A write is ordered after every search already drained
                # from the pipe, so co-batched queries answer from the
                # snapshot they were admitted against.
                served += flush(searches)
                searches = []
                try:
                    conn.send(("ok", rid, engine.mutate(payload)))
                except Exception as exc:  # noqa: BLE001 - shaped upstream
                    conn.send(("err", rid, _picklable(exc)))
            elif kind == "stats":
                stats = engine.stats()
                uptime = max(time.monotonic() - started, 1e-9)
                stats["worker"] = {
                    "pid": os.getpid(),
                    "worker_index": worker_index,
                    "uptime_seconds": round(uptime, 3),
                    "queries_served": served,
                    "qps": round(served / uptime, 3),
                }
                conn.send(("ok", rid, stats))
            elif kind == "exit_on_next_search":
                die_on_next_search = True
                conn.send(("ok", rid, True))
            elif kind == "stop":
                stop = True
        served += flush(searches)
    engine.close()
    conn.close()


# ----------------------------------------------------------------------
# Router side
# ----------------------------------------------------------------------
class _Shard:
    """Parent-side handle of one worker process.

    Owns the pipe, the pending-future table and a reader thread that
    resolves answers; on pipe EOF (worker death) it fails every pending
    request with :class:`ShardUnavailableError` and forks a replacement
    from the router's warm engine image.
    """

    def __init__(self, index: int, context, engine: Engine, max_batch: int):
        self.index = index
        self._context = context
        self._engine = engine
        self._max_batch = max_batch
        self._lock = threading.Lock()
        #: signalled under ``_lock`` whenever a (re)spawn installs a new
        #: worker; ``wait_for_respawn`` blocks on it instead of polling.
        self._spawned = threading.Condition(self._lock)
        self._request_ids = itertools.count()
        self._pending: Dict[int, Future] = {}
        self._closed = False
        self.generation = 0
        self.process = None
        self.conn = None
        self.last_stats: Dict[str, Dict[str, object]] = {}
        self.counters = {"routed": 0, "answered": 0, "errors": 0, "respawns": 0}
        with self._lock:
            self._start_locked()

    # -- lifecycle ------------------------------------------------------
    def _start_locked(self) -> None:
        # The generation bump and the new process / conn install happen
        # atomically under the lock: an observer that sees the new
        # generation (``wait_for_respawn``) is guaranteed to also see the
        # replacement worker, never the corpse of the old one.
        self.generation += 1
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_loop,
            args=(child_conn, self._engine, self.index, self._max_batch),
            name=f"s3k-shard-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn
        reader = threading.Thread(
            target=self._read_loop,
            args=(parent_conn, self.generation),
            name=f"s3k-shard-{self.index}-reader",
            daemon=True,
        )
        reader.start()
        self._spawned.notify_all()

    def _read_loop(self, conn, generation: int) -> None:
        try:
            while True:
                kind, rid, payload = conn.recv()
                with self._lock:
                    future = self._pending.pop(rid, None)
                if future is None:
                    continue  # caller gave up (timeout / cancelled)
                try:
                    if kind == "ok":
                        future.set_result(payload)
                    else:
                        future.set_exception(payload)
                except Exception:  # noqa: BLE001 - future already done
                    pass
        except (EOFError, OSError):
            pass
        self._on_worker_exit(generation)

    def _on_worker_exit(self, generation: int) -> None:
        with self._lock:
            if generation != self.generation:
                return  # a newer incarnation already took over
            failed = list(self._pending.values())
            self._pending.clear()
            respawn = not self._closed
            old_process, old_conn = self.process, self.conn
            if respawn:
                self.counters["respawns"] += 1
        error = ShardUnavailableError(
            f"shard {self.index} worker exited with {len(failed)} request(s) "
            "in flight; the router is respawning it — retry"
        )
        for future in failed:
            try:
                future.set_exception(error)
            except Exception:  # noqa: BLE001 - future already done
                pass
        if not respawn:
            return
        if old_process is not None:
            old_process.join(timeout=5)
        if old_conn is not None:
            old_conn.close()
        with self._lock:
            if not self._closed and generation == self.generation:
                # Fork a replacement from the router's warm image: no
                # store reload, no index rebuild — boot cost is one fork.
                self._start_locked()

    def stop(self, timeout: float) -> None:
        """Ask the worker to exit (drain has already quiesced admission)."""
        with self._lock:
            self._closed = True
            conn = self.conn
            try:
                conn.send(("stop", -1, None))
            except (OSError, ValueError):
                pass  # already dead: join below reaps it
        process = self.process
        if process is not None:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - needs a wedged worker
                process.terminate()
                process.join(timeout=5)
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass

    # -- calls ----------------------------------------------------------
    @property
    def alive(self) -> bool:
        process = self.process
        return process is not None and process.is_alive()

    @property
    def inflight(self) -> int:
        return len(self._pending)

    def submit(self, kind: str, payload: object = None) -> Future:
        """Send one message; the returned future resolves on the answer."""
        future: Future = Future()
        with self._lock:
            if self._closed:
                future.set_exception(
                    ShardUnavailableError(f"shard {self.index} is stopped")
                )
                return future
            rid = next(self._request_ids)
            self._pending[rid] = future
            try:
                self.conn.send((kind, rid, payload))
            except (OSError, ValueError) as exc:
                self._pending.pop(rid, None)
                future.set_exception(
                    ShardUnavailableError(
                        f"shard {self.index} worker is unreachable "
                        f"({type(exc).__name__}); the router is respawning it"
                    )
                )
        return future

    def fetch_stats(self, timeout: float) -> Optional[Dict[str, Dict[str, object]]]:
        """Current worker stats, or the last known snapshot on timeout."""
        try:
            stats = self.submit("stats").result(timeout)
        except Exception:  # noqa: BLE001 - dead/busy worker: stale is fine
            return self.last_stats or None
        self.last_stats = stats
        return stats


class ShardedEngine:
    """Router facade: ``Engine``-shaped API over N worker processes.

    Speaks the same entry points as :class:`Engine` (``search``,
    ``search_many``, ``asearch``, ``mutate``, ``amutate``, ``stats``,
    ``aclose``), so the HTTP tier, the JSONL loop and the CLI front it
    unchanged.  Writes broadcast to every worker under a barrier (see
    :meth:`mutate`), so the shards stay bit-identical replicas.  Construct from
    a live instance/engine (tests, benchmarks) or from a SQLite store
    with :meth:`from_store` (production: slabs are exported to an
    mmap'able sidecar so workers share one physical copy).

    Requires the ``fork`` start method (POSIX): workers inherit the
    router's warm engine copy-on-write, which is what makes boot and
    respawn O(fork) instead of O(index build).
    """

    def __init__(
        self,
        instance=None,
        *,
        engine: Optional[Engine] = None,
        shards: int = 2,
        score=None,
        connection_index=None,
        config: Optional[EngineConfig] = None,
        slab_store=None,
        call_timeout: float = DEFAULT_CALL_TIMEOUT,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "sharded serving requires the 'fork' start method (POSIX); "
                "run the single-process engine on this platform"
            )
        if engine is None:
            if instance is None:
                raise ValueError("ShardedEngine needs an instance or an engine")
            engine = Engine(
                instance,
                score=score,
                connection_index=connection_index,
                config=config,
            )
        # Everything a worker serves from is built once, here, pre-fork.
        engine.warm()
        self._engine = engine
        self.config = engine.config
        self.instance = engine.instance
        self.n_shards = shards
        self.slab_store = slab_store
        self._slabs_placed = 0
        if slab_store is not None:
            self._slabs_placed = self._place_slabs(slab_store)
        self._call_timeout = call_timeout
        self._context = multiprocessing.get_context("fork")
        self._closed = False
        self._close_lock = threading.Lock()
        self._hook_pool: Optional[ThreadPoolExecutor] = None
        #: serializes mutation barriers: writes reach every worker in one
        #: global order, so all shards replay the identical delta chain.
        self._mutation_lock = threading.Lock()
        self._mutation_generation = 0
        self._started = time.monotonic()
        self._shards = [
            _Shard(index, self._context, engine, self.config.max_batch_size)
            for index in range(shards)
        ]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        store,
        *,
        shards: int = 2,
        score=None,
        config: Optional[EngineConfig] = None,
        stale_slabs: str = "error",
        slab_backend: str = "mmap",
        sidecar_dir=None,
        call_timeout: float = DEFAULT_CALL_TIMEOUT,
    ) -> "ShardedEngine":
        """A sharded executor over a SQLite store.

        Slab bootstrap flow (``slab_backend="mmap"``, the default): the
        persisted compressed blobs are exported once to an uncompressed
        npz sidecar (``<db>.slabs/`` next to the database, or
        *sidecar_dir*), the router adopts them as read-only memory maps
        under the usual fingerprint guards (*stale_slabs* semantics as
        on :meth:`Engine.from_store`), and the forked workers inherit
        the mappings — the page cache holds one copy for all shards.
        ``"shm"`` places the arrays in POSIX shared memory instead;
        ``"heap"`` skips placement and relies on fork copy-on-write.
        """
        from pathlib import Path

        from ..storage.slab_store import MmapSlabStore, ShmSlabStore
        from ..storage.sqlite_store import SQLiteStore

        if stale_slabs not in ("error", "rebuild"):
            raise ValueError(
                f"stale_slabs must be 'error' or 'rebuild', got {stale_slabs!r}"
            )
        if slab_backend not in ("heap", "mmap", "shm"):
            raise ValueError(
                f"unknown slab backend {slab_backend!r} (heap, mmap, shm)"
            )
        config = config if config is not None else EngineConfig()
        owns_store = not isinstance(store, SQLiteStore)
        opened = SQLiteStore(store) if owns_store else store
        slab_store = None
        try:
            instance = opened.load_instance()
            persisted = opened.connection_index_slab_count()
            connection_index = None
            if config.use_connection_index:
                strict = stale_slabs == "error"
                if persisted and slab_backend == "mmap":
                    directory = (
                        Path(sidecar_dir)
                        if sidecar_dir is not None
                        else (Path(f"{store}.slabs") if owns_store else None)
                    )
                    if directory is not None:
                        opened.export_slab_sidecar(directory)
                        slab_store = MmapSlabStore(directory)
                elif slab_backend == "shm":
                    slab_store = ShmSlabStore()
                connection_index = opened.load_connection_index(
                    instance, strict=strict, slab_store=slab_store
                )
        finally:
            if owns_store:
                opened.close()
        engine = Engine(
            instance, score=score, connection_index=connection_index, config=config
        )
        engine._slabs_persisted = persisted
        if connection_index is not None:
            engine._slabs_adopted = int(
                connection_index.stats()["components_built"]
            )
        return cls(
            engine=engine,
            shards=shards,
            slab_store=slab_store,
            call_timeout=call_timeout,
        )

    def _place_slabs(self, store) -> int:
        """Export the warm indexes into *store* and re-adopt the placed
        (shared) arrays in place, so the forked workers serve from
        shm/mmap-backed buffers instead of private heap pages."""
        kernel = self._engine.kernel
        placed = 0
        index = kernel.connection_index
        if index is not None:
            existing = set(store.names())
            for ident in sorted(index._slabs):
                name = f"component_{ident}"
                if name not in existing:
                    slab = index._slabs[ident]
                    store.put(name, slab.arrays(), meta=slab.header())
            placed += index.adopt_slab_store(store)
        prox = getattr(kernel, "prox_index", None)
        if prox is not None:
            arrays = prox.transition_arrays()
            if arrays is not None:
                name = "proximity_transition"
                if name not in set(store.names()):
                    store.put(name, arrays, meta=None)
                prox.adopt_transition(store.get(name))
                placed += 1
        return placed

    # ------------------------------------------------------------------
    # Routing + the FaultInjector seam
    # ------------------------------------------------------------------
    def _search_requests(
        self, requests: Sequence[QueryRequest]
    ) -> List[QueryRequest]:
        """Pre-dispatch hook (identity).  The PR 4 ``FaultInjector``
        wraps exactly this attribute — same seam as on :class:`Engine` —
        so the failure-injection suite parks sharded requests router-side
        without the workers knowing."""
        return list(requests)

    def _hooked(self) -> bool:
        return "_search_requests" in self.__dict__

    def _ensure_hook_pool(self) -> ThreadPoolExecutor:
        if self._hook_pool is None:
            self._hook_pool = ThreadPoolExecutor(
                max_workers=8, thread_name_prefix="s3k-router-hook"
            )
        return self._hook_pool

    def shard_of(self, request: QueryRequest) -> int:
        return route_shard(request, self.n_shards)

    def _dispatch(self, request: QueryRequest) -> Future:
        shard = self._shards[self.shard_of(request)]
        shard.counters["routed"] += 1
        return shard.submit("search", request)

    def _respond(
        self, request: QueryRequest, payload, latency: Optional[float] = None
    ) -> QueryResponse:
        result, batch_size = payload
        return QueryResponse(
            request=request,
            result=result,
            batch_size=batch_size,
            flush_reason="shard",
            latency_seconds=latency if latency is not None else result.wall_time,
        )

    def _settle(self, shard_index: int, future: Future):
        shard = self._shards[shard_index]
        try:
            payload = future.result(self._call_timeout)
        except Exception:
            shard.counters["errors"] += 1
            raise
        shard.counters["answered"] += 1
        return payload

    # -- request coercion: same normalization as the in-process facade --
    _coerce = Engine._coerce

    # ------------------------------------------------------------------
    # Entry points (Engine-shaped)
    # ------------------------------------------------------------------
    def search(
        self,
        query: object,
        keywords: Optional[Sequence[object]] = None,
        k: Optional[int] = None,
        **settings,
    ) -> QueryResponse:
        """Answer one query synchronously through its shard."""
        if keywords is not None:
            query = (query, keywords)
        request = self._coerce(query, k=k, **settings)
        [request] = self._search_requests([request])
        future = self._dispatch(request)
        return self._respond(request, self._settle(self.shard_of(request), future))

    def search_many(
        self, queries: Sequence[object], **settings
    ) -> List[QueryResponse]:
        """Fan a batch out across the shards; gather in input order."""
        requests = [self._coerce(query, **settings) for query in queries]
        requests = self._search_requests(requests)
        futures = [self._dispatch(request) for request in requests]
        return [
            self._respond(request, self._settle(self.shard_of(request), future))
            for request, future in zip(requests, futures)
        ]

    async def asearch(self, query: object, **settings) -> QueryResponse:
        """Answer one query on the async serving path (what the HTTP
        tier and the JSONL loop call)."""
        request = self._coerce(query, **settings)
        started = time.perf_counter()
        if self._hooked():
            # A FaultInjector gate blocks; keep it off the event loop.
            loop = asyncio.get_running_loop()
            [request] = await loop.run_in_executor(
                self._ensure_hook_pool(), self._search_requests, [request]
            )
        shard_index = self.shard_of(request)
        shard = self._shards[shard_index]
        shard.counters["routed"] += 1
        future = shard.submit("search", request)
        try:
            payload = await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            raise
        except Exception:
            shard.counters["errors"] += 1
            raise
        shard.counters["answered"] += 1
        return self._respond(
            request, payload, latency=time.perf_counter() - started
        )

    # ------------------------------------------------------------------
    # Mutations (barrier broadcast)
    # ------------------------------------------------------------------
    def mutate(self, mutation: object) -> MutationResponse:
        """Apply one typed write on every shard, with a barrier.

        The router's warm engine is mutated **first**: a worker that
        dies at any point respawns by forking that image, so the
        replacement already carries the write and never needs a replay.
        The request is then broadcast to every live worker and the call
        blocks until all of them acknowledge — once ``mutate`` returns,
        a query submitted to *any* shard answers from the new instance
        version.  Queries already in flight during the barrier may still
        answer from the pre-write snapshot; that window is the staleness
        the live-mutation benchmark measures.  Because every worker
        applies the identical :class:`MutationRequest` through the same
        deterministic delta path, the shards stay bit-identical replicas
        of each other and of a from-scratch rebuild.
        """
        request = MutationRequest.from_obj(mutation)
        started = time.perf_counter()
        with self._mutation_lock:
            response = self._engine.mutate(request)
            futures = [
                (shard, shard.submit("mutate", request))
                for shard in self._shards
            ]
            for shard, future in futures:
                try:
                    future.result(self._call_timeout)
                except Exception:  # noqa: BLE001 - dead worker: see below
                    # A worker lost mid-barrier respawns from the
                    # router's already-mutated image — the replacement
                    # is current, not stale, so the barrier holds.
                    shard.counters["errors"] += 1
            self._mutation_generation += 1
        response.latency_seconds = time.perf_counter() - started
        return response

    async def amutate(self, mutation: object) -> MutationResponse:
        """Async :meth:`mutate` (the HTTP tier and the JSONL loop call
        this): the barrier blocks, so it runs off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.mutate, mutation)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker (call only after admission has quiesced)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for shard in self._shards:
            shard.stop(timeout=10.0)
        if self._hook_pool is not None:
            self._hook_pool.shutdown(wait=False)
            self._hook_pool = None
        self._engine.close()
        store = self.slab_store
        if store is not None and hasattr(store, "close"):
            try:
                store.close()
            except Exception:  # noqa: BLE001 - cleanup must not mask serving
                pass

    async def aclose(self) -> None:
        """Async drain hook (what :meth:`HttpServer.drain` awaits)."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.close)

    # -- test hooks -----------------------------------------------------
    def crash_worker(self, shard_index: int) -> None:
        """Arm the crash hook: the worker exits on its next search (the
        deterministic stand-in for an OOM-kill in the failure tests)."""
        self._shards[shard_index].submit("exit_on_next_search").result(
            self._call_timeout
        )

    def wait_for_respawn(self, shard_index: int, generation: int, timeout=30.0):
        """Block until shard *shard_index* is past *generation* and its
        replacement process is alive (no sleeps in tests): a condition
        wait on the shard's spawn signal, not a polling loop."""
        shard = self._shards[shard_index]
        with shard._lock:
            respawned = shard._spawned.wait_for(
                lambda: shard.generation > generation and shard.alive,
                timeout=timeout,
            )
        if not respawned:
            raise TimeoutError(f"shard {shard_index} did not respawn")

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, object]]:
        """Merged rollup plus per-shard breakdown.

        Sections: ``engine`` / ``result_cache`` / ``batcher`` are the
        workers' counters summed (the same shapes as
        :meth:`Engine.stats`, so existing dashboards keep reading them);
        ``connection_index`` reports the router's **shared** index once
        (summing N views of one mmap would multiply its size);
        ``router`` holds routing / respawn / placement counters; one
        ``shard_<i>`` section per worker carries the per-shard
        breakdown (qps, cache hits, inflight).  Rendered by
        :func:`repro.eval.reporting.format_engine_stats`.
        """
        uptime = max(time.monotonic() - self._started, 1e-9)
        rollup_engine: Dict[str, object] = {
            "queries_served": 0,
            "kernel_rebuilds": 0,
            "instance_version": self.instance.version,
            "kernel_version": self._engine.kernel_version,
        }
        rollup_cache: Dict[str, int] = {"hits": 0, "misses": 0, "size": 0, "maxsize": 0}
        rollup_batcher: Dict[str, float] = {}
        rollup_maintenance: Dict[str, float] = {}
        shard_sections: Dict[str, Dict[str, object]] = {}
        answered_total = 0
        for shard in self._shards:
            worker = None if self._closed else shard.fetch_stats(STATS_TIMEOUT)
            section: Dict[str, object] = {
                "alive": shard.alive,
                "pid": shard.process.pid if shard.process is not None else -1,
                "generation": shard.generation,
                "inflight": shard.inflight,
                "queries_routed": shard.counters["routed"],
                "answered": shard.counters["answered"],
                "errors": shard.counters["errors"],
                "respawns": shard.counters["respawns"],
                "qps": round(shard.counters["answered"] / uptime, 3),
            }
            answered_total += shard.counters["answered"]
            if worker is not None:
                engine_section = worker.get("engine", {})
                cache_section = worker.get("result_cache", {})
                rollup_engine["queries_served"] += engine_section.get(
                    "queries_served", 0
                )
                rollup_engine["kernel_rebuilds"] += engine_section.get(
                    "kernel_rebuilds", 0
                )
                for name in ("hits", "misses", "size"):
                    rollup_cache[name] += cache_section.get(name, 0)
                rollup_cache["maxsize"] = max(
                    rollup_cache["maxsize"], cache_section.get("maxsize", 0)
                )
                _merge_batcher_counters(rollup_batcher, worker.get("batcher", {}))
                for name, value in worker.get("maintenance", {}).items():
                    rollup_maintenance[name] = (
                        rollup_maintenance.get(name, 0) + value
                    )
                section["cache_hits"] = cache_section.get("hits", 0)
                section["cache_misses"] = cache_section.get("misses", 0)
                section["worker_qps"] = worker.get("worker", {}).get("qps", 0.0)
            shard_sections[f"shard_{shard.index}"] = section
        connection = dict(self._engine.stats()["connection_index"])
        router: Dict[str, object] = {
            "shards": self.n_shards,
            "alive_shards": sum(1 for shard in self._shards if shard.alive),
            "queries_routed": sum(s.counters["routed"] for s in self._shards),
            "answered": answered_total,
            "errors": sum(s.counters["errors"] for s in self._shards),
            "worker_respawns": sum(s.counters["respawns"] for s in self._shards),
            "mutation_generation": self._mutation_generation,
            "inflight": sum(s.inflight for s in self._shards),
            "qps": round(answered_total / uptime, 3),
            "slab_backend": (
                getattr(self.slab_store, "backend", "heap-cow")
                if self.slab_store is not None
                else "heap-cow"
            ),
            "slabs_placed": self._slabs_placed,
            "uptime_seconds": round(uptime, 3),
        }
        return {
            "engine": rollup_engine,
            "router": router,
            "maintenance": rollup_maintenance,
            "result_cache": rollup_cache,
            "connection_index": connection,
            "batcher": rollup_batcher,
            **shard_sections,
        }

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Summed worker result-cache counters (Engine-shaped)."""
        return dict(self.stats()["result_cache"])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        alive = sum(1 for shard in self._shards if shard.alive)
        return f"ShardedEngine(shards={self.n_shards}, alive={alive})"
