"""Adapter from an S3 instance to the UIT model (Section 5.1).

The paper flattens its instances for TopkS: *"every tweet was merged with
all its retweets and replies into a single item"* and *"every keyword k in
the content of a tweet that is represented by item i posted by user u led
to introducing the (user, item, tag) triple (u, i, k)"*; for Vodkaster and
Yelp *"each movie or business becomes an item"*.

Generically: every connected component of documents and tags (a post with
its comment chain and annotations — exactly a movie's or business's review
thread in I2/I3) becomes one item; document keyword content turns into
(poster, item, keyword) triples; keyword tags into (author, item, keyword)
triples; user-user relations keep their weights.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.components import ComponentIndex
from ..core.instance import S3Instance
from ..rdf.namespaces import S3_POSTED_BY, S3_SOCIAL
from ..rdf.terms import URI
from .uit import UITDataset


def uit_from_instance(
    instance: S3Instance,
    component_index: ComponentIndex | None = None,
) -> Tuple[UITDataset, Dict[URI, str]]:
    """Flatten *instance* into a :class:`UITDataset`.

    Returns the dataset and the mapping from every document node URI to its
    item identifier (used by the qualitative measures to compare S3k
    results against TopkS results).
    """
    if component_index is None:
        component_index = ComponentIndex(instance)
    dataset = UITDataset()
    doc_to_item: Dict[URI, str] = {}

    for user in instance.users:
        dataset.add_user(str(user))
    for wt in instance.graph.triples(predicate=S3_SOCIAL):
        if isinstance(wt.object, URI) and wt.weight > 0.0:
            dataset.add_link(str(wt.subject), str(wt.object), wt.weight)

    for component in component_index.components():
        item = f"item:{component.ident}"
        poster_of: Dict[URI, str] = {}
        for root in component.roots:
            posters = [
                str(o)
                for o in instance.graph.objects(root, S3_POSTED_BY)
                if isinstance(o, URI)
            ]
            if posters:
                poster_of[root] = posters[0]
        for node_uri in component.nodes:
            doc_to_item[node_uri] = item
            root = instance.node_to_document[node_uri]
            poster = poster_of.get(root)
            if poster is None:
                continue
            node = instance.documents[root].node(node_uri)
            for keyword in node.keywords:
                dataset.add_triple(poster, item, str(keyword))
        for tag_uri in component.tags:
            tag = instance.tags[tag_uri]
            if tag.keyword is not None:
                dataset.add_triple(str(tag.author), item, str(tag.keyword))
    return dataset, doc_to_item
