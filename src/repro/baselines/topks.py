"""TopkS: the network-aware UIT top-k baseline (Maniu & Cautis, CIKM'13).

As characterized in the paper (Sections 5.1 and 5.3): items carry no
structure or semantics; the social proximity between two users follows the
single *best (shortest) path* — the maximum product of link weights,
computed with a Dijkstra-style expansion; the item score blends a social
and a content part:

    ``score(i) = Σ_{t ∈ φ} [ α · social(i, t) + (1 − α) · content(i, t) ]``

with ``social(i, t) = Σ_{u' tagged (i, t)} prox(u, u') · count(u', i, t)``
and ``content(i, t) = count(i, t) / max_j count(j, t)``.

The search visits users in decreasing proximity order (the instance-
optimal strategy of the original system): after each visited user, any
still-unseen tagger's proximity is bounded by the expansion frontier, so
per-item upper bounds — and a sound early-termination test — follow.
Larger ``α`` makes the social part dominant and forces deeper exploration,
reproducing the ``α``-runtime trend of Figures 5 and 6.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .uit import UITDataset


@dataclass(frozen=True)
class TopkSRanked:
    """One ranked item with its (final) score bounds."""

    item: str
    lower: float
    upper: float


@dataclass
class TopkSResult:
    """Outcome of one TopkS query."""

    seeker: str
    keywords: Tuple[str, ...]
    k: int
    results: List[TopkSRanked]
    users_visited: int
    elapsed_seconds: float
    items_examined: Set[str] = field(default_factory=set)

    @property
    def items(self) -> List[str]:
        return [r.item for r in self.results]


class _ProximityExpander:
    """Lazy best-path (max weight product) expansion from a seeker."""

    def __init__(self, dataset: UITDataset, seeker: str):
        self._dataset = dataset
        self._best: Dict[str, float] = {}
        self._heap: List[Tuple[float, str]] = [(-1.0, seeker)]

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        while self._heap:
            negative, user = heapq.heappop(self._heap)
            proximity = -negative
            if user in self._best:
                continue
            self._best[user] = proximity
            for neighbor, weight in self._dataset.links_of(user).items():
                if neighbor not in self._best and weight > 0.0:
                    heapq.heappush(self._heap, (-(proximity * weight), neighbor))
            yield user, proximity

    def frontier(self) -> float:
        """Upper bound on the proximity of any not-yet-visited user."""
        while self._heap and self._heap[0][1] in self._best:
            heapq.heappop(self._heap)
        return -self._heap[0][0] if self._heap else 0.0


class TopkSSearcher:
    """The TopkS baseline engine over a :class:`UITDataset`."""

    def __init__(self, dataset: UITDataset, alpha: float = 0.5):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.dataset = dataset
        self.alpha = alpha

    # ------------------------------------------------------------------
    def _content_scores(self, keywords: Sequence[str]) -> Dict[str, Dict[str, float]]:
        """keyword -> item -> normalized content score (exact, index-only)."""
        scores: Dict[str, Dict[str, float]] = {}
        for keyword in keywords:
            items = self.dataset.items_with_tag(keyword)
            best = max(items.values()) if items else 0
            scores[keyword] = (
                {item: count / best for item, count in items.items()} if best else {}
            )
        return scores

    # ------------------------------------------------------------------
    def search(
        self,
        seeker: str,
        keywords: Sequence[str],
        k: int = 5,
        max_users: Optional[int] = None,
    ) -> TopkSResult:
        """Top-k UIT search with early termination.

        *max_users* optionally caps the exploration (anytime behaviour).
        """
        started = time.perf_counter()
        query = list(dict.fromkeys(str(kw) for kw in keywords))
        content = self._content_scores(query)
        alpha = self.alpha

        # All items that can ever score > 0, with exact content part and
        # per-keyword outstanding tagger multiplicities.
        social: Dict[str, Dict[str, float]] = {}
        outstanding: Dict[str, Dict[str, int]] = {}
        base: Dict[str, float] = {}
        for keyword in query:
            for item, count in self.dataset.items_with_tag(keyword).items():
                social.setdefault(item, {})[keyword] = 0.0
                outstanding.setdefault(item, {})[keyword] = count
                base[item] = base.get(item, 0.0) + (1 - alpha) * content[keyword][item]

        expander = _ProximityExpander(self.dataset, seeker)
        visited = 0
        examined: Set[str] = set(base)

        def bounds() -> Tuple[List[Tuple[str, float]], float, Dict[str, float]]:
            frontier = expander.frontier()
            lowers: List[Tuple[str, float]] = []
            uppers: Dict[str, float] = {}
            for item, per_keyword in social.items():
                lower = base[item] + alpha * sum(per_keyword.values())
                pending = sum(outstanding[item].values())
                uppers[item] = lower + alpha * pending * frontier
                lowers.append((item, lower))
            lowers.sort(key=lambda pair: (-pair[1], pair[0]))
            return lowers, frontier, uppers

        stopped_early = False
        for user, proximity in expander:
            visited += 1
            for keyword in query:
                for item in list(social):
                    taggers = self.dataset.taggers(item, keyword)
                    count = taggers.get(user, 0)
                    if count:
                        social[item][keyword] += proximity * count
                        outstanding[item][keyword] -= count
            if visited % 8 == 0 or (max_users and visited >= max_users):
                lowers, frontier, uppers = bounds()
                if len(lowers) <= k:
                    if frontier == 0.0 or all(
                        sum(out.values()) == 0 for out in outstanding.values()
                    ):
                        stopped_early = True
                        break
                else:
                    kth = lowers[k - 1][1]
                    if all(
                        uppers[item] <= kth + 1e-12
                        for item, _ in lowers[k:]
                    ):
                        stopped_early = True
                        break
                if max_users and visited >= max_users:
                    break

        lowers, frontier, uppers = bounds()
        top = lowers[:k]
        results = [TopkSRanked(item, low, uppers[item]) for item, low in top]
        return TopkSResult(
            seeker=seeker,
            keywords=tuple(query),
            k=k,
            results=results,
            users_visited=visited,
            elapsed_seconds=time.perf_counter() - started,
            items_examined=examined,
        )

    # ------------------------------------------------------------------
    def exact_scores(self, seeker: str, keywords: Sequence[str]) -> Dict[str, float]:
        """Exhaustive scoring (oracle for tests)."""
        query = list(dict.fromkeys(str(kw) for kw in keywords))
        content = self._content_scores(query)
        proximity: Dict[str, float] = {}
        for user, prox in _ProximityExpander(self.dataset, seeker):
            proximity[user] = prox
        scores: Dict[str, float] = {}
        for keyword in query:
            for item, count in self.dataset.items_with_tag(keyword).items():
                social = sum(
                    proximity.get(user, 0.0) * mult
                    for user, mult in self.dataset.taggers(item, keyword).items()
                )
                scores[item] = (
                    scores.get(item, 0.0)
                    + self.alpha * social
                    + (1 - self.alpha) * content[keyword][item]
                )
        return scores
