"""Baselines: the UIT model and the TopkS search engine of [18]."""

from .adapter import uit_from_instance
from .topks import TopkSRanked, TopkSResult, TopkSSearcher
from .uit import UITDataset

__all__ = [
    "UITDataset",
    "uit_from_instance",
    "TopkSSearcher",
    "TopkSResult",
    "TopkSRanked",
]
