"""The UIT (user-item-tag) data model used by the TopkS baseline.

The model of [18, 21, 30] as described in Sections 1 and 5.1 of the paper:
social network users with weighted links, atomic items (no internal
structure, no semantics), and (user, item, tag) triples recording that a
user tagged an item with a keyword.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set, Tuple


class UITDataset:
    """Users, weighted user links and (user, item, tag) triples."""

    def __init__(self) -> None:
        self.users: Set[str] = set()
        self.items: Set[str] = set()
        self._links: Dict[str, Dict[str, float]] = defaultdict(dict)
        #: (item, tag) -> user -> multiplicity
        self._taggers: Dict[Tuple[str, str], Dict[str, int]] = defaultdict(dict)
        #: tag -> item -> total count
        self._tag_items: Dict[str, Dict[str, int]] = defaultdict(dict)

    # ------------------------------------------------------------------
    def add_user(self, user: str) -> None:
        self.users.add(user)

    def add_link(self, source: str, target: str, weight: float) -> None:
        """Add a weighted social link (max weight wins on duplicates)."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"link weight must be in [0, 1], got {weight}")
        self.users.add(source)
        self.users.add(target)
        current = self._links[source].get(target, 0.0)
        if weight > current:
            self._links[source][target] = weight

    def add_triple(self, user: str, item: str, tag: str) -> None:
        """Record one (user, item, tag) tagging action."""
        self.users.add(user)
        self.items.add(item)
        taggers = self._taggers[(item, tag)]
        taggers[user] = taggers.get(user, 0) + 1
        items = self._tag_items[tag]
        items[item] = items.get(item, 0) + 1

    # ------------------------------------------------------------------
    def links_of(self, user: str) -> Dict[str, float]:
        return dict(self._links.get(user, {}))

    def link_count(self) -> int:
        return sum(len(targets) for targets in self._links.values())

    def taggers(self, item: str, tag: str) -> Dict[str, int]:
        """user → multiplicity for the given (item, tag)."""
        return dict(self._taggers.get((item, tag), {}))

    def items_with_tag(self, tag: str) -> Dict[str, int]:
        """item → total count of *tag* on it."""
        return dict(self._tag_items.get(tag, {}))

    def tag_count(self, item: str, tag: str) -> int:
        return sum(self._taggers.get((item, tag), {}).values())

    def max_tag_count(self, tag: str) -> int:
        items = self._tag_items.get(tag, {})
        return max(items.values()) if items else 0

    def reachable_items(self, tags: Iterable[str]) -> Set[str]:
        """Items carrying at least one of the given tags.

        No semantic extension exists in the model, so items tagged only
        with extension keywords are invisible to a UIT search.
        """
        reachable: Set[str] = set()
        for tag in tags:
            reachable.update(self._tag_items.get(tag, ()))
        return reachable

    def socially_reachable_items(self, seeker: str, tags: Iterable[str]) -> Set[str]:
        """Items a *network-aware* UIT search can reach from *seeker*.

        TopkS discovers items by visiting taggers in decreasing social
        proximity: an item is reached only if one of its query-tag taggers
        lies in the seeker's social component.  S3k, in contrast, also
        walks document-to-document and authorship edges — the gap between
        the two is the *graph reachability* measure of Section 5.4.
        """
        tag_list = list(tags)
        visited: Set[str] = {seeker}
        stack = [seeker]
        while stack:
            user = stack.pop()
            for neighbor, weight in self._links.get(user, {}).items():
                if weight > 0.0 and neighbor not in visited:
                    visited.add(neighbor)
                    stack.append(neighbor)
        reachable: Set[str] = set()
        for tag in tag_list:
            for item in self._tag_items.get(tag, ()):
                taggers = self._taggers.get((item, tag), {})
                if any(user in visited for user in taggers):
                    reachable.add(item)
        return reachable
