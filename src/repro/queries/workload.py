"""Query workloads ``qset_{f,l,k}`` (Section 5.1).

Workloads vary three independent parameters:

* ``f`` — keyword frequency: rare ``'-'`` (bottom 25% of document
  frequencies) or common ``'+'`` (top 25%);
* ``l`` — number of keywords per query (1 or 5 in the paper);
* ``k`` — requested result count (5 or 10; 1..50 for Figure 7).

Each workload is a list of (seeker, keywords, k) query specs with seekers
drawn from the socially-connected users.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.instance import S3Instance
from ..rdf.namespaces import S3_CONTAINS, S3_SOCIAL
from ..rdf.terms import Term, URI, coerce_term


@dataclass(frozen=True)
class QuerySpec:
    """One keyword query: seeker, keyword set and requested k."""

    seeker: URI
    keywords: Tuple[Term, ...]
    k: int


@dataclass
class Workload:
    """A named batch of queries, e.g. ``qset(+,1,5)``."""

    name: str
    frequency: str  # '+' or '-'
    n_keywords: int
    k: int
    queries: List[QuerySpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def batches(self, batch_size: int) -> List[List[QuerySpec]]:
        """Split the workload into batches for ``S3kSearch.search_many``.

        The last batch may be short; ``batch_size <= 0`` yields one batch
        holding the whole workload.
        """
        if batch_size <= 0:
            return [list(self.queries)] if self.queries else []
        return [
            list(self.queries[start : start + batch_size])
            for start in range(0, len(self.queries), batch_size)
        ]


def document_frequencies(instance: S3Instance) -> Dict[Term, int]:
    """Keyword → number of *documents* (root trees) containing it."""
    frequencies: Dict[Term, set] = {}
    for wt in instance.graph.triples(predicate=S3_CONTAINS):
        root = instance.node_to_document.get(wt.subject)
        if root is None:
            continue
        frequencies.setdefault(wt.object, set()).add(root)
    return {keyword: len(roots) for keyword, roots in frequencies.items()}


def frequency_buckets(
    frequencies: Dict[Term, int]
) -> Tuple[List[Term], List[Term]]:
    """Split keywords into (rare, common): bottom / top frequency quartiles."""
    ordered = sorted(frequencies.items(), key=lambda item: (item[1], item[0]))
    if not ordered:
        return [], []
    quartile = max(1, len(ordered) // 4)
    rare = [keyword for keyword, _ in ordered[:quartile]]
    common = [keyword for keyword, _ in ordered[-quartile:]]
    return rare, common


def connected_seekers(instance: S3Instance) -> List[URI]:
    """Users with at least one outgoing social edge (sensible seekers)."""
    seekers = {
        wt.subject
        for wt in instance.graph.triples(predicate=S3_SOCIAL)
        if wt.subject in instance.users
    }
    return sorted(seekers) or sorted(instance.users)


class WorkloadBuilder:
    """Generates the paper's workload grid over one instance."""

    def __init__(self, instance: S3Instance, seed: int = 0):
        self.instance = instance
        self._rng = random.Random(seed)
        self._frequencies = document_frequencies(instance)
        self._rare, self._common = frequency_buckets(self._frequencies)
        self._seekers = connected_seekers(instance)
        #: pool keyword -> documents containing it (for co-occurrence
        #: sampling of multi-keyword queries)
        self._documents_of: Dict[Term, List[URI]] = {}
        for wt in instance.graph.triples(predicate=S3_CONTAINS):
            root = instance.node_to_document.get(wt.subject)
            if root is not None:
                self._documents_of.setdefault(wt.object, []).append(root)

    def build(self, frequency: str, n_keywords: int, k: int, n_queries: int) -> Workload:
        """One ``qset_{f,l,k}`` workload of *n_queries* random queries."""
        if frequency not in ("+", "-"):
            raise ValueError(f"frequency must be '+' or '-', got {frequency!r}")
        pool = self._common if frequency == "+" else self._rare
        if not pool:
            raise ValueError("instance has no keywords to build a workload from")
        workload = Workload(
            name=f"qset({frequency},{n_keywords},{k})",
            frequency=frequency,
            n_keywords=n_keywords,
            k=k,
        )
        for _ in range(n_queries):
            keywords = self._sample_keywords(pool, n_keywords)
            seeker = self._rng.choice(self._seekers)
            workload.queries.append(QuerySpec(seeker, keywords, k))
        return workload

    def _sample_keywords(self, pool: List[Term], n_keywords: int) -> Tuple[Term, ...]:
        """Sample query keywords from *pool*.

        Single-keyword queries draw uniformly from the pool.  Multi-keyword
        queries are anchored on one pool keyword and completed with
        keywords co-occurring in one document containing it — the score is
        a product over query keywords, so queries whose keywords never
        co-occur have an empty answer by construction and would not
        exercise the search (real workload keywords are correlated).
        """
        anchor = self._rng.choice(pool)
        if n_keywords == 1:
            return (anchor,)
        documents = self._documents_of.get(anchor)
        chosen: List[Term] = [anchor]
        if documents:
            root = self._rng.choice(documents)
            document = self.instance.documents[root]
            companions = sorted(
                {term for term in
                 (coerce_term(k) for k in document.keywords())
                 if term != anchor}
            )
            self._rng.shuffle(companions)
            chosen.extend(companions[: n_keywords - 1])
        while len(chosen) < n_keywords and len(chosen) < len(pool):
            extra = self._rng.choice(pool)
            if extra not in chosen:
                chosen.append(extra)
        return tuple(chosen[:n_keywords])

    def paper_grid(self, n_queries: int = 100) -> List[Workload]:
        """The 8 workloads of Figures 5/6: f∈{+,−} × l∈{1,5} × k∈{5,10}."""
        grid = []
        for frequency in ("+", "-"):
            for n_keywords in (1, 5):
                for k in (5, 10):
                    grid.append(self.build(frequency, n_keywords, k, n_queries))
        return grid

    def vary_k_grid(
        self, ks: Sequence[int] = (1, 5, 10, 50), n_queries: int = 100
    ) -> List[Workload]:
        """The Figure 7 workloads: f∈{+,−}, l=1, k ∈ *ks*."""
        grid = []
        for frequency in ("+", "-"):
            for k in ks:
                grid.append(self.build(frequency, 1, k, n_queries))
        return grid
