"""Query workloads and timing harness (Section 5.1), sequential + batched."""

from .runner import (
    BatchStats,
    TimingSummary,
    engine_runner,
    run_workload,
    run_workload_batched,
    s3k_runner,
    topks_runner,
)
from .workload import (
    QuerySpec,
    Workload,
    WorkloadBuilder,
    connected_seekers,
    document_frequencies,
    frequency_buckets,
)

__all__ = [
    "QuerySpec",
    "Workload",
    "WorkloadBuilder",
    "document_frequencies",
    "frequency_buckets",
    "connected_seekers",
    "TimingSummary",
    "BatchStats",
    "run_workload",
    "run_workload_batched",
    "engine_runner",
    "s3k_runner",
    "topks_runner",
]
