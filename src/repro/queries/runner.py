"""Workload execution and timing summaries (for Figures 5-7).

Two execution modes share the timing machinery:

* **sequential** (:func:`run_workload`) — one query at a time through any
  runner callable, as in the paper's experiments;
* **batched** (:func:`run_workload_batched`) — slices of the workload go
  through :meth:`S3kSearch.search_many`, which advances all queries of a
  batch in lock-step over one stacked mat-mat proximity step.  The
  per-batch statistics keep both the per-query submission-to-answer
  latencies (what a waiting caller observes) and the per-batch wall times
  (what sizes the serving capacity), summarized as percentiles via
  :func:`repro.eval.reporting.latency_percentiles`.
"""

from __future__ import annotations

import statistics
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..eval.reporting import latency_percentiles
from .workload import QuerySpec, Workload


@dataclass
class TimingSummary:
    """min / quartiles / max of per-query run times, in seconds."""

    name: str
    times: List[float] = field(default_factory=list)

    @property
    def median(self) -> float:
        return statistics.median(self.times) if self.times else 0.0

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times) if self.times else 0.0

    def quartiles(self) -> Dict[str, float]:
        """The five numbers plotted in Figure 7."""
        if not self.times:
            return {"min": 0.0, "q1": 0.0, "median": 0.0, "q3": 0.0, "max": 0.0}
        ordered = sorted(self.times)
        q = statistics.quantiles(ordered, n=4) if len(ordered) > 1 else [ordered[0]] * 3
        return {
            "min": ordered[0],
            "q1": q[0],
            "median": statistics.median(ordered),
            "q3": q[2],
            "max": ordered[-1],
        }


def run_workload(
    run_query: Callable[[QuerySpec], object],
    workload: Workload,
    label: str = "",
) -> TimingSummary:
    """Run every query of *workload* through *run_query*, timing each."""
    summary = TimingSummary(name=label or workload.name)
    for spec in workload.queries:
        started = time.perf_counter()
        run_query(spec)
        summary.times.append(time.perf_counter() - started)
    return summary


@dataclass
class BatchStats:
    """Aggregate outcome of a batched workload run."""

    name: str
    batch_size: int
    #: per-query submission-to-answer latency, seconds (input order)
    query_latencies: List[float] = field(default_factory=list)
    #: wall time of each ``search_many`` call, seconds
    batch_times: List[float] = field(default_factory=list)
    #: queries whose submission-to-answer latency exceeded the deadline —
    #: the caller-observed SLO miss count, independent of why the
    #: exploration stopped
    deadline_misses: int = 0
    results: List[object] = field(default_factory=list)
    #: engine result-cache hit / miss / occupancy counters observed right
    #: after the run (all zero for engines without a result cache)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: full ``Engine.stats()`` snapshot when the executor is an
    #: :class:`~repro.engine.facade.Engine` facade (empty for bare kernels)
    engine_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: kernel fast-/slow-path certification counters and per-phase wall
    #: seconds observed right after the run (``S3kSearch.exploration_stats``
    #: shape; empty for executors without an exploration kernel)
    exploration_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def n_queries(self) -> int:
        return len(self.query_latencies)

    @property
    def total_seconds(self) -> float:
        return sum(self.batch_times)

    @property
    def throughput(self) -> float:
        """Answered queries per second of batch wall time."""
        return self.n_queries / self.total_seconds if self.total_seconds else 0.0

    def latency_summary(self) -> Dict[str, float]:
        """Percentiles of the per-query latencies (see ISSUE: SLO tails)."""
        return latency_percentiles(self.query_latencies)

    def batch_summary(self) -> Dict[str, float]:
        """Percentiles of the per-batch wall times."""
        return latency_percentiles(self.batch_times)


def run_workload_batched(
    engine,
    workload: Workload,
    batch_size: int = 32,
    deadline: Optional[float] = None,
    label: str = "",
    **search_kwargs,
) -> BatchStats:
    """Run *workload* through ``engine.search_many`` in batches.

    *deadline* is the per-query anytime budget in seconds: a query that
    exceeds it is retired from its batch with its current best
    candidates.  ``deadline_misses`` counts every query whose observed
    submission-to-answer latency reached the deadline, whatever stopped
    its exploration.  Extra *search_kwargs* (e.g. ``semantic=False``)
    are forwarded to ``search_many``.
    """
    stats = BatchStats(name=label or workload.name, batch_size=batch_size)
    for batch in workload.batches(batch_size):
        started = time.perf_counter()
        results = engine.search_many(batch, time_budget=deadline, **search_kwargs)
        stats.batch_times.append(time.perf_counter() - started)
        for result in results:
            stats.query_latencies.append(result.wall_time)
            if deadline is not None and result.wall_time >= deadline:
                stats.deadline_misses += 1
        stats.results.extend(results)
    stats.cache_stats = dict(getattr(engine, "cache_stats", {}) or {})
    stats.exploration_stats = dict(
        getattr(engine, "exploration_stats", {}) or {}
    )
    if hasattr(engine, "stats") and callable(engine.stats):
        snapshot = engine.stats()
        if isinstance(snapshot, dict):
            stats.engine_stats = snapshot
    return stats


def engine_runner(
    engine,
    *,
    k: Optional[int] = None,
    semantic: bool = True,
    max_iterations: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> Callable[[object], object]:
    """Adapter: a per-query runner over an Engine facade or a kernel.

    The single normalization point is
    :meth:`repro.engine.QueryRequest.from_obj`; the keyword defaults
    fill whatever a query object does not specify (a
    :class:`QuerySpec`'s own ``k`` always wins).  Accepts both the
    :class:`~repro.engine.facade.Engine` facade and a bare
    :class:`~repro.core.search.S3kSearch` kernel.
    """
    from ..engine.facade import Engine
    from ..engine.request import QueryRequest

    if k is None:
        # An Engine carries its own configured default; the kernel's
        # signature default is 5.
        k = engine.config.default_k if isinstance(engine, Engine) else 5

    def coerce(query: object) -> "QueryRequest":
        return QueryRequest.from_obj(
            query,
            default_k=k,
            semantic=semantic,
            max_iterations=max_iterations,
            time_budget=time_budget,
        )

    if isinstance(engine, Engine):
        def run(query: object):
            return engine.search(coerce(query))

        return run

    def run(query: object):
        request = coerce(query)
        return engine.search(
            request.seeker,
            request.keywords,
            k=request.k,
            semantic=request.semantic,
            max_iterations=request.max_iterations,
            time_budget=request.time_budget,
        )

    return run


def s3k_runner(engine, **search_kwargs) -> Callable[[QuerySpec], object]:
    """Deprecated alias of :func:`engine_runner` (kept for old imports)."""
    warnings.warn(
        "s3k_runner is deprecated; use engine_runner (QueryRequest-based)",
        DeprecationWarning,
        stacklevel=2,
    )
    return engine_runner(engine, **search_kwargs)


def topks_runner(searcher) -> Callable[[QuerySpec], object]:
    """Adapter: a QuerySpec runner over a :class:`TopkSSearcher`."""

    def run(spec: QuerySpec):
        return searcher.search(
            str(spec.seeker), [str(kw) for kw in spec.keywords], k=spec.k
        )

    return run
