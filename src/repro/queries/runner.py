"""Workload execution and timing summaries (for Figures 5-7)."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from .workload import QuerySpec, Workload


@dataclass
class TimingSummary:
    """min / quartiles / max of per-query run times, in seconds."""

    name: str
    times: List[float] = field(default_factory=list)

    @property
    def median(self) -> float:
        return statistics.median(self.times) if self.times else 0.0

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times) if self.times else 0.0

    def quartiles(self) -> Dict[str, float]:
        """The five numbers plotted in Figure 7."""
        if not self.times:
            return {"min": 0.0, "q1": 0.0, "median": 0.0, "q3": 0.0, "max": 0.0}
        ordered = sorted(self.times)
        q = statistics.quantiles(ordered, n=4) if len(ordered) > 1 else [ordered[0]] * 3
        return {
            "min": ordered[0],
            "q1": q[0],
            "median": statistics.median(ordered),
            "q3": q[2],
            "max": ordered[-1],
        }


def run_workload(
    run_query: Callable[[QuerySpec], object],
    workload: Workload,
    label: str = "",
) -> TimingSummary:
    """Run every query of *workload* through *run_query*, timing each."""
    summary = TimingSummary(name=label or workload.name)
    for spec in workload.queries:
        started = time.perf_counter()
        run_query(spec)
        summary.times.append(time.perf_counter() - started)
    return summary


def s3k_runner(engine, **search_kwargs) -> Callable[[QuerySpec], object]:
    """Adapter: a QuerySpec runner over an :class:`S3kSearch` engine."""

    def run(spec: QuerySpec):
        return engine.search(spec.seeker, spec.keywords, k=spec.k, **search_kwargs)

    return run


def topks_runner(searcher) -> Callable[[QuerySpec], object]:
    """Adapter: a QuerySpec runner over a :class:`TopkSSearcher`."""

    def run(spec: QuerySpec):
        return searcher.search(
            str(spec.seeker), [str(kw) for kw in spec.keywords], k=spec.k
        )

    return run
