"""I3: the Yelp-like instance (crowd-sourced business reviews).

Follows Section 5.1: ``u yelp:friend v 1`` edges with ``yelp:friend ≺sp
S3:social``; per business, the first review is a document and subsequent
reviews comment on it; review text is semantically enriched against the
knowledge base (like I1, unlike I2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.instance import S3Instance
from ..documents.document import Document
from ..documents.node import DocumentNode
from ..rdf.terms import URI
from .ontology import Ontology, build_ontology, enrich_keywords
from .synthetic import TextModel, preferential_choice

DEFAULT_TOPICS = ["food", "service", "ambiance", "price"]


@dataclass
class YelpConfig:
    """Size knobs for the I3 generator."""

    n_users: int = 250
    n_businesses: int = 50
    n_reviews: int = 500
    friend_probability: float = 0.009
    vocabulary_size: int = 450
    paragraphs_per_review: int = 2
    words_per_paragraph: int = 9
    entity_probability: float = 0.5
    topic_probability: float = 0.18
    ontology_coverage: int = 120
    seed: int = 13

    def scaled(self, factor: float) -> "YelpConfig":
        return YelpConfig(
            n_users=max(4, int(self.n_users * factor)),
            n_businesses=max(2, int(self.n_businesses * factor)),
            n_reviews=max(4, int(self.n_reviews * factor)),
            friend_probability=self.friend_probability,
            vocabulary_size=self.vocabulary_size,
            paragraphs_per_review=self.paragraphs_per_review,
            words_per_paragraph=self.words_per_paragraph,
            entity_probability=self.entity_probability,
            topic_probability=self.topic_probability,
            ontology_coverage=self.ontology_coverage,
            seed=self.seed,
        )


@dataclass
class YelpDataset:
    instance: S3Instance
    ontology: Ontology
    n_businesses: int = 0
    n_reviews: int = 0


def build_yelp_instance(config: Optional[YelpConfig] = None) -> YelpDataset:
    """Generate the I3-shaped instance."""
    if config is None:
        config = YelpConfig()
    rng = random.Random(config.seed)
    instance = S3Instance()
    text_model = TextModel.build(rng, config.vocabulary_size, prefix="y")
    anchored = DEFAULT_TOPICS + text_model.vocabulary[: config.ontology_coverage]
    ontology = build_ontology(rng, anchored, classes_per_topic=1, entities_per_class=2)
    instance.add_knowledge(ontology.triples)

    users = [instance.add_user(f"yelp:u{i}") for i in range(config.n_users)]
    for source in users:
        for target in users:
            if source != target and rng.random() < config.friend_probability:
                instance.add_social_edge(source, target, 1.0, relation="yelp:friend")

    first_review: Dict[int, URI] = {}
    dataset = YelpDataset(instance=instance, ontology=ontology)

    def review_words() -> List[str]:
        words = text_model.words(rng, config.words_per_paragraph)
        if rng.random() < config.topic_probability:
            words.append(rng.choice(ontology.topics))
        return words

    def build_review(uri: str) -> Document:
        root = DocumentNode(URI(uri), "review")
        for p in range(rng.randint(1, config.paragraphs_per_review)):
            root.add_child(
                URI(f"{uri}.p{p}"),
                "paragraph",
                enrich_keywords(
                    review_words(), ontology, rng, config.entity_probability
                ),
            )
        return Document(root)

    businesses = list(range(config.n_businesses))
    for r in range(config.n_reviews):
        business = preferential_choice(rng, businesses)
        author = rng.choice(users)
        document = build_review(f"yelp:r{r}")
        instance.add_document(document, posted_by=author)
        dataset.n_reviews += 1
        if business in first_review:
            instance.add_comment_edge(document.uri, first_review[business])
        else:
            first_review[business] = document.uri
    dataset.n_businesses = len(first_review)
    instance.saturate()
    return dataset
