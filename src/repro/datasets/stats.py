"""Instance statistics — the rows of Figure 4.

Computes, for any S3 instance, the quantities the paper tabulates: users,
social edges, documents, non-root fragments, tags, keyword occurrences,
graph nodes/edges without keywords, and average social degree of users
having any social edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.instance import S3Instance
from ..rdf.namespaces import S3_CONTAINS, S3_SOCIAL


@dataclass
class InstanceStats:
    """Figure 4-style statistics for one instance."""

    users: int
    social_edges: int
    documents: int
    fragments_non_root: int
    tags: int
    keyword_occurrences: int
    distinct_keywords: int
    nodes_without_keywords: int
    edges_without_keywords: int
    avg_social_degree: float

    def rows(self) -> Dict[str, object]:
        """Ordered name → value mapping for table printing."""
        return {
            "Users": self.users,
            "S3:social edges": self.social_edges,
            "Documents": self.documents,
            "Fragments (non-root)": self.fragments_non_root,
            "Tags": self.tags,
            "Keywords": self.keyword_occurrences,
            "Distinct keywords": self.distinct_keywords,
            "Nodes (without keywords)": self.nodes_without_keywords,
            "Edges (without keywords)": self.edges_without_keywords,
            "S3:social edges per user having any (average)": round(
                self.avg_social_degree, 1
            ),
        }


def compute_stats(instance: S3Instance) -> InstanceStats:
    """Compute the Figure 4 rows over *instance*."""
    social_edges = 0
    social_sources: Dict[str, int] = {}
    for wt in instance.graph.triples(predicate=S3_SOCIAL):
        social_edges += 1
        social_sources[wt.subject] = social_sources.get(wt.subject, 0) + 1

    keyword_occurrences = 0
    distinct = set()
    for wt in instance.graph.triples(predicate=S3_CONTAINS):
        keyword_occurrences += 1
        distinct.add(wt.object)
    for tag in instance.tags.values():
        if tag.keyword is not None:
            keyword_occurrences += 1
            distinct.add(tag.keyword)

    n_nodes = len(instance.network_nodes())
    edges_without_keywords = sum(
        1 for uri in instance.network_nodes() for _ in instance.network_out_edges(uri)
    )

    fragments = sum(len(doc) - 1 for doc in instance.documents.values())
    degrees = list(social_sources.values())
    return InstanceStats(
        users=len(instance.users),
        social_edges=social_edges,
        documents=len(instance.documents),
        fragments_non_root=fragments,
        tags=len(instance.tags),
        keyword_occurrences=keyword_occurrences,
        distinct_keywords=len(distinct),
        nodes_without_keywords=n_nodes,
        edges_without_keywords=edges_without_keywords,
        avg_social_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
    )
