"""I1: the Twitter-like instance (Section 5.1, substituted — see DESIGN.md).

Reproduces the construction pipeline of the paper on synthetic data:

* every non-retweet status becomes a three-node document (text / date /
  geo), its text enriched against the knowledge base;
* a retweet introduces, for each hashtag it carries, a tag
  ``a type S3:relatedTo, a hasSubject t, a hasKeyword h, a hasAuthor u``
  on the original tweet (a hashtag-less retweet becomes an endorsement);
* a reply becomes a document plus an ``S3:commentsOn`` edge when the
  target is in the corpus;
* user links carry the similarity ``u∼(a,b) = t·js1(a,b) + (1−t)·js2(a,b)``
  — Jaccard over post keywords and over comment keywords — kept when above
  the threshold (0.1 in the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.instance import S3Instance
from ..documents.document import Document
from ..documents.node import DocumentNode
from ..rdf.terms import URI
from ..social.tags import Tag
from .ontology import Ontology, build_ontology, enrich_keywords
from .synthetic import TextModel, preferential_choice

#: Named topic words always anchoring the synthetic knowledge base.
DEFAULT_TOPICS = ["politics", "sport", "music", "science", "cinema"]


@dataclass
class TwitterConfig:
    """Size and behaviour knobs for the I1 generator.

    The defaults give a laptop-scale instance; the paper-shape ratios
    (retweets 85%, replies 6.9%, similarity threshold 0.1) are preserved.
    """

    n_users: int = 300
    n_statuses: int = 900
    retweet_ratio: float = 0.85
    reply_ratio: float = 0.069
    similarity_threshold: float = 0.1
    similarity_mix: float = 0.5  # the paper's t in t·js1 + (1−t)·js2
    vocabulary_size: int = 500
    words_per_tweet: int = 8
    hashtag_count: int = 25
    entity_probability: float = 0.3
    topic_probability: float = 0.2
    #: number of vocabulary words additionally anchored in the KB — the
    #: paper's DBpedia lexicalization covered a large share of tweet words,
    #: which is what drives semantic reachability below 100%.
    ontology_coverage: int = 120
    max_similarity_candidates: int = 60
    seed: int = 7

    def scaled(self, factor: float) -> "TwitterConfig":
        """A proportionally larger/smaller configuration."""
        return TwitterConfig(
            n_users=max(4, int(self.n_users * factor)),
            n_statuses=max(8, int(self.n_statuses * factor)),
            retweet_ratio=self.retweet_ratio,
            reply_ratio=self.reply_ratio,
            similarity_threshold=self.similarity_threshold,
            similarity_mix=self.similarity_mix,
            vocabulary_size=self.vocabulary_size,
            words_per_tweet=self.words_per_tweet,
            hashtag_count=self.hashtag_count,
            entity_probability=self.entity_probability,
            topic_probability=self.topic_probability,
            ontology_coverage=self.ontology_coverage,
            max_similarity_candidates=self.max_similarity_candidates,
            seed=self.seed,
        )


@dataclass
class TwitterDataset:
    """The generated instance plus generation metadata."""

    instance: S3Instance
    ontology: Ontology
    n_tweets: int = 0
    n_retweets: int = 0
    n_replies: int = 0
    n_documents: int = 0


def build_twitter_instance(config: Optional[TwitterConfig] = None) -> TwitterDataset:
    """Generate the I1-shaped instance."""
    if config is None:
        config = TwitterConfig()
    rng = random.Random(config.seed)
    instance = S3Instance()
    text_model = TextModel.build(rng, config.vocabulary_size)
    hashtags = [f"#h{i}" for i in range(config.hashtag_count)]
    # Anchor the KB on the named topics plus the most frequent vocabulary
    # words, so that a sizable share of workload keywords has a non-trivial
    # extension (the paper's DBpedia lexicalizations covered common words).
    anchored = DEFAULT_TOPICS + text_model.vocabulary[: config.ontology_coverage]
    ontology = build_ontology(rng, anchored, classes_per_topic=1, entities_per_class=2)
    instance.add_knowledge(ontology.triples)

    users = [instance.add_user(f"tw:u{i}") for i in range(config.n_users)]
    #: per-user keyword sets for js1 (posts) and js2 (comments)
    post_keywords: Dict[URI, Set[str]] = {u: set() for u in users}
    comment_keywords: Dict[URI, Set[str]] = {u: set() for u in users}

    tweet_uris: List[URI] = []
    dataset = TwitterDataset(instance=instance, ontology=ontology)
    tag_counter = 0

    def tweet_words() -> List[str]:
        words = text_model.words(rng, config.words_per_tweet)
        if rng.random() < config.topic_probability:
            # Topic words appear both literally and through their entities,
            # so queries on them exercise the keyword extension.
            words.append(rng.choice(ontology.topics))
        if rng.random() < 0.4:
            words.append(rng.choice(hashtags))
        return words

    def build_tweet_document(uri: str, words: List[str]) -> Document:
        root = DocumentNode(URI(uri), "tweet")
        root.add_child(
            URI(f"{uri}.text"),
            "text",
            enrich_keywords(words, ontology, rng, config.entity_probability),
        )
        root.add_child(URI(f"{uri}.date"), "date", [f"{rng.randint(2010, 2016)}"])
        root.add_child(URI(f"{uri}.geo"), "geo", [f"city{rng.randint(0, 30)}"])
        return Document(root)

    for status in range(config.n_statuses):
        author = preferential_choice(rng, users)
        is_retweet = tweet_uris and rng.random() < config.retweet_ratio
        if is_retweet:
            # Retweet: a tag on the original tweet (paper's construction).
            dataset.n_retweets += 1
            original = preferential_choice(rng, tweet_uris)
            carried = [h for h in hashtags if rng.random() < 0.08]
            if carried:
                for hashtag in carried:
                    instance.add_tag(
                        Tag(URI(f"tw:a{tag_counter}"), original, author, keyword=hashtag)
                    )
                    tag_counter += 1
            else:
                instance.add_tag(Tag(URI(f"tw:a{tag_counter}"), original, author))
                tag_counter += 1
            continue

        words = tweet_words()
        uri = f"tw:t{status}"
        document = build_tweet_document(uri, words)
        is_reply = tweet_uris and rng.random() < config.reply_ratio
        instance.add_document(document, posted_by=author)
        dataset.n_documents += 1
        if is_reply:
            dataset.n_replies += 1
            target = preferential_choice(rng, tweet_uris)
            instance.add_comment_edge(document.uri, target)
            comment_keywords[author].update(words)
        else:
            post_keywords[author].update(words)
        tweet_uris.append(document.uri)

    dataset.n_tweets = config.n_statuses
    _add_similarity_edges(instance, rng, config, post_keywords, comment_keywords)
    instance.saturate()
    return dataset


def _jaccard(a: Set[str], b: Set[str]) -> float:
    if not a and not b:
        return 0.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def _add_similarity_edges(
    instance: S3Instance,
    rng: random.Random,
    config: TwitterConfig,
    post_keywords: Dict[URI, Set[str]],
    comment_keywords: Dict[URI, Set[str]],
) -> None:
    """The u∼ similarity edges over candidate pairs sharing keywords.

    All-pairs Jaccard is quadratic; like any practical implementation we
    only score pairs that co-occur in some keyword's posting list (capped
    per keyword to bound worst-case work on ultra-frequent words).
    """
    by_keyword: Dict[str, List[URI]] = {}
    for user, words in post_keywords.items():
        for word in words:
            by_keyword.setdefault(word, []).append(user)
    pairs: Set[Tuple[URI, URI]] = set()
    for users_with_word in by_keyword.values():
        if len(users_with_word) > config.max_similarity_candidates:
            users_with_word = rng.sample(
                users_with_word, config.max_similarity_candidates
            )
        for i, a in enumerate(users_with_word):
            for b in users_with_word[i + 1:]:
                pairs.add((a, b) if a < b else (b, a))
    mix = config.similarity_mix
    for a, b in sorted(pairs):
        similarity = mix * _jaccard(post_keywords[a], post_keywords[b]) + (
            1 - mix
        ) * _jaccard(comment_keywords[a], comment_keywords[b])
        if similarity > config.similarity_threshold:
            weight = min(1.0, similarity)
            instance.add_social_edge(a, b, weight)
            instance.add_social_edge(b, a, weight)
