"""Dataset generators shaped after the paper's I1 / I2 / I3 instances."""

from .ontology import Ontology, build_ontology, enrich_keywords
from .stats import InstanceStats, compute_stats
from .synthetic import TextModel, preferential_choice
from .twitter import TwitterConfig, TwitterDataset, build_twitter_instance
from .vodkaster import VodkasterConfig, VodkasterDataset, build_vodkaster_instance
from .yelp import YelpConfig, YelpDataset, build_yelp_instance

__all__ = [
    "Ontology",
    "build_ontology",
    "enrich_keywords",
    "TextModel",
    "preferential_choice",
    "TwitterConfig",
    "TwitterDataset",
    "build_twitter_instance",
    "VodkasterConfig",
    "VodkasterDataset",
    "build_vodkaster_instance",
    "YelpConfig",
    "YelpDataset",
    "build_yelp_instance",
    "InstanceStats",
    "compute_stats",
]
