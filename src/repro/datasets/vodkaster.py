"""I2: the Vodkaster-like instance (French movie micro-reviews).

Follows Section 5.1: ``u vdk:follow v 1`` edges with ``vdk:follow ≺sp
S3:social``; per movie, the first comment becomes a document whose
fragments are its (stemmed) sentences, and every additional comment is a
document commenting on the first.  The content uses a disjoint "French"
vocabulary and is **not** matched against any knowledge base — which is
why the paper's semantic-reachability measure is 100% on I2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.instance import S3Instance
from ..documents.document import Document
from ..documents.node import DocumentNode
from ..rdf.terms import URI
from .synthetic import TextModel, preferential_choice


@dataclass
class VodkasterConfig:
    """Size knobs for the I2 generator."""

    n_users: int = 150
    n_movies: int = 60
    n_comments: int = 400
    follow_probability: float = 0.012
    vocabulary_size: int = 350
    sentences_per_comment: int = 3
    words_per_sentence: int = 6
    seed: int = 11

    def scaled(self, factor: float) -> "VodkasterConfig":
        return VodkasterConfig(
            n_users=max(4, int(self.n_users * factor)),
            n_movies=max(2, int(self.n_movies * factor)),
            n_comments=max(4, int(self.n_comments * factor)),
            follow_probability=self.follow_probability,
            vocabulary_size=self.vocabulary_size,
            sentences_per_comment=self.sentences_per_comment,
            words_per_sentence=self.words_per_sentence,
            seed=self.seed,
        )


@dataclass
class VodkasterDataset:
    instance: S3Instance
    n_movies: int = 0
    n_comments: int = 0


def build_vodkaster_instance(
    config: Optional[VodkasterConfig] = None,
) -> VodkasterDataset:
    """Generate the I2-shaped instance."""
    if config is None:
        config = VodkasterConfig()
    rng = random.Random(config.seed)
    instance = S3Instance()
    text_model = TextModel.build(rng, config.vocabulary_size, prefix="fr")

    users = [instance.add_user(f"vdk:u{i}") for i in range(config.n_users)]
    for source in users:
        for target in users:
            if source != target and rng.random() < config.follow_probability:
                instance.add_social_edge(source, target, 1.0, relation="vdk:follow")

    #: movie id -> URI of the first comment (the component's document root)
    first_comment: Dict[int, URI] = {}
    dataset = VodkasterDataset(instance=instance)

    def build_comment(uri: str) -> Document:
        root = DocumentNode(URI(uri), "comment")
        for s in range(rng.randint(1, config.sentences_per_comment)):
            root.add_child(
                URI(f"{uri}.s{s}"),
                "sentence",
                text_model.words(rng, config.words_per_sentence),
            )
        return Document(root)

    movies = list(range(config.n_movies))
    for c in range(config.n_comments):
        movie = preferential_choice(rng, movies)
        author = rng.choice(users)
        document = build_comment(f"vdk:c{c}")
        instance.add_document(document, posted_by=author)
        dataset.n_comments += 1
        if movie in first_comment:
            instance.add_comment_edge(document.uri, first_comment[movie])
        else:
            first_comment[movie] = document.uri
    dataset.n_movies = len(first_comment)
    instance.saturate()
    return dataset
