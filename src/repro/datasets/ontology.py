"""Synthetic DBpedia-like knowledge base (substitute for Section 5.1's KB).

The paper enriched tweets and Yelp reviews against DBpedia (Mapping-based
Types / Properties, Persondata, Lexicalizations): words matching a
``foaf:name`` were replaced by the entity URI, and the RDFS schema links
entities and classes so that keyword extension (Definition 2.1) can reach
them.  This generator reproduces that *shape*:

* a class taxonomy ``kb:c<i> ≺sc parent`` rooted at topical classes, each
  topical root also declared ``≺sc`` its literal topic word, so that plain
  literal queries pick up the taxonomy;
* entities ``kb:e<j>`` typed with a leaf class;
* a lexicalization table mapping surface words to entity URIs (the
  ``foaf:name`` replacement table).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..rdf.namespaces import FOAF_NAME, RDF_TYPE, RDFS_SUBCLASS
from ..rdf.terms import Literal, URI


@dataclass
class Ontology:
    """A generated knowledge base."""

    #: weight-1 triples to add to the instance
    triples: List[Tuple[URI, URI, object]] = field(default_factory=list)
    #: surface word -> candidate entity URIs (the enrichment table)
    lexicalization: Dict[str, List[URI]] = field(default_factory=dict)
    #: all class URIs, topical roots first
    classes: List[URI] = field(default_factory=list)
    #: all entity URIs
    entities: List[URI] = field(default_factory=list)
    #: literal topic words anchoring the taxonomy
    topics: List[str] = field(default_factory=list)


def build_ontology(
    rng: random.Random,
    topics: List[str],
    classes_per_topic: int = 4,
    entities_per_class: int = 3,
) -> Ontology:
    """Generate a taxonomy + entities + lexicalizations over *topics*.

    Every topic word gets a root class (``≺sc`` the topic literal), a chain
    of sub-classes, and entities typed with those classes; each entity has
    one surface word so document text can be enriched into it.
    """
    ontology = Ontology(topics=list(topics))
    entity_counter = 0
    for t, topic in enumerate(topics):
        root = URI(f"kb:c{t}_0")
        ontology.classes.append(root)
        ontology.triples.append((root, RDFS_SUBCLASS, Literal(topic)))
        previous = root
        for c in range(1, classes_per_topic):
            cls = URI(f"kb:c{t}_{c}")
            ontology.classes.append(cls)
            # Random attachment: chain or sibling under the root.
            parent = previous if rng.random() < 0.6 else root
            ontology.triples.append((cls, RDFS_SUBCLASS, parent))
            previous = cls
        for cls in ontology.classes[-classes_per_topic:]:
            for _ in range(entities_per_class):
                entity = URI(f"kb:e{entity_counter}")
                entity_counter += 1
                ontology.entities.append(entity)
                ontology.triples.append((entity, RDF_TYPE, cls))
                # The entity's surface form *is* the topic word — like
                # "Obama" vs "president", some occurrences of the word are
                # entity mentions (the paper's foaf:name replacement).
                ontology.lexicalization.setdefault(topic, []).append(entity)
                ontology.triples.append((entity, FOAF_NAME, Literal(topic)))
    return ontology


def enrich_keywords(
    keywords: List[str],
    ontology: Ontology,
    rng: random.Random,
    probability: float = 0.5,
) -> List[object]:
    """Replace lexicalized words by entity URIs with some probability.

    The paper replaced every word carrying a ``foaf:name`` by its entity
    URI; the probabilistic variant models the mix of entity mentions and
    plain word uses found in real text — documents mentioning only the
    entity are then reachable for the word query *only* through the
    keyword extension (which is what the semantic measures of Section 5.4
    quantify).
    """
    enriched: List[object] = []
    for keyword in keywords:
        entities = ontology.lexicalization.get(keyword)
        if entities and rng.random() < probability:
            enriched.append(rng.choice(entities))
        else:
            enriched.append(keyword)
    return enriched
