"""Synthetic text: Zipf-distributed vocabulary and short messages.

Keyword frequencies in real corpora are Zipfian; the workload generator
(Section 5.1) splits keywords into *rare* (bottom frequency quartile) and
*common* (top quartile), so reproducing the frequency skew is what matters
for query-time behaviour — not natural-language fluency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence


@dataclass
class TextModel:
    """A Zipfian bag-of-words text generator."""

    vocabulary: List[str]
    weights: List[float]

    @classmethod
    def build(
        cls,
        rng: random.Random,
        size: int = 400,
        exponent: float = 1.1,
        prefix: str = "w",
    ) -> "TextModel":
        """A vocabulary of *size* words with Zipf(``exponent``) weights."""
        vocabulary = [f"{prefix}{i}" for i in range(size)]
        weights = [1.0 / (rank + 1) ** exponent for rank in range(size)]
        return cls(vocabulary, weights)

    def words(self, rng: random.Random, count: int) -> List[str]:
        """Sample *count* words (with repetition, Zipf-weighted)."""
        return rng.choices(self.vocabulary, weights=self.weights, k=count)

    def distinct_words(self, rng: random.Random, count: int) -> List[str]:
        """Sample up to *count* distinct words."""
        seen: List[str] = []
        for word in self.words(rng, count * 3):
            if word not in seen:
                seen.append(word)
            if len(seen) == count:
                break
        return seen


def preferential_choice(rng: random.Random, items: Sequence, exponent: float = 1.0):
    """Pick an item with rank-based preferential attachment."""
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(items))]
    return rng.choices(list(items), weights=weights, k=1)[0]
