"""Parsers turning raw XML / JSON content into :class:`Document` trees.

Section 2.3 allows any tree-shaped content ("e.g., XML, JSON, etc.").  Node
URIs follow the paper's convention of suffixing the parent URI with the
child's ordinal: the fragment at position ``(3, 2)`` of document ``d0`` has
URI ``d0.3.2``.
"""

from __future__ import annotations

import json
from typing import Optional
from xml.etree import ElementTree

from ..rdf.terms import URI
from .document import Document
from .node import DocumentNode
from .text import extract_keywords


def _child_uri(parent: DocumentNode) -> URI:
    return URI(f"{parent.uri}.{len(parent.children) + 1}")


def parse_xml(uri: str, xml_text: str) -> Document:
    """Parse an XML string into a :class:`Document`.

    Element text becomes the node's keyword content (tokenized, stop words
    removed, stemmed); attributes are ignored (they carry no free text in
    our corpora); children become child fragments in document order.
    """
    element = ElementTree.fromstring(xml_text)
    root = DocumentNode(URI(uri), element.tag, extract_keywords(element.text or ""))
    _attach_xml_children(root, element)
    return Document(root)


def _attach_xml_children(parent: DocumentNode, element: ElementTree.Element) -> None:
    for child in element:
        node = parent.add_child(
            _child_uri(parent), child.tag, extract_keywords(child.text or "")
        )
        _attach_xml_children(node, child)


def parse_json(uri: str, json_text: str, root_name: str = "doc") -> Document:
    """Parse a JSON string into a :class:`Document`.

    Objects map keys to child fragments named after the key; arrays map
    entries to child fragments named ``item``; scalars become the keyword
    content of their node.
    """
    value = json.loads(json_text)
    root = DocumentNode(URI(uri), root_name)
    _attach_json(root, value)
    return Document(root)


def _attach_json(parent: DocumentNode, value: object) -> None:
    if isinstance(value, dict):
        for key, sub_value in value.items():
            node = parent.add_child(_child_uri(parent), str(key))
            _attach_json(node, sub_value)
    elif isinstance(value, list):
        for sub_value in value:
            node = parent.add_child(_child_uri(parent), "item")
            _attach_json(node, sub_value)
    elif value is not None:
        parent.keywords = parent.keywords + tuple(extract_keywords(str(value)))


def parse_text(
    uri: str,
    text: str,
    name: str = "text",
    sentence_fragments: bool = False,
    stop_words: Optional[frozenset] = None,
) -> Document:
    """Parse plain text into a one-node document.

    With ``sentence_fragments=True`` each sentence becomes a child fragment
    — the construction used for Vodkaster comments in Section 5.1 ("each
    stemmed sentence was made a fragment of the comment").
    """
    kwargs = {} if stop_words is None else {"stop_words": stop_words}
    if not sentence_fragments:
        root = DocumentNode(URI(uri), name, extract_keywords(text, **kwargs))
        return Document(root)
    root = DocumentNode(URI(uri), name)
    sentences = [s.strip() for s in text.replace("!", ".").replace("?", ".").split(".")]
    for sentence in sentences:
        if not sentence:
            continue
        root.add_child(_child_uri(root), "sentence", extract_keywords(sentence, **kwargs))
    return Document(root)
