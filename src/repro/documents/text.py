"""Text processing: tokenization, stop-word removal and stemming.

Section 2 of the paper: *"we consider each text appearing in a document has
been broken into words, stop words have been removed, and the remaining
words have been stemmed"*, and the keyword set ``K`` contains *"the stemmed
version of all literals"* (e.g. stemming replaces "graduation" with
"graduate").

The stemmer implemented here is the classic Porter (1980) algorithm — the
standard IR choice and more than adequate for reproducing keyword-frequency
behaviour.  It is self-contained (no NLTK available offline).
"""

from __future__ import annotations

import re
from typing import Iterable, List

#: A compact English stop-word list (the usual IR closed-class words).
STOP_WORDS = frozenset(
    """a about above after again against all am an and any are as at be because
    been before being below between both but by cannot could did do does doing
    down during each few for from further had has have having he her here hers
    herself him himself his how i if in into is it its itself me more most my
    myself no nor not of off on once only or other ought our ours ourselves out
    over own same she should so some such than that the their theirs them
    themselves then there these they this those through to too under until up
    very was we were what when where which while who whom why with would you
    your yours yourself yourselves rt via amp""".split()
)

_TOKEN_RE = re.compile(r"[A-Za-z][A-Za-z0-9_']*|#\w+|@\w+|\d{4}")

_VOWELS = "aeiou"


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's m: the number of VC sequences in the stem."""
    m = 0
    prev_vowel = False
    for i in range(len(stem)):
        vowel = not _is_consonant(stem, i)
        if prev_vowel and not vowel:
            m += 1
        prev_vowel = vowel
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


def _replace_suffix(word: str, suffix: str, replacement: str, min_measure: int) -> str:
    stem = word[: -len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word


def porter_stem(word: str) -> str:
    """Return the Porter stem of *word* (assumed lowercase alphabetic)."""
    if len(word) <= 2:
        return word

    # Step 1a
    if word.endswith("sses"):
        word = word[:-2]
    elif word.endswith("ies"):
        word = word[:-2]
    elif word.endswith("ss"):
        pass
    elif word.endswith("s"):
        word = word[:-1]

    # Step 1b
    if word.endswith("eed"):
        if _measure(word[:-3]) > 0:
            word = word[:-1]
    else:
        flag = False
        if word.endswith("ed") and _contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and _contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                word += "e"
            elif _ends_double_consonant(word) and word[-1] not in "lsz":
                word = word[:-1]
            elif _measure(word) == 1 and _ends_cvc(word):
                word += "e"

    # Step 1c
    if word.endswith("y") and _contains_vowel(word[:-1]):
        word = word[:-1] + "i"

    # Step 2
    step2 = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
        ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
        ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
        ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
    )
    for suffix, replacement in step2:
        if word.endswith(suffix):
            word = _replace_suffix(word, suffix, replacement, 0)
            break

    # Step 3
    step3 = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )
    for suffix, replacement in step3:
        if word.endswith(suffix):
            word = _replace_suffix(word, suffix, replacement, 0)
            break

    # Step 4
    step4 = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )
    for suffix in step4:
        if word.endswith(suffix):
            stem = word[: -len(suffix)]
            if suffix == "ent" and stem.endswith(("em", "m")):
                # handled by "ement"/"ment" entries; avoid double-stripping
                pass
            if _measure(stem) > 1:
                if suffix == "ion" and not stem.endswith(("s", "t")):
                    continue
                word = stem
            break
    else:
        if word.endswith("ion"):
            stem = word[:-3]
            if _measure(stem) > 1 and stem.endswith(("s", "t")):
                word = stem

    # Step 5a
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            word = stem

    # Step 5b
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        word = word[:-1]

    return word


def tokenize(text: str) -> List[str]:
    """Split *text* into lowercase raw tokens (words, hashtags, mentions)."""
    return [token.lower() for token in _TOKEN_RE.findall(text)]


def extract_keywords(text: str, stop_words: Iterable[str] = STOP_WORDS) -> List[str]:
    """Tokenize, drop stop words and stem — the paper's content pipeline.

    Hashtags and @-mentions keep their marker and are not stemmed (they
    behave like identifiers).  Returns keywords in order of appearance,
    duplicates preserved (callers needing sets should wrap in ``set``).
    """
    stop = set(stop_words)
    keywords: List[str] = []
    for token in tokenize(text):
        if token in stop:
            continue
        if token.startswith(("#", "@")) or token.isdigit():
            keywords.append(token)
        else:
            keywords.append(porter_stem(token))
    return keywords
