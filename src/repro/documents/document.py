"""Documents: fragment sets, positions, vertical neighborhoods.

Implements ``Frag(d)``, ``pos(d, f)`` and the *vertical neighborhood* of
Definition 2.2: two documents are vertical neighbors iff one is a fragment
of the other (ancestor/descendant in the same tree).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from ..rdf.terms import URI
from .node import DocumentNode


class Document:
    """A structured, tree-shaped document (XML / JSON style).

    The document is identified by the URI of its root node; every node of
    the tree identifies the fragment rooted at it.
    """

    def __init__(self, root: DocumentNode):
        if not root.is_root:
            raise ValueError("a Document must be built from a root node")
        self.root = root
        self._nodes: Dict[URI, DocumentNode] = {}
        for node in root.iter_subtree():
            if node.uri in self._nodes:
                raise ValueError(f"duplicate node URI in document: {node.uri}")
            self._nodes[node.uri] = node

    # ------------------------------------------------------------------
    @property
    def uri(self) -> URI:
        """The document URI (the root node's URI)."""
        return self.root.uri

    def __contains__(self, uri: URI) -> bool:
        return uri in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, uri: URI) -> DocumentNode:
        """Return the node with the given URI."""
        return self._nodes[uri]

    def nodes(self) -> Iterator[DocumentNode]:
        """Iterate over all nodes in document order."""
        return self.root.iter_subtree()

    def fragments(self, uri: Optional[URI] = None) -> Set[URI]:
        """``Frag(d)``: URIs of all nodes in the subtree rooted at *uri*.

        With no argument, returns the fragments of the whole document.
        A fragment is a fragment of itself.
        """
        start = self.root if uri is None else self._nodes[uri]
        return {node.uri for node in start.iter_subtree()}

    def pos(self, ancestor: URI, fragment: URI) -> Tuple[int, ...]:
        """``pos(d, f)``: the Dewey path from *ancestor* down to *fragment*.

        Returns the list of child indexes ``(i1, ..., in)``; the empty tuple
        when ``ancestor == fragment``.  Raises ``ValueError`` when
        *fragment* is not inside the subtree of *ancestor*.
        """
        anc = self._nodes[ancestor]
        frag = self._nodes[fragment]
        if frag.dewey[: len(anc.dewey)] != anc.dewey:
            raise ValueError(f"{fragment} is not a fragment of {ancestor}")
        return frag.dewey[len(anc.dewey):]

    def structural_distance(self, ancestor: URI, fragment: URI) -> int:
        """``|pos(d, f)|`` — the length of the Dewey path."""
        return len(self.pos(ancestor, fragment))

    def ancestors_or_self(self, uri: URI) -> Iterator[URI]:
        """URIs ``d`` such that *uri* is in ``Frag(d)`` (self first)."""
        node = self._nodes[uri]
        yield node.uri
        for anc in node.ancestors():
            yield anc.uri

    def vertical_neighbors(self, uri: URI) -> Set[URI]:
        """Definition 2.2: ancestors and descendants of *uri* (not self).

        Siblings and cousins are *not* vertical neighbors — in Figure 3,
        ``URI0.0.0`` and ``URI0.1`` are not neighbors.
        """
        node = self._nodes[uri]
        neighbors = {n.uri for n in node.iter_subtree()}
        neighbors.discard(uri)
        for anc in node.ancestors():
            neighbors.add(anc.uri)
        return neighbors

    def keywords(self) -> Set[str]:
        """All keywords contained anywhere in the document."""
        found: Set[str] = set()
        for node in self.nodes():
            found.update(node.keywords)
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Document({self.uri}, {len(self)} nodes)"


def build_document(
    uri: str,
    name: str = "doc",
    keywords: Sequence[str] = (),
) -> DocumentNode:
    """Convenience constructor for a document root node."""
    return DocumentNode(URI(uri), name, keywords)
