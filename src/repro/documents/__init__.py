"""Structured document substrate: trees, Dewey positions, text pipeline."""

from .document import Document, build_document
from .node import DocumentNode
from .parser import parse_json, parse_text, parse_xml
from .text import STOP_WORDS, extract_keywords, porter_stem, tokenize

__all__ = [
    "Document",
    "DocumentNode",
    "build_document",
    "parse_xml",
    "parse_json",
    "parse_text",
    "tokenize",
    "porter_stem",
    "extract_keywords",
    "STOP_WORDS",
]
