"""Document tree nodes with Dewey-style positions.

Section 2.3: a document is an unranked, ordered tree of nodes; every node
has a URI, a name from ``N`` and a content seen as a set of keywords.  Any
subtree rooted at a node of document ``d`` is a *fragment* of ``d``.  The
function ``pos(d, f)`` returns the Dewey path (list of child indexes)
leading from ``d``'s root to the root of fragment ``f`` — implemented here
by storing ORDPATH-style Dewey identifiers [19, 22] on the nodes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..rdf.terms import URI


class DocumentNode:
    """One node of a structured document tree.

    Attributes
    ----------
    uri:
        The node's URI; fragments are identified by the URI of their root
        node, so this also identifies the fragment rooted here.
    name:
        The node name (XML element name / JSON key).
    keywords:
        The stemmed keyword content of this node's own text.
    dewey:
        The Dewey identifier: ``()`` for the root, ``parent.dewey + (i,)``
        for the *i*-th child (1-based, as in the paper's example where
        ``pos(d0.3.2, d0)`` may be ``(3, 2)``).
    """

    __slots__ = ("uri", "name", "keywords", "dewey", "parent", "children")

    def __init__(
        self,
        uri: URI,
        name: str,
        keywords: Optional[Sequence[str]] = None,
        parent: Optional["DocumentNode"] = None,
    ):
        self.uri = uri
        self.name = name
        self.keywords: Tuple[str, ...] = tuple(keywords or ())
        self.parent = parent
        self.children: List[DocumentNode] = []
        if parent is None:
            self.dewey: Tuple[int, ...] = ()
        else:
            self.dewey = parent.dewey + (len(parent.children) + 1,)
            parent.children.append(self)

    # ------------------------------------------------------------------
    def add_child(
        self, uri: URI, name: str, keywords: Optional[Sequence[str]] = None
    ) -> "DocumentNode":
        """Append and return a new child node."""
        return DocumentNode(uri, name, keywords, parent=self)

    def iter_subtree(self) -> Iterator["DocumentNode"]:
        """Yield this node and all its descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def ancestors(self) -> Iterator["DocumentNode"]:
        """Yield strict ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    @property
    def depth(self) -> int:
        """Distance from the document root (root has depth 0)."""
        return len(self.dewey)

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DocumentNode({self.uri}, name={self.name!r}, dewey={self.dewey})"
