"""Command-line interface: generate, index, search, batch, compare.

Usage::

    python -m repro generate --dataset twitter --out i1.db [--scale 0.5]
    python -m repro index    --db i1.db
    python -m repro search   --db i1.db --seeker tw:u0 --keywords w0 w3 -k 5
    python -m repro batch    --db i1.db --queries 64 --batch-size 32
    python -m repro compare  --db i1.db --queries 10

``generate`` builds one of the three paper-shaped instances and persists
it to SQLite; ``index`` prebuilds the per-keyword ConnectionIndex and
persists it next to the instance (later runs start warm, with zero
query-time fixpoint work); ``search`` answers a single S3k query against
a stored instance; ``batch`` runs a generated workload through the
batched ``search_many`` executor and reports throughput, latency
percentiles, index build cost and result-cache counters (optionally
against the sequential baseline); ``compare`` runs the Figure 8
qualitative comparison between S3k and the TopkS baseline on generated
workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .baselines import TopkSSearcher, uit_from_instance
from .core import S3kScore, S3kSearch
from .datasets import (
    build_twitter_instance,
    build_vodkaster_instance,
    build_yelp_instance,
    compute_stats,
)
from .eval import compare_engines, format_counter_table, format_table
from .queries import WorkloadBuilder
from .storage import SQLiteStore

_GENERATORS = {
    "twitter": lambda config=None: build_twitter_instance(config).instance,
    "vodkaster": lambda config=None: build_vodkaster_instance(config).instance,
    "yelp": lambda config=None: build_yelp_instance(config).instance,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="S3 / S3k — social, structured and semantic search (EDBT 2016)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a dataset into SQLite")
    generate.add_argument("--dataset", choices=sorted(_GENERATORS), required=True)
    generate.add_argument("--out", required=True, help="SQLite file to create")
    generate.add_argument(
        "--scale", type=float, default=1.0, help="size multiplier (default 1.0)"
    )

    index = commands.add_parser(
        "index", help="prebuild + persist the per-keyword ConnectionIndex"
    )
    index.add_argument("--db", required=True, help="SQLite file from `generate`")

    search = commands.add_parser("search", help="answer one top-k query")
    search.add_argument("--db", required=True, help="SQLite file from `generate`")
    search.add_argument("--seeker", required=True)
    search.add_argument("--keywords", nargs="+", required=True)
    search.add_argument("-k", type=int, default=5)
    search.add_argument("--gamma", type=float, default=2.0)
    search.add_argument("--eta", type=float, default=0.9)
    search.add_argument(
        "--no-semantics", action="store_true", help="disable keyword extension"
    )

    batch = commands.add_parser(
        "batch", help="run a workload through the batched executor"
    )
    batch.add_argument("--db", required=True, help="SQLite file from `generate`")
    batch.add_argument("--queries", type=int, default=64)
    batch.add_argument("--batch-size", type=int, default=32)
    batch.add_argument("-k", type=int, default=5)
    batch.add_argument(
        "--frequency", choices=("+", "-"), default="+",
        help="keyword frequency bucket of the generated workload",
    )
    batch.add_argument(
        "--keywords-per-query", type=int, default=1, dest="n_keywords"
    )
    batch.add_argument(
        "--deadline", type=float, default=None,
        help="per-query anytime budget in seconds",
    )
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--compare-sequential", action="store_true",
        help="also time the same workload sequentially and report speedup",
    )
    batch.add_argument(
        "--no-connection-index", action="store_true",
        help="gather candidates with the query-time fixpoint instead of "
        "the precomputed ConnectionIndex",
    )

    compare = commands.add_parser("compare", help="S3k vs TopkS quality measures")
    compare.add_argument("--db", required=True)
    compare.add_argument("--queries", type=int, default=10)
    compare.add_argument("--alpha", type=float, default=0.5)
    compare.add_argument("--seed", type=int, default=0)
    return parser


def _generate(args: argparse.Namespace) -> int:
    from .datasets import TwitterConfig, VodkasterConfig, YelpConfig

    configs = {
        "twitter": TwitterConfig(),
        "vodkaster": VodkasterConfig(),
        "yelp": YelpConfig(),
    }
    config = configs[args.dataset].scaled(args.scale)
    instance = _GENERATORS[args.dataset](config)
    with SQLiteStore(args.out) as store:
        store.save_instance(instance)
    rows = [[name, value] for name, value in compute_stats(instance).rows().items()]
    print(format_table(["statistic", "value"], rows, title=f"{args.dataset} → {args.out}"))
    return 0


def _index(args: argparse.Namespace) -> int:
    import time

    with SQLiteStore(args.db) as store:
        instance = store.load_instance()
        from .core import ConnectionIndex

        started = time.perf_counter()
        index = ConnectionIndex(instance).ensure_all()
        build_seconds = time.perf_counter() - started
        slabs = store.save_connection_index(index)
    stats = index.stats()
    rows = [
        ["components", slabs],
        ["atoms", stats["atoms"]],
        ["evidence entries", stats["evidence_entries"]],
        ["index size", f"{stats['size_bytes'] / 1024:.1f} KiB"],
        ["build time", f"{build_seconds * 1e3:.1f} ms"],
    ]
    print(format_table(["measure", "value"], rows, title=f"ConnectionIndex → {args.db}"))
    return 0


def _search(args: argparse.Namespace) -> int:
    with SQLiteStore(args.db) as store:
        instance = store.load_instance()
        connection_index = store.load_connection_index(instance)
    engine = S3kSearch(
        instance,
        score=S3kScore(gamma=args.gamma, eta=args.eta),
        connection_index=connection_index,
    )
    result = engine.search(
        args.seeker, args.keywords, k=args.k, semantic=not args.no_semantics
    )
    if not result.results:
        print("no results")
    for rank, ranked in enumerate(result.results, start=1):
        print(f"{rank}. {ranked.uri}  score in [{ranked.lower:.6f}, {ranked.upper:.6f}]")
    print(
        f"({result.iterations} steps, {result.components_processed} components, "
        f"terminated by {result.terminated_by}, "
        f"{result.elapsed_seconds * 1000:.1f} ms)"
    )
    return 0


def _batch(args: argparse.Namespace) -> int:
    import time

    from .queries import run_workload, run_workload_batched, s3k_runner

    with SQLiteStore(args.db) as store:
        instance = store.load_instance()
        persisted_slabs = store.connection_index_slab_count()
        connection_index = (
            store.load_connection_index(instance)
            if not args.no_connection_index
            else None
        )
    engine = S3kSearch(
        instance,
        connection_index=connection_index,
        use_connection_index=not args.no_connection_index,
    )
    # Slabs present right after construction were adopted from the store;
    # whatever appears later was built lazily during the run (persisted
    # rows that no longer match the instance are skipped on load).
    adopted_slabs = (
        int(engine.connection_index.stats()["components_built"])
        if engine.connection_index is not None
        else 0
    )
    builder = WorkloadBuilder(instance, seed=args.seed)
    workload = builder.build(args.frequency, args.n_keywords, args.k, args.queries)

    stats = run_workload_batched(
        engine, workload, batch_size=args.batch_size, deadline=args.deadline
    )
    rows = [
        ["queries", stats.n_queries],
        ["batch size", stats.batch_size],
        ["batches", len(stats.batch_times)],
        ["throughput (q/s)", f"{stats.throughput:.1f}"],
        ["deadline misses", stats.deadline_misses],
    ]
    rows.extend(
        [f"latency {name}", f"{value * 1e3:.2f} ms"]
        for name, value in stats.latency_summary().items()
    )
    if engine.connection_index is not None:
        index_stats = engine.connection_index.stats()
        rows.append(["index slabs (persisted)", persisted_slabs])
        rows.append(["index slabs (adopted)", adopted_slabs])
        rows.append(
            [
                "index slabs (built lazily)",
                int(index_stats["components_built"]) - adopted_slabs,
            ]
        )
        rows.append(["index size", f"{index_stats['size_bytes'] / 1024:.1f} KiB"])
        rows.append(
            ["index build time", f"{index_stats['build_seconds'] * 1e3:.1f} ms"]
        )
    if args.compare_sequential:
        # The baseline gets the same per-query budget, so the speedup row
        # credits batching, not the deadline — and a separate engine
        # without the result cache, so it cannot replay the batched run's
        # answers (the shared ConnectionIndex is reused as-is).
        baseline = S3kSearch(
            instance,
            connection_index=engine.connection_index,
            use_connection_index=not args.no_connection_index,
            result_cache_size=0,
        )
        runner = s3k_runner(baseline, time_budget=args.deadline)
        started = time.perf_counter()
        run_workload(runner, workload)
        sequential_seconds = time.perf_counter() - started
        sequential_qps = (
            stats.n_queries / sequential_seconds if sequential_seconds else 0.0
        )
        rows.append(["sequential throughput (q/s)", f"{sequential_qps:.1f}"])
        if sequential_qps:
            rows.append(["speedup", f"{stats.throughput / sequential_qps:.2f}x"])
    print(format_table(["measure", "value"], rows, title=f"batched {workload.name}"))
    if stats.cache_stats:
        print(format_counter_table({"result cache": stats.cache_stats}))
    return 0


def _compare(args: argparse.Namespace) -> int:
    with SQLiteStore(args.db) as store:
        instance = store.load_instance()
    engine = S3kSearch(instance)
    builder = WorkloadBuilder(instance, seed=args.seed)
    per_workload = max(1, args.queries // 2)
    workloads = [
        builder.build("+", 1, 5, per_workload),
        builder.build("-", 1, 5, per_workload),
    ]
    report = compare_engines(engine, workloads, alpha=args.alpha)
    print(
        format_table(
            ["measure", "value"],
            list(report.rows().items()),
            title=f"S3k vs TopkS over {report.queries} queries",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _generate,
        "index": _index,
        "search": _search,
        "batch": _batch,
        "compare": _compare,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
