"""Command-line interface: generate, index, search, batch, serve, compare.

Usage::

    python -m repro generate --dataset twitter --out i1.db [--scale 0.5]
    python -m repro index    --db i1.db
    python -m repro search   --db i1.db --seeker tw:u0 --keywords w0 w3 -k 5
    python -m repro batch    --db i1.db --queries 64 --batch-size 32
    python -m repro serve    --db i1.db < requests.jsonl
    python -m repro serve    --db i1.db --http 0.0.0.0:8080
    python -m repro compare  --db i1.db --queries 10

``generate`` builds one of the three paper-shaped instances and persists
it to SQLite; ``index`` prebuilds the per-keyword ConnectionIndex and
persists it next to the instance (later runs start warm, with zero
query-time fixpoint work); ``search`` answers a single S3k query;
``batch`` runs a generated workload through the batched executor and
reports throughput, latency percentiles and the engine's merged stats;
``serve`` answers JSONL requests from stdin (or a file) through the
async micro-batching path, one JSON answer per line — or, with
``--http HOST:PORT``, runs the HTTP serving tier (``POST /search``,
``GET /stats``, ``GET /healthz``) with bounded admission, per-request
deadlines and graceful SIGTERM drain — ``--shards N`` serves through
the process-parallel sharded executor (N worker processes over shared
index slabs, see :mod:`repro.engine.sharded`); ``compare`` runs
the Figure 8 qualitative comparison between S3k and the TopkS baseline.

Every query-answering subcommand goes through the
:class:`~repro.engine.facade.Engine` facade — a stored index slab that
no longer matches the instance aborts with a clear error unless
``--rebuild-stale-index`` opts into lazy rebuilding.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import S3kScore
from .datasets import (
    build_twitter_instance,
    build_vodkaster_instance,
    build_yelp_instance,
    compute_stats,
)
from .engine import Engine, EngineConfig, StaleIndexError
from .eval import compare_engines, format_engine_stats, format_table
from .queries import WorkloadBuilder
from .storage import SQLiteStore

_GENERATORS = {
    "twitter": lambda config=None: build_twitter_instance(config).instance,
    "vodkaster": lambda config=None: build_vodkaster_instance(config).instance,
    "yelp": lambda config=None: build_yelp_instance(config).instance,
}


def _add_stale_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--rebuild-stale-index",
        action="store_true",
        help="rebuild persisted index slabs that no longer match the "
        "instance instead of aborting",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="S3 / S3k — social, structured and semantic search (EDBT 2016)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a dataset into SQLite")
    generate.add_argument("--dataset", choices=sorted(_GENERATORS), required=True)
    generate.add_argument("--out", required=True, help="SQLite file to create")
    generate.add_argument(
        "--scale", type=float, default=1.0, help="size multiplier (default 1.0)"
    )

    index = commands.add_parser(
        "index", help="prebuild + persist the per-keyword ConnectionIndex"
    )
    index.add_argument("--db", required=True, help="SQLite file from `generate`")

    search = commands.add_parser("search", help="answer one top-k query")
    search.add_argument("--db", required=True, help="SQLite file from `generate`")
    search.add_argument("--seeker", required=True)
    search.add_argument("--keywords", nargs="+", required=True)
    search.add_argument("-k", type=int, default=5)
    search.add_argument("--gamma", type=float, default=2.0)
    search.add_argument("--eta", type=float, default=0.9)
    search.add_argument(
        "--no-semantics", action="store_true", help="disable keyword extension"
    )
    _add_stale_flag(search)

    batch = commands.add_parser(
        "batch", help="run a workload through the batched executor"
    )
    batch.add_argument("--db", required=True, help="SQLite file from `generate`")
    batch.add_argument("--queries", type=int, default=64)
    batch.add_argument("--batch-size", type=int, default=32)
    batch.add_argument("-k", type=int, default=5)
    batch.add_argument(
        "--frequency", choices=("+", "-"), default="+",
        help="keyword frequency bucket of the generated workload",
    )
    batch.add_argument(
        "--keywords-per-query", type=int, default=1, dest="n_keywords"
    )
    batch.add_argument(
        "--deadline", type=float, default=None,
        help="per-query anytime budget in seconds",
    )
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--compare-sequential", action="store_true",
        help="also time the same workload sequentially and report speedup",
    )
    batch.add_argument(
        "--no-connection-index", action="store_true",
        help="gather candidates with the query-time fixpoint instead of "
        "the precomputed ConnectionIndex",
    )
    _add_stale_flag(batch)

    serve = commands.add_parser(
        "serve",
        help="answer JSONL queries from stdin, or HTTP queries with "
        "--http, through the async micro-batching engine",
    )
    serve.add_argument("--db", required=True, help="SQLite file from `generate`")
    serve.add_argument(
        "--input", default=None,
        help="JSONL request file (default: read stdin until EOF)",
    )
    serve.add_argument(
        "--http", default=None, metavar="HOST:PORT",
        help="serve HTTP instead of JSONL (POST /search, GET /stats, "
        "GET /healthz; port 0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="bounded admission: queries in flight before new ones are "
        "rejected with 429 (HTTP mode)",
    )
    serve.add_argument(
        "--request-deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline applied when a request "
        "carries none (HTTP mode; expiry answers 504)",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="worker processes; > 1 serves through the process-parallel "
        "sharded executor (each shard a full engine over shared index "
        "slabs; crashed workers respawn from the warm router image)",
    )
    serve.add_argument(
        "--slab-backend", choices=("mmap", "shm", "heap"), default="mmap",
        help="where the sharded executor places the immutable index "
        "arrays: mmap'd sidecar files next to the db (default), POSIX "
        "shared memory, or plain heap + fork copy-on-write",
    )
    serve.add_argument("-k", type=int, default=5, help="default k per request")
    serve.add_argument(
        "--max-batch-size", type=int, default=32,
        help="micro-batch size bound (size flush)",
    )
    serve.add_argument(
        "--batch-deadline", type=float, default=0.005,
        help="micro-batch latency budget in seconds (deadline flush)",
    )
    serve.add_argument(
        "--stats", action="store_true",
        help="print the engine stats table to stderr after the stream ends",
    )
    _add_stale_flag(serve)

    compare = commands.add_parser("compare", help="S3k vs TopkS quality measures")
    compare.add_argument("--db", required=True)
    compare.add_argument("--queries", type=int, default=10)
    compare.add_argument("--alpha", type=float, default=0.5)
    compare.add_argument("--seed", type=int, default=0)
    return parser


def _engine_from_args(
    args: argparse.Namespace,
    *,
    score: Optional[S3kScore] = None,
    config: Optional[EngineConfig] = None,
) -> Engine:
    """Build the Engine facade for a query-answering subcommand."""
    stale = "rebuild" if getattr(args, "rebuild_stale_index", False) else "error"
    return Engine.from_store(args.db, score=score, config=config, stale_slabs=stale)


def _generate(args: argparse.Namespace) -> int:
    from .datasets import TwitterConfig, VodkasterConfig, YelpConfig

    configs = {
        "twitter": TwitterConfig(),
        "vodkaster": VodkasterConfig(),
        "yelp": YelpConfig(),
    }
    config = configs[args.dataset].scaled(args.scale)
    instance = _GENERATORS[args.dataset](config)
    with SQLiteStore(args.out) as store:
        store.save_instance(instance)
    rows = [[name, value] for name, value in compute_stats(instance).rows().items()]
    print(format_table(["statistic", "value"], rows, title=f"{args.dataset} → {args.out}"))
    return 0


def _index(args: argparse.Namespace) -> int:
    import time

    with SQLiteStore(args.db) as store:
        instance = store.load_instance()
        from .core import ConnectionIndex

        started = time.perf_counter()
        index = ConnectionIndex(instance).ensure_all()
        build_seconds = time.perf_counter() - started
        slabs = store.save_connection_index(index)
    stats = index.stats()
    rows = [
        ["components", slabs],
        ["atoms", stats["atoms"]],
        ["evidence entries", stats["evidence_entries"]],
        ["index size", f"{stats['size_bytes'] / 1024:.1f} KiB"],
        ["build time", f"{build_seconds * 1e3:.1f} ms"],
    ]
    print(format_table(["measure", "value"], rows, title=f"ConnectionIndex → {args.db}"))
    return 0


def _search(args: argparse.Namespace) -> int:
    engine = _engine_from_args(
        args, score=S3kScore(gamma=args.gamma, eta=args.eta)
    )
    response = engine.search(
        args.seeker, args.keywords, k=args.k, semantic=not args.no_semantics
    )
    result = response.result
    if not result.results:
        print("no results")
    for rank, ranked in enumerate(result.results, start=1):
        print(f"{rank}. {ranked.uri}  score in [{ranked.lower:.6f}, {ranked.upper:.6f}]")
    print(
        f"({result.iterations} steps, {result.components_processed} components, "
        f"terminated by {result.terminated_by}, "
        f"{result.elapsed_seconds * 1000:.1f} ms)"
    )
    return 0


def _batch(args: argparse.Namespace) -> int:
    import time

    from .queries import engine_runner, run_workload, run_workload_batched

    config = EngineConfig(
        default_k=args.k,
        use_connection_index=not args.no_connection_index,
    )
    engine = _engine_from_args(args, config=config)
    builder = WorkloadBuilder(engine.instance, seed=args.seed)
    workload = builder.build(args.frequency, args.n_keywords, args.k, args.queries)

    stats = run_workload_batched(
        engine, workload, batch_size=args.batch_size, deadline=args.deadline
    )
    rows = [
        ["queries", stats.n_queries],
        ["batch size", stats.batch_size],
        ["batches", len(stats.batch_times)],
        ["throughput (q/s)", f"{stats.throughput:.1f}"],
        ["deadline misses", stats.deadline_misses],
    ]
    rows.extend(
        [f"latency {name}", f"{value * 1e3:.2f} ms"]
        for name, value in stats.latency_summary().items()
    )
    if args.compare_sequential:
        # The baseline gets the same per-query budget, so the speedup row
        # credits batching, not the deadline — and a separate engine
        # without the result cache, so it cannot replay the batched run's
        # answers (the shared ConnectionIndex is reused as-is).
        baseline = Engine(
            engine.instance,
            connection_index=engine.kernel.connection_index,
            config=EngineConfig(
                default_k=args.k,
                use_connection_index=not args.no_connection_index,
                result_cache_size=0,
            ),
        )
        runner = engine_runner(baseline, time_budget=args.deadline)
        started = time.perf_counter()
        run_workload(runner, workload)
        sequential_seconds = time.perf_counter() - started
        sequential_qps = (
            stats.n_queries / sequential_seconds if sequential_seconds else 0.0
        )
        rows.append(["sequential throughput (q/s)", f"{sequential_qps:.1f}"])
        if sequential_qps:
            rows.append(["speedup", f"{stats.throughput / sequential_qps:.2f}x"])
    print(format_table(["measure", "value"], rows, title=f"batched {workload.name}"))
    # One stats surface: index / cache / batch counters all come from the
    # facade instead of poking at S3kSearch internals.
    print(format_engine_stats(stats.engine_stats or engine.stats()))
    return 0


def _parse_hostport(value: str) -> tuple:
    """``HOST:PORT`` for ``serve --http`` (host required: binding all
    interfaces must be an explicit ``0.0.0.0:...``, never a default)."""
    host, separator, port = value.rpartition(":")
    if not separator or not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"--http expects HOST:PORT (e.g. 127.0.0.1:8080), got {value!r}"
        )
    return host, int(port)


def _serve_http(args: argparse.Namespace) -> int:
    from .engine.http import HttpConfig, HttpServer, run_http_server

    host, port = _parse_hostport(args.http)
    engine_config = EngineConfig(
        default_k=args.k,
        max_batch_size=args.max_batch_size,
        batch_deadline=args.batch_deadline,
    )
    stale = "rebuild" if args.rebuild_stale_index else "error"
    # Stale slabs degrade instead of aborting: the server boots, answers
    # 503 with the remedy in the body, and the load balancer routes away
    # — an orchestrator restart loop cannot fix a stale slab anyway.
    server = HttpServer.from_store(
        args.db,
        engine_config=engine_config,
        config=HttpConfig(
            host=host,
            port=port,
            max_inflight=args.max_inflight,
            default_deadline=args.request_deadline,
        ),
        stale_slabs=stale,
        shards=args.shards,
        slab_backend=args.slab_backend,
    )

    def ready(started: HttpServer) -> None:
        state = "DEGRADED (stale index slabs)" if started.failure else "ready"
        shards = f", {args.shards} shards" if args.shards > 1 else ""
        print(
            f"serving http://{host}:{started.port} [{state}{shards}] — "
            f"SIGTERM drains gracefully",
            file=sys.stderr,
        )

    counters = run_http_server(server, ready=ready)
    print(
        f"served {counters['queries_answered']} queries "
        f"({counters['rejected_429']} rejected, "
        f"{counters['deadline_504']} deadline-expired)",
        file=sys.stderr,
    )
    if args.stats and server.engine is not None:
        print(format_engine_stats(server.engine.stats()), file=sys.stderr)
    return 1 if server.failure is not None else 0


def _serve(args: argparse.Namespace) -> int:
    from .engine.serve import run_serve

    if args.http is not None:
        return _serve_http(args)

    config = EngineConfig(
        default_k=args.k,
        max_batch_size=args.max_batch_size,
        batch_deadline=args.batch_deadline,
    )
    if args.shards > 1:
        from .engine.sharded import ShardedEngine

        stale = "rebuild" if args.rebuild_stale_index else "error"
        engine = ShardedEngine.from_store(
            args.db,
            shards=args.shards,
            config=config,
            stale_slabs=stale,
            slab_backend=args.slab_backend,
        )
    else:
        engine = _engine_from_args(args, config=config)

    def write(text: str) -> None:
        # Flush per answer: a live client must see responses immediately,
        # not when the stdout buffer happens to fill.
        sys.stdout.write(text)
        sys.stdout.flush()

    # Lines are pulled lazily (stdin stays a live stream: answers go out
    # while the server waits for the next request).
    if args.input is not None:
        with open(args.input, "r", encoding="utf-8") as handle:
            counters = run_serve(engine, handle, write, default_k=args.k)
    else:
        counters = run_serve(engine, sys.stdin, write, default_k=args.k)
    print(
        f"served {counters['answered']}/{counters['requests']} requests "
        f"({counters['errors']} errors)",
        file=sys.stderr,
    )
    if args.stats:
        print(format_engine_stats(engine.stats()), file=sys.stderr)
    return 0 if counters["errors"] == 0 else 1


def _compare(args: argparse.Namespace) -> int:
    with SQLiteStore(args.db) as store:
        instance = store.load_instance()
    engine = Engine(instance)
    builder = WorkloadBuilder(instance, seed=args.seed)
    per_workload = max(1, args.queries // 2)
    workloads = [
        builder.build("+", 1, 5, per_workload),
        builder.build("-", 1, 5, per_workload),
    ]
    report = compare_engines(engine.kernel, workloads, alpha=args.alpha)
    print(
        format_table(
            ["measure", "value"],
            list(report.rows().items()),
            title=f"S3k vs TopkS over {report.queries} queries",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _generate,
        "index": _index,
        "search": _search,
        "batch": _batch,
        "serve": _serve,
        "compare": _compare,
    }
    try:
        return handlers[args.command](args)
    except StaleIndexError as exc:
        # A documented operator-facing condition, not a crash: print the
        # remedy (re-index or --rebuild-stale-index), no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
