"""Social substrate: users, weighted relationships and tags."""

from .network import SocialNetwork
from .tags import Tag

__all__ = ["SocialNetwork", "Tag"]
