"""Tags: user annotations over documents, fragments or other tags.

Section 2.4: a tag is a resource of class ``S3:relatedTo`` (or a subclass)
with an ``S3:hasSubject`` (a document fragment or *another tag* — enabling
higher-level annotations, requirement R4), an ``S3:hasAuthor``, and
optionally an ``S3:hasKeyword``.  A tag without a keyword is an
*endorsement* (like / retweet / +1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..rdf.terms import URI


@dataclass(frozen=True)
class Tag:
    """One tag (annotation) resource.

    Attributes
    ----------
    uri:
        The tag resource URI.
    subject:
        The tagged fragment/document URI, or another tag's URI.
    author:
        The user who produced the tag.
    keyword:
        The tag keyword; ``None`` for endorsement tags.
    tag_type:
        A subclass of ``S3:relatedTo`` describing the kind of tag
        (star rating, NLP annotation...); ``None`` means plain
        ``S3:relatedTo``.
    """

    uri: URI
    subject: URI
    author: URI
    keyword: Optional[str] = None
    tag_type: Optional[URI] = None

    @property
    def is_endorsement(self) -> bool:
        """True for keyword-less tags (like / retweet / +1)."""
        return self.keyword is None
