"""The social network layer: users and weighted social relationships.

Section 2.2: users are URIs of class ``S3:user``; any concrete relationship
(friend, follower, co-worker...) is a property specializing ``S3:social``,
carried by a weighted triple ``u1 S3:social u2 w`` — the higher the weight,
the closer the users.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Optional, Set, Tuple

from ..rdf.terms import URI


class SocialNetwork:
    """A directed, weighted multigraph of user relationships.

    This is a standalone convenience structure; inside an
    :class:`~repro.core.instance.S3Instance` the same information lives as
    RDF triples, and this class is used to stage edges before assembly.
    """

    def __init__(self) -> None:
        self._users: Set[URI] = set()
        self._edges: Dict[URI, Dict[URI, float]] = defaultdict(dict)
        self._relations: Dict[Tuple[URI, URI], URI] = {}

    def add_user(self, user: URI) -> None:
        """Register *user* as a member of Ω."""
        self._users.add(user)

    def add_edge(
        self,
        source: URI,
        target: URI,
        weight: float = 1.0,
        relation: Optional[URI] = None,
    ) -> None:
        """Add a social edge; *relation* optionally names the sub-property.

        Re-adding an edge keeps the maximum weight (consistent with
        :meth:`repro.rdf.graph.RDFGraph.add`).
        """
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"social weight must be in [0, 1], got {weight}")
        self._users.add(source)
        self._users.add(target)
        current = self._edges[source].get(target)
        if current is None or weight > current:
            self._edges[source][target] = weight
        if relation is not None:
            self._relations[(source, target)] = relation

    @property
    def users(self) -> Set[URI]:
        """The user set Ω."""
        return set(self._users)

    def __len__(self) -> int:
        return len(self._users)

    def edge_count(self) -> int:
        """Total number of directed social edges."""
        return sum(len(targets) for targets in self._edges.values())

    def weight(self, source: URI, target: URI) -> Optional[float]:
        """The weight of the edge, or ``None`` when absent."""
        return self._edges.get(source, {}).get(target)

    def relation(self, source: URI, target: URI) -> Optional[URI]:
        """The concrete relation property of the edge, if one was given."""
        return self._relations.get((source, target))

    def neighbors(self, user: URI) -> Dict[URI, float]:
        """Outgoing edges of *user* as a target → weight mapping."""
        return dict(self._edges.get(user, {}))

    def edges(self) -> Iterator[Tuple[URI, URI, float]]:
        """Iterate over ``(source, target, weight)`` triples."""
        for source, targets in self._edges.items():
            for target, weight in targets.items():
                yield source, target, weight
