"""SQLite-backed persistence for S3 instances.

The paper stored *"some data tables in PostgreSQL 9.3, while others were
built in memory"* (Section 5.1): the RDF graph and documents live in the
SQL store, the proximity matrices in RAM.  PostgreSQL is not available
offline, so the stdlib ``sqlite3`` engine plays its role — same split,
same query patterns (indexed lookups by subject / predicate / object).

The store persists the full instance — triples with weights, document
trees with Dewey structure, tags — and can rebuild an equivalent
:class:`~repro.core.instance.S3Instance`.  It also persists the
precomputed :class:`~repro.core.connection_index.ConnectionIndex` (one
header + npz-blob row per component slab), so a warm index survives
process restarts: ``python -m repro index`` prebuilds it once and every
later ``search`` / ``batch`` run starts with zero fixpoint work.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.instance import S3Instance
from ..documents.document import Document
from ..documents.node import DocumentNode
from ..rdf.terms import Literal, URI
from ..social.tags import Tag

_SCHEMA = """
CREATE TABLE IF NOT EXISTS triples (
    subject   TEXT NOT NULL,
    predicate TEXT NOT NULL,
    object    TEXT NOT NULL,
    object_is_uri INTEGER NOT NULL,
    weight    REAL NOT NULL,
    PRIMARY KEY (subject, predicate, object, object_is_uri)
);
CREATE INDEX IF NOT EXISTS triples_by_predicate ON triples (predicate);
CREATE INDEX IF NOT EXISTS triples_by_object ON triples (object);

CREATE TABLE IF NOT EXISTS users (uri TEXT PRIMARY KEY);

CREATE TABLE IF NOT EXISTS document_nodes (
    uri      TEXT PRIMARY KEY,
    root     TEXT NOT NULL,
    parent   TEXT,
    name     TEXT NOT NULL,
    ordinal  INTEGER NOT NULL,
    keywords TEXT NOT NULL  -- JSON array of [kind, value] pairs
);
CREATE INDEX IF NOT EXISTS nodes_by_root ON document_nodes (root);

CREATE TABLE IF NOT EXISTS tags (
    uri      TEXT PRIMARY KEY,
    subject  TEXT NOT NULL,
    author   TEXT NOT NULL,
    keyword  TEXT,
    keyword_is_uri INTEGER,
    tag_type TEXT
);

CREATE TABLE IF NOT EXISTS comment_edges (
    comment TEXT NOT NULL,
    target  TEXT NOT NULL,
    PRIMARY KEY (comment, target)
);

CREATE TABLE IF NOT EXISTS posters (
    document TEXT PRIMARY KEY,
    user     TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS connection_index (
    ident  INTEGER PRIMARY KEY,  -- component identifier
    header TEXT NOT NULL,        -- JSON: atoms, nodes, pair sources
    arrays BLOB NOT NULL         -- compressed npz of the CSR slices
);
"""


def _encode_keyword(keyword: object) -> List[object]:
    kind = "uri" if isinstance(keyword, URI) else "lit"
    return [kind, str(keyword)]


def _decode_keyword(pair: List[object]) -> object:
    kind, value = pair
    return URI(value) if kind == "uri" else Literal(value)


class SQLiteStore:
    """Persist / load S3 instances in a SQLite database."""

    def __init__(self, path: Union[str, Path] = ":memory:"):
        self._connection = sqlite3.connect(str(path))
        self._connection.executescript(_SCHEMA)

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def save_instance(self, instance: S3Instance) -> None:
        """Write the full instance (idempotent upsert)."""
        cursor = self._connection.cursor()
        cursor.executemany(
            "INSERT OR REPLACE INTO triples VALUES (?, ?, ?, ?, ?)",
            (
                (
                    str(wt.subject),
                    str(wt.predicate),
                    str(wt.object),
                    1 if isinstance(wt.object, URI) else 0,
                    wt.weight,
                )
                for wt in instance.graph
            ),
        )
        cursor.executemany(
            "INSERT OR REPLACE INTO users VALUES (?)",
            ((str(u),) for u in instance.users),
        )
        node_rows = []
        for root, document in instance.documents.items():
            for node in document.nodes():
                ordinal = node.dewey[-1] if node.dewey else 0
                node_rows.append(
                    (
                        str(node.uri),
                        str(root),
                        str(node.parent.uri) if node.parent else None,
                        node.name,
                        ordinal,
                        json.dumps([_encode_keyword(k) for k in node.keywords]),
                    )
                )
        cursor.executemany(
            "INSERT OR REPLACE INTO document_nodes VALUES (?, ?, ?, ?, ?, ?)",
            node_rows,
        )
        cursor.executemany(
            "INSERT OR REPLACE INTO tags VALUES (?, ?, ?, ?, ?, ?)",
            (
                (
                    str(t.uri),
                    str(t.subject),
                    str(t.author),
                    str(t.keyword) if t.keyword is not None else None,
                    (1 if isinstance(t.keyword, URI) else 0)
                    if t.keyword is not None
                    else None,
                    str(t.tag_type) if t.tag_type else None,
                )
                for t in instance.tags.values()
            ),
        )
        comment_rows = [
            (str(comment), str(target))
            for target, comments in instance._comments_of.items()
            for comment in comments
        ]
        cursor.executemany(
            "INSERT OR REPLACE INTO comment_edges VALUES (?, ?)", comment_rows
        )
        from ..rdf.namespaces import S3_POSTED_BY

        poster_rows = [
            (str(wt.subject), str(wt.object))
            for wt in instance.graph.triples(predicate=S3_POSTED_BY)
            if isinstance(wt.object, URI)
        ]
        cursor.executemany(
            "INSERT OR REPLACE INTO posters VALUES (?, ?)", poster_rows
        )
        self._connection.commit()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_instance(self) -> S3Instance:
        """Rebuild an equivalent (already saturated) instance."""
        instance = S3Instance()
        cursor = self._connection.cursor()

        for (uri,) in cursor.execute("SELECT uri FROM users"):
            instance.add_user(uri)

        # Documents: rebuild trees from parent pointers, ordered by ordinal.
        children: Dict[Optional[str], List[Tuple[int, str]]] = {}
        rows: Dict[str, Tuple[str, Optional[str], str, int, str]] = {}
        for uri, root, parent, name, ordinal, keywords in cursor.execute(
            "SELECT uri, root, parent, name, ordinal, keywords FROM document_nodes"
        ):
            rows[uri] = (root, parent, name, ordinal, keywords)
            children.setdefault(parent, []).append((ordinal, uri))

        roots = [uri for uri, (_, parent, *_rest) in rows.items() if parent is None]
        for root_uri in sorted(roots):
            _, _, name, _, keywords = rows[root_uri]
            root_node = DocumentNode(
                URI(root_uri),
                name,
                [_decode_keyword(pair) for pair in json.loads(keywords)],
            )
            stack = [(root_uri, root_node)]
            while stack:
                parent_uri, parent_node = stack.pop()
                for _, child_uri in sorted(children.get(parent_uri, [])):
                    _, _, child_name, _, child_keywords = rows[child_uri]
                    child_node = parent_node.add_child(
                        URI(child_uri),
                        child_name,
                        [_decode_keyword(p) for p in json.loads(child_keywords)],
                    )
                    stack.append((child_uri, child_node))
            instance.add_document(Document(root_node))

        for document, user in cursor.execute("SELECT document, user FROM posters"):
            instance.set_poster(document, user)
        for comment, target in cursor.execute(
            "SELECT comment, target FROM comment_edges"
        ):
            instance.add_comment_edge(comment, target)
        for uri, subject, author, keyword, keyword_is_uri, tag_type in cursor.execute(
            "SELECT uri, subject, author, keyword, keyword_is_uri, tag_type FROM tags"
        ):
            decoded = None
            if keyword is not None:
                decoded = URI(keyword) if keyword_is_uri else Literal(keyword)
            instance.add_tag(
                Tag(
                    URI(uri),
                    URI(subject),
                    URI(author),
                    keyword=decoded,
                    tag_type=URI(tag_type) if tag_type else None,
                )
            )

        # Raw triples last: anything not regenerated above (KB, social
        # edges, saturation output) is restored verbatim with its weight.
        for subject, predicate, obj, is_uri, weight in cursor.execute(
            "SELECT subject, predicate, object, object_is_uri, weight FROM triples"
        ):
            term = URI(obj) if is_uri else Literal(obj)
            instance.graph.add(URI(subject), URI(predicate), term, weight)

        instance.saturate()
        return instance

    # ------------------------------------------------------------------
    # ConnectionIndex persistence
    # ------------------------------------------------------------------
    def save_connection_index(self, index) -> int:
        """Persist every built slab of a
        :class:`~repro.core.connection_index.ConnectionIndex`; returns the
        number of slabs written.  Replaces any previously stored index."""
        cursor = self._connection.cursor()
        cursor.execute("DELETE FROM connection_index")
        count = 0
        for ident, header, blob in index.payloads():
            cursor.execute(
                "INSERT INTO connection_index VALUES (?, ?, ?)",
                (ident, header, sqlite3.Binary(blob)),
            )
            count += 1
        self._connection.commit()
        return count

    def load_connection_index(
        self, instance, component_index=None, strict=False, slab_store=None
    ):
        """A :class:`~repro.core.connection_index.ConnectionIndex` over
        *instance* warmed with every stored slab that still matches the
        instance.  Stale slabs are skipped and rebuild lazily — unless
        *strict*, in which case they raise
        :class:`~repro.core.connection_index.StaleIndexError` (the
        ``Engine.from_store`` default: a silently-cold warm start hides
        an operational problem).

        With *slab_store* (a :class:`~repro.storage.slab_store.SlabStore`,
        e.g. the :meth:`export_slab_sidecar` output opened as a
        ``MmapSlabStore``) the arrays are adopted from the store instead
        of the compressed SQLite blobs — zero-copy for the shm / mmap
        backends, same fingerprint guards.  Slabs persisted in SQLite
        but absent from the store still load from their blobs, so a
        partial sidecar never silently cold-starts a component.
        """
        from ..core.connection_index import ConnectionIndex

        index = ConnectionIndex(instance, component_index)
        placed = set()
        if slab_store is not None:
            index.adopt_slab_store(slab_store, strict=strict)
            placed = {
                int(name.partition("_")[2])
                for name in slab_store.names()
                if name.startswith("component_")
            }
        for ident, header, blob in self._connection.execute(
            "SELECT ident, header, arrays FROM connection_index ORDER BY ident"
        ):
            if int(ident) in placed:
                continue
            index.adopt_payload(header, bytes(blob), strict=strict)
        return index

    def export_slab_sidecar(self, directory) -> int:
        """Re-encode every persisted slab as an **uncompressed** npz
        sidecar under *directory* (a
        :class:`~repro.storage.slab_store.MmapSlabStore`); returns the
        number exported.

        The SQLite blobs are ``savez_compressed`` — a DEFLATE stream has
        no mappable array bytes — so multiprocess serving pays this
        one-time decompress-and-rewrite, after which every worker maps
        the same physical pages.  The slab headers (with their content
        fingerprints) ride along as store metadata, so adoption from the
        sidecar is guarded exactly like adoption from the blobs.
        """
        import io

        import numpy as np

        from .slab_store import MmapSlabStore

        store = MmapSlabStore(directory)
        existing = set(store.names())
        count = 0
        for ident, header, blob in self._connection.execute(
            "SELECT ident, header, arrays FROM connection_index ORDER BY ident"
        ):
            name = f"component_{int(ident)}"
            if name in existing:
                if store.meta(name) == header:
                    count += 1
                    continue  # same header (same fingerprint): already fresh
                # Stale sidecar entry: rewrite the whole sidecar once
                # rather than tombstone single files.
                for path in store.directory.glob("*.npz"):
                    path.unlink()
                (store.directory / MmapSlabStore.MANIFEST).unlink(missing_ok=True)
                return self.export_slab_sidecar(directory)
            with np.load(io.BytesIO(bytes(blob))) as arrays:
                store.put(name, {key: arrays[key] for key in arrays.files}, meta=header)
            count += 1
        return count

    def connection_index_slab_count(self) -> int:
        """Number of persisted index slabs (0 when never saved)."""
        cursor = self._connection.execute("SELECT COUNT(*) FROM connection_index")
        return int(cursor.fetchone()[0])

    # ------------------------------------------------------------------
    def triple_count(self) -> int:
        cursor = self._connection.execute("SELECT COUNT(*) FROM triples")
        return int(cursor.fetchone()[0])
