"""Persistence: the SQLite store standing in for the paper's PostgreSQL."""

from .sqlite_store import SQLiteStore

__all__ = ["SQLiteStore"]
