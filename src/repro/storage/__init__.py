"""Persistence: the SQLite store standing in for the paper's PostgreSQL,
plus the :class:`SlabStore` placement protocol for the immutable index
arrays (heap / shared-memory / mmap backends)."""

from .slab_store import (
    HeapSlabStore,
    MmapSlabStore,
    ShmSlabStore,
    SlabStore,
    open_slab_store,
)
from .sqlite_store import SQLiteStore

__all__ = [
    "SQLiteStore",
    "SlabStore",
    "HeapSlabStore",
    "MmapSlabStore",
    "ShmSlabStore",
    "open_slab_store",
]
