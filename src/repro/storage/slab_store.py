"""Swappable placement for immutable index arrays (the SlabStore).

The ConnectionIndex CSR slabs and the proximity transition matrix are
immutable once built, which makes them the natural unit of *placement*:
they can live on the Python heap (single process), in POSIX shared
memory (``multiprocessing.shared_memory``), or inside mmap'd files —
and the kernel must never know the difference.  :class:`SlabStore` is
the protocol; :class:`HeapSlabStore`, :class:`ShmSlabStore` and
:class:`MmapSlabStore` are the backends.  ``repro.engine.sharded``
places slabs through this protocol so N worker processes share one
physical copy of every index array instead of deserializing N times.

**Why uncompressed npz.**  ``np.savez_compressed`` blobs (the SQLite
persistence format) cannot be memory-mapped: a DEFLATE stream has no
addressable array bytes.  ``np.savez`` without compression stores each
member ``ZIP_STORED`` — the raw ``.npy`` bytes sit verbatim at a fixed
offset inside the archive, so :func:`npz_member_layout` can locate each
member's data and hand it to ``np.memmap`` (files) or ``np.ndarray``
over a shared-memory buffer, zero-copy.  ``np.load(..., mmap_mode=...)``
does **not** do this for ``.npz`` archives (it maps nothing and reads
members eagerly), which is why the offset parsing lives here.

Every ``put`` may carry a *meta* string (the slab's JSON header with
its content fingerprint); ``meta`` is readable without touching the
arrays, so adoption guards run before any mapping is trusted.
"""

from __future__ import annotations

import io
import json
import os
import itertools
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

__all__ = [
    "SlabStore",
    "HeapSlabStore",
    "MmapSlabStore",
    "ShmSlabStore",
    "npz_member_layout",
    "open_slab_store",
]

#: Magic prefixing a shared-memory slab segment (guards against
#: attaching to a foreign segment that happens to share a name).
_SHM_MAGIC = b"S3KS"


# ----------------------------------------------------------------------
# Uncompressed-npz member layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _MemberLayout:
    """Where one array's raw bytes live inside an uncompressed npz."""

    name: str
    dtype: np.dtype
    shape: Tuple[int, ...]
    fortran: bool
    offset: int  # absolute offset of the array data (past the npy header)


def _read_npy_header(fp) -> Tuple[Tuple[int, ...], bool, np.dtype]:
    version = np.lib.format.read_magic(fp)
    if version[0] == 1:
        return np.lib.format.read_array_header_1_0(fp)
    if version[0] in (2, 3):
        return np.lib.format.read_array_header_2_0(fp)
    raise ValueError(f"unsupported .npy format version {version}")


def npz_member_layout(fp) -> Dict[str, _MemberLayout]:
    """Member name → absolute (dtype, shape, offset) of an uncompressed npz.

    *fp* is any seekable binary file-like over the whole archive.  A
    compressed member is a hard error: its bytes are a DEFLATE stream,
    not an array, and mapping it would serve garbage.
    """
    layout: Dict[str, _MemberLayout] = {}
    with zipfile.ZipFile(fp) as archive:
        infos = archive.infolist()
    for info in infos:
        if info.compress_type != zipfile.ZIP_STORED:
            raise ValueError(
                f"npz member {info.filename!r} is compressed and cannot be "
                "memory-mapped; write the archive with np.savez (uncompressed)"
            )
        fp.seek(info.header_offset)
        local = fp.read(30)
        if local[:4] != b"PK\x03\x04":
            raise ValueError(f"corrupt zip local header for {info.filename!r}")
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        # The local extra field may differ from the central directory's,
        # so the data offset must come from the local header itself.
        fp.seek(info.header_offset + 30 + name_len + extra_len)
        shape, fortran, dtype = _read_npy_header(fp)
        name = info.filename[:-4] if info.filename.endswith(".npy") else info.filename
        layout[name] = _MemberLayout(name, dtype, shape, fortran, fp.tell())
    return layout


class _MemoryFile:
    """Seekable read-only file over a memoryview (no copy, for zipfile)."""

    def __init__(self, view: memoryview):
        self._view = view
        self._pos = 0

    def read(self, size: int = -1) -> bytes:
        end = len(self._view) if size is None or size < 0 else self._pos + size
        data = bytes(self._view[self._pos : end])
        self._pos += len(data)
        return data

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        if whence == os.SEEK_SET:
            self._pos = offset
        elif whence == os.SEEK_CUR:
            self._pos += offset
        else:
            self._pos = len(self._view) + offset
        return self._pos

    def tell(self) -> int:
        return self._pos

    def seekable(self) -> bool:
        return True


def _empty_like(member: _MemberLayout) -> np.ndarray:
    order = "F" if member.fortran else "C"
    return _readonly_view(np.zeros(member.shape, dtype=member.dtype, order=order))


def _readonly_view(array: np.ndarray) -> np.ndarray:
    """A non-writeable view of *array* (zero-copy).

    Every array a :class:`SlabStore` serves is shared — across forked
    workers for the shm / mmap backends, across all in-process readers
    for the heap backend — so ``get`` hands out views that *cannot* be
    written: an accidental in-place mutation raises instead of silently
    corrupting every shard's answers.  The stored original is left
    untouched (the flag is flipped on a fresh view).
    """
    if array.flags.writeable:
        array = array.view()
        array.flags.writeable = False
    return array


# ----------------------------------------------------------------------
# The protocol
# ----------------------------------------------------------------------
class SlabStore:
    """Named immutable array bundles, placed wherever the backend says.

    ``put(name, arrays, meta)`` stores a bundle; ``get(name)`` returns
    ``{array_name: ndarray}`` — zero-copy views for the shm / mmap
    backends, so N readers share one physical copy; ``meta(name)``
    returns the string stored alongside (fingerprint headers) without
    touching the arrays.  Stores are write-once per name: slabs are
    immutable, a second ``put`` of the same name is a bug.
    """

    backend = "abstract"

    def put(
        self, name: str, arrays: Mapping[str, np.ndarray], meta: Optional[str] = None
    ) -> None:
        raise NotImplementedError

    def get(self, name: str) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def meta(self, name: str) -> Optional[str]:
        raise NotImplementedError

    def names(self) -> List[str]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (views from :meth:`get` die with it)."""

    def __contains__(self, name: str) -> bool:
        return name in self.names()

    def stats(self) -> Dict[str, object]:
        return {"backend": self.backend, "slabs": len(self.names())}


# ----------------------------------------------------------------------
# In-heap backend (single process; the reference implementation)
# ----------------------------------------------------------------------
class HeapSlabStore(SlabStore):
    """Plain-dict backend: arrays stay on the owning process's heap.

    ``get`` returns the stored arrays themselves (they are immutable by
    contract).  Under ``fork`` child processes still share the physical
    pages copy-on-write, so this is also the no-setup sharing backend
    for fork-based workers.
    """

    backend = "heap"

    def __init__(self) -> None:
        self._arrays: Dict[str, Dict[str, np.ndarray]] = {}
        self._meta: Dict[str, Optional[str]] = {}

    def put(self, name, arrays, meta=None):
        if name in self._arrays:
            raise ValueError(f"slab {name!r} already stored (slabs are immutable)")
        self._arrays[name] = dict(arrays)
        self._meta[name] = meta

    def get(self, name):
        return {
            key: _readonly_view(array)
            for key, array in self._arrays[name].items()
        }

    def meta(self, name):
        return self._meta[name]

    def names(self):
        return sorted(self._arrays)

    def close(self):
        self._arrays.clear()
        self._meta.clear()


# ----------------------------------------------------------------------
# Mmap'd-file backend (uncompressed npz sidecars + manifest)
# ----------------------------------------------------------------------
class MmapSlabStore(SlabStore):
    """One uncompressed ``<name>.npz`` per slab plus a ``manifest.json``.

    ``get`` maps every member read-only with ``np.memmap`` at its
    computed in-archive offset: the page cache holds one physical copy
    no matter how many processes map it, and nothing is deserialized.
    The manifest records each slab's meta string, so fingerprint guards
    run from one small JSON read.
    """

    backend = "mmap"
    MANIFEST = "manifest.json"

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._manifest: Dict[str, Dict[str, object]] = {}
        manifest_path = self.directory / self.MANIFEST
        if manifest_path.exists():
            self._manifest = json.loads(manifest_path.read_text())

    def _path(self, name: str) -> Path:
        if "/" in name or "\\" in name or name.startswith("."):
            raise ValueError(f"invalid slab name {name!r}")
        return self.directory / f"{name}.npz"

    def _write_manifest(self) -> None:
        path = self.directory / self.MANIFEST
        path.write_text(json.dumps(self._manifest, indent=1, sort_keys=True) + "\n")

    def put(self, name, arrays, meta=None):
        if name in self._manifest:
            raise ValueError(f"slab {name!r} already stored (slabs are immutable)")
        path = self._path(name)
        with open(path, "wb") as handle:
            np.savez(handle, **dict(arrays))
        self._manifest[name] = {"meta": meta, "file": path.name}
        self._write_manifest()

    def get(self, name):
        if name not in self._manifest:
            raise KeyError(name)
        path = self._path(name)
        with open(path, "rb") as handle:
            layout = npz_member_layout(handle)
        mapped: Dict[str, np.ndarray] = {}
        for member in layout.values():
            if int(np.prod(member.shape)) == 0:
                # np.memmap refuses zero-length maps; an empty array has
                # no bytes to share anyway.
                mapped[member.name] = _empty_like(member)
                continue
            mapped[member.name] = _readonly_view(
                np.memmap(
                    path,
                    dtype=member.dtype,
                    mode="r",
                    offset=member.offset,
                    shape=member.shape,
                    order="F" if member.fortran else "C",
                )
            )
        return mapped

    def meta(self, name):
        return self._manifest[name].get("meta")

    def names(self):
        return sorted(self._manifest)

    def stats(self):
        size = sum(
            (self.directory / str(entry["file"])).stat().st_size
            for entry in self._manifest.values()
            if (self.directory / str(entry["file"])).exists()
        )
        return {"backend": self.backend, "slabs": len(self._manifest), "size_bytes": size}


# ----------------------------------------------------------------------
# POSIX shared-memory backend
# ----------------------------------------------------------------------
class ShmSlabStore(SlabStore):
    """One ``multiprocessing.shared_memory`` segment per slab.

    Segment layout: ``S3KS | meta length (4 LE bytes) | meta utf-8 |
    uncompressed npz bytes``; ``get`` returns ndarray views straight
    over the shared buffer at the npz member offsets.  The creating
    process owns the segments: ``close(unlink=True)`` (the default for
    the owner) removes them from ``/dev/shm``; attached readers only
    unmap.  Views from :meth:`get` are valid while the store is open.
    """

    backend = "shm"
    _sequence = itertools.count()

    def __init__(self, prefix: Optional[str] = None, *, _attached=None):
        from multiprocessing import shared_memory  # stdlib, imported lazily

        self._shared_memory = shared_memory
        self.prefix = prefix or f"s3k{os.getpid()}n{next(self._sequence)}"
        self._segments: Dict[str, object] = {}
        self._owned: Dict[str, bool] = {}
        if _attached:
            for name in _attached:
                segment = shared_memory.SharedMemory(name=self._segment_name(name))
                self._segments[name] = segment
                self._owned[name] = False

    @classmethod
    def attach(cls, prefix: str, names: List[str]) -> "ShmSlabStore":
        """Open an existing store by its segment names (reader side)."""
        return cls(prefix, _attached=list(names))

    def _segment_name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def put(self, name, arrays, meta=None):
        if name in self._segments:
            raise ValueError(f"slab {name!r} already stored (slabs are immutable)")
        buffer = io.BytesIO()
        np.savez(buffer, **dict(arrays))
        blob = buffer.getvalue()
        meta_bytes = (meta or "").encode("utf-8")
        total = len(_SHM_MAGIC) + 4 + len(meta_bytes) + len(blob)
        segment = self._shared_memory.SharedMemory(
            name=self._segment_name(name), create=True, size=total
        )
        view = segment.buf
        position = 0
        for chunk in (_SHM_MAGIC, len(meta_bytes).to_bytes(4, "little"), meta_bytes, blob):
            view[position : position + len(chunk)] = chunk
            position += len(chunk)
        self._segments[name] = segment
        self._owned[name] = True

    def _parts(self, name: str) -> Tuple[str, memoryview, int]:
        segment = self._segments[name]
        view = segment.buf
        if bytes(view[:4]) != _SHM_MAGIC:
            raise ValueError(f"segment {self._segment_name(name)!r} is not a slab")
        meta_length = int.from_bytes(bytes(view[4:8]), "little")
        meta = bytes(view[8 : 8 + meta_length]).decode("utf-8")
        return meta, view, 8 + meta_length

    def get(self, name):
        _, view, npz_start = self._parts(name)
        layout = npz_member_layout(_MemoryFile(view[npz_start:]))
        arrays: Dict[str, np.ndarray] = {}
        for member in layout.values():
            if int(np.prod(member.shape)) == 0:
                arrays[member.name] = _empty_like(member)
                continue
            arrays[member.name] = _readonly_view(
                np.ndarray(
                    member.shape,
                    dtype=member.dtype,
                    buffer=view,
                    offset=npz_start + member.offset,
                    order="F" if member.fortran else "C",
                )
            )
        return arrays

    def meta(self, name):
        return self._parts(name)[0] or None

    def names(self):
        return sorted(self._segments)

    def close(self, unlink: Optional[bool] = None) -> None:
        """Unmap all segments; the owner also unlinks them by default."""
        for name, segment in self._segments.items():
            should_unlink = self._owned[name] if unlink is None else unlink
            segment.close()
            if should_unlink:
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        self._segments.clear()
        self._owned.clear()

    def stats(self):
        size = sum(segment.size for segment in self._segments.values())
        return {"backend": self.backend, "slabs": len(self._segments), "size_bytes": size}


def open_slab_store(
    backend: str, *, directory: Optional[Union[str, Path]] = None
) -> SlabStore:
    """Backend factory for the CLI / sharded executor (``--slab-backend``)."""
    if backend == "heap":
        return HeapSlabStore()
    if backend == "mmap":
        if directory is None:
            raise ValueError("the mmap slab backend needs a sidecar directory")
        return MmapSlabStore(directory)
    if backend == "shm":
        return ShmSlabStore()
    raise ValueError(f"unknown slab backend {backend!r} (heap, mmap, shm)")
