"""repro — reproduction of "Social, Structured and Semantic Search" (EDBT 2016).

The package implements the **S3 data model** (a weighted RDF graph
integrating a social network, structured documents, tags and semantics)
and the **S3k top-k keyword search algorithm**, together with the TopkS
baseline, dataset generators shaped after the paper's Twitter / Vodkaster
/ Yelp instances, and the full experiment harness of Section 5.

Quickstart::

    from repro import Engine, S3Instance, parse_text, Tag

    instance = S3Instance()
    instance.add_social_edge("u:alice", "u:bob", 0.8)
    instance.add_document(parse_text("d:post", "A degree helps"), posted_by="u:bob")
    instance.add_tag(Tag("t:1", "d:post", "u:alice", keyword="degre"))

    engine = Engine(instance)
    for result in engine.search("u:alice", ["degre"], k=3).results:
        print(result.uri, result.lower, result.upper)

The :class:`Engine` facade owns the serving lifecycle (indexes, caches,
invalidation, async micro-batching via ``await engine.asearch(...)``);
:class:`S3kSearch` remains available as the internal compute kernel.
"""

from .core import (
    S3Instance,
    S3kScore,
    S3kSearch,
    SearchResult,
    exact_top_k,
    keyword_extension,
)
from .documents import Document, DocumentNode, parse_json, parse_text, parse_xml
from .engine import (
    Engine,
    EngineConfig,
    QueryRequest,
    QueryResponse,
    StaleIndexError,
)
from .rdf import Literal, RDFGraph, URI
from .social import SocialNetwork, Tag

__version__ = "1.1.0"

__all__ = [
    "S3Instance",
    "S3kSearch",
    "Engine",
    "EngineConfig",
    "QueryRequest",
    "QueryResponse",
    "StaleIndexError",
    "S3kScore",
    "SearchResult",
    "keyword_extension",
    "exact_top_k",
    "Document",
    "DocumentNode",
    "parse_xml",
    "parse_json",
    "parse_text",
    "RDFGraph",
    "URI",
    "Literal",
    "SocialNetwork",
    "Tag",
]
