"""RDF terms: URIs, literals and the keyword universe K.

The paper (Section 2) assumes a set ``U`` of URIs, a disjoint set ``L`` of
literals, and the keyword set ``K`` containing all URIs plus the stemmed
version of all literals.  We model URIs and literals as two ``str``
subclasses so that they hash and compare like plain strings (cheap to use as
dictionary keys) while remaining distinguishable with ``isinstance``.
"""

from __future__ import annotations

from typing import Union


class URI(str):
    """A Uniform Resource Identifier (RFC 3986), member of the set ``U``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{str(self)}>"


class Literal(str):
    """An RDF literal (constant), member of the set ``L``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f'"{str(self)}"'


#: Any RDF term that may appear as the object of a triple.
Term = Union[URI, Literal]


def is_uri(term: object) -> bool:
    """Return ``True`` when *term* is a URI (and not a literal)."""
    return isinstance(term, URI)


def is_literal(term: object) -> bool:
    """Return ``True`` when *term* is a literal."""
    return isinstance(term, Literal)


def coerce_term(value: object) -> Term:
    """Coerce *value* into an RDF term.

    URIs and literals pass through unchanged; any other string becomes a
    :class:`Literal`.  This mirrors the common convention of RDF toolkits
    where untyped strings denote constants.
    """
    if isinstance(value, (URI, Literal)):
        return value
    if isinstance(value, str):
        return Literal(value)
    raise TypeError(f"cannot coerce {value!r} into an RDF term")
