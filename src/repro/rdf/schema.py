"""RDF Schema view over a graph.

Convenience accessors for the four RDFS constraints of Figure 2:
subclass (``≺sc``), subproperty (``≺sp``), domain (``←↩d``) and range
(``↪→r``).  On a *saturated* graph (see :mod:`repro.rdf.saturation`) the
sub-class / sub-property accessors directly return the transitive closure.
"""

from __future__ import annotations

from typing import Iterator, Set

from .graph import RDFGraph
from .namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
)
from .terms import Term, URI


class SchemaView:
    """Read-only schema accessors over an :class:`RDFGraph`."""

    def __init__(self, graph: RDFGraph):
        self._graph = graph

    def subclasses(self, rdf_class: Term) -> Set[URI]:
        """Classes ``b`` with ``b ≺sc rdf_class`` (closure if saturated)."""
        return set(self._graph.subjects(RDFS_SUBCLASS, rdf_class))

    def superclasses(self, rdf_class: URI) -> Set[Term]:
        """Classes ``c`` with ``rdf_class ≺sc c``."""
        return set(self._graph.objects(rdf_class, RDFS_SUBCLASS))

    def subproperties(self, prop: Term) -> Set[URI]:
        """Properties ``b`` with ``b ≺sp prop``."""
        return set(self._graph.subjects(RDFS_SUBPROPERTY, prop))

    def superproperties(self, prop: URI) -> Set[Term]:
        """Properties ``p`` with ``prop ≺sp p``."""
        return set(self._graph.objects(prop, RDFS_SUBPROPERTY))

    def domain(self, prop: URI) -> Set[Term]:
        """Domains declared for *prop*."""
        return set(self._graph.objects(prop, RDFS_DOMAIN))

    def range(self, prop: URI) -> Set[Term]:
        """Ranges declared for *prop*."""
        return set(self._graph.objects(prop, RDFS_RANGE))

    def instances(self, rdf_class: Term) -> Set[URI]:
        """Resources typed as *rdf_class*."""
        return set(self._graph.subjects(RDF_TYPE, rdf_class))

    def types(self, resource: URI) -> Set[Term]:
        """Classes *resource* belongs to."""
        return set(self._graph.objects(resource, RDF_TYPE))

    def properties_specializing(self, prop: Term, include_self: bool = True) -> Iterator[URI]:
        """Yield *prop* (optionally) and every property ``≺sp prop``.

        Used to find all concrete social / comment / authorship relations:
        e.g. every property specializing ``S3:social``.
        """
        if include_self and isinstance(prop, URI):
            yield prop
        for sub in self._graph.subjects(RDFS_SUBPROPERTY, prop):
            yield sub
