"""An indexed, weighted RDF graph.

This is the storage substrate for an S3 instance ``I`` (Section 2.1):
a set of weighted triples ``(s, p, o, w)`` with ``w in [0, 1]`` and a
default weight of 1.  The graph maintains hash indexes by subject,
property, object and (subject, property) so that the pattern lookups used
by saturation, keyword extension and path exploration are O(result size).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from .terms import Term, URI
from .triples import Triple, WeightedTriple, make_weighted


class RDFGraph:
    """A mutable, indexed set of weighted RDF triples.

    Adding a triple that is already present keeps the *maximum* of the old
    and new weights: a certain statement (weight 1) is never demoted by a
    quantitative one.
    """

    def __init__(self, triples: Optional[Iterable[WeightedTriple]] = None):
        self._weights: Dict[Triple, float] = {}
        self._by_subject: Dict[URI, Set[Triple]] = defaultdict(set)
        self._by_predicate: Dict[URI, Set[Triple]] = defaultdict(set)
        self._by_object: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_subject_predicate: Dict[Tuple[URI, URI], Set[Triple]] = defaultdict(set)
        self._by_predicate_object: Dict[Tuple[URI, Term], Set[Triple]] = defaultdict(set)
        if triples is not None:
            for wt in triples:
                self.add(wt.subject, wt.predicate, wt.object, wt.weight)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, subject: object, predicate: object, obj: object, weight: float = 1.0) -> bool:
        """Insert a triple; return ``True`` if the graph changed.

        Re-adding an existing triple keeps the maximum weight seen.
        """
        wt = make_weighted(subject, predicate, obj, weight)
        triple = wt.triple
        current = self._weights.get(triple)
        if current is not None:
            if wt.weight > current:
                self._weights[triple] = wt.weight
                return True
            return False
        self._weights[triple] = wt.weight
        self._by_subject[triple.subject].add(triple)
        self._by_predicate[triple.predicate].add(triple)
        self._by_object[triple.object].add(triple)
        self._by_subject_predicate[(triple.subject, triple.predicate)].add(triple)
        self._by_predicate_object[(triple.predicate, triple.object)].add(triple)
        return True

    def add_triple(self, wt: WeightedTriple) -> bool:
        """Insert an already-built :class:`WeightedTriple`."""
        return self.add(wt.subject, wt.predicate, wt.object, wt.weight)

    def discard(self, subject: URI, predicate: URI, obj: Term) -> bool:
        """Remove a triple if present; return ``True`` if it was removed."""
        triple = Triple(subject, predicate, obj)
        if triple not in self._weights:
            return False
        del self._weights[triple]
        self._by_subject[triple.subject].discard(triple)
        self._by_predicate[triple.predicate].discard(triple)
        self._by_object[triple.object].discard(triple)
        self._by_subject_predicate[(triple.subject, triple.predicate)].discard(triple)
        self._by_predicate_object[(triple.predicate, triple.object)].discard(triple)
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def weight(self, subject: URI, predicate: URI, obj: Term) -> Optional[float]:
        """Return the weight of the triple, or ``None`` when absent."""
        return self._weights.get(Triple(subject, predicate, obj))

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    def __iter__(self) -> Iterator[WeightedTriple]:
        for triple, weight in self._weights.items():
            yield WeightedTriple(triple.subject, triple.predicate, triple.object, weight)

    def triples(
        self,
        subject: Optional[URI] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[WeightedTriple]:
        """Iterate over triples matching the pattern; ``None`` is a wildcard."""
        candidates: Iterable[Triple]
        if subject is not None and predicate is not None:
            candidates = self._by_subject_predicate.get((subject, predicate), ())
        elif predicate is not None and obj is not None:
            candidates = self._by_predicate_object.get((predicate, obj), ())
        elif subject is not None:
            candidates = self._by_subject.get(subject, ())
        elif obj is not None:
            candidates = self._by_object.get(obj, ())
        elif predicate is not None:
            candidates = self._by_predicate.get(predicate, ())
        else:
            candidates = list(self._weights)
        for triple in candidates:
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield WeightedTriple(
                triple.subject, triple.predicate, triple.object, self._weights[triple]
            )

    def objects(self, subject: URI, predicate: URI) -> Iterator[Term]:
        """Objects ``o`` such that ``subject predicate o`` is in the graph."""
        for triple in self._by_subject_predicate.get((subject, predicate), ()):
            yield triple.object

    def subjects(self, predicate: URI, obj: Term) -> Iterator[URI]:
        """Subjects ``s`` such that ``s predicate obj`` is in the graph."""
        for triple in self._by_predicate_object.get((predicate, obj), ()):
            yield triple.subject

    def subjects_of_type(self, rdf_class: Term) -> Set[URI]:
        """All subjects declared (or entailed) to be of class *rdf_class*."""
        from .namespaces import RDF_TYPE

        return set(self.subjects(RDF_TYPE, rdf_class))

    def has_property(self, predicate: URI) -> bool:
        """Return ``True`` when some triple uses *predicate*."""
        return bool(self._by_predicate.get(predicate))

    def copy(self) -> "RDFGraph":
        """Return an independent copy of this graph."""
        return RDFGraph(iter(self))
