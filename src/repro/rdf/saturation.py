"""RDFS saturation (closure) of a weighted RDF graph.

Section 2.1: *"the saturation of a weighted RDF graph [is] the saturation
derived only from its triples whose weight is 1. Any entailment rule of the
form a, b ⊢ c applies only if the weight of a and b is 1; in this case, the
entailed triple c also has the weight 1."*

The immediate-entailment rules implemented here are the RDFS rules induced
by Figure 2 of the paper (rdfs2, rdfs3, rdfs5, rdfs7, rdfs9, rdfs11 in the
W3C numbering):

==========  =====================================================
rdfs2       ``p ←↩d c``, ``s p o``        ⊢  ``s type c``
rdfs3       ``p ↪→r c``, ``s p o``        ⊢  ``o type c``
rdfs5       ``p1 ≺sp p2``, ``p2 ≺sp p3``  ⊢  ``p1 ≺sp p3``
rdfs7       ``s p1 o``, ``p1 ≺sp p2``     ⊢  ``s p2 o``
rdfs9       ``s type c1``, ``c1 ≺sc c2``  ⊢  ``s type c2``
rdfs11      ``c1 ≺sc c2``, ``c2 ≺sc c3``  ⊢  ``c1 ≺sc c3``
==========  =====================================================

Saturation is computed with a semi-naive fixpoint: each round only matches
rule premises against triples derived in the previous round, which makes the
closure linear in the size of its output for the rule set above.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from .graph import RDFGraph
from .namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
)
from .terms import URI, is_uri
from .triples import Triple


def _immediate_entailments(graph: RDFGraph, new: Iterable[Triple]) -> Set[Triple]:
    """Triples immediately entailed by *new* against the rest of *graph*.

    Only weight-1 triples fire rules; entailed triples have weight 1.
    """
    derived: Set[Triple] = set()

    def certain(triple: Triple) -> bool:
        return graph.weight(*triple) == 1.0

    for triple in new:
        if not certain(triple):
            continue
        s, p, o = triple

        if p == RDFS_SUBPROPERTY:
            # rdfs5: transitivity of subproperty, in both join directions.
            for wt in graph.triples(subject=o, predicate=RDFS_SUBPROPERTY):
                if wt.weight == 1.0:
                    derived.add(Triple(s, RDFS_SUBPROPERTY, wt.object))
            if is_uri(o):
                for wt in graph.triples(predicate=RDFS_SUBPROPERTY, obj=s):
                    if wt.weight == 1.0:
                        derived.add(Triple(wt.subject, RDFS_SUBPROPERTY, o))
                # rdfs7 driven by a new subproperty statement: existing uses
                # of property ``s`` also hold for ``o``.
                for wt in graph.triples(predicate=s):
                    if wt.weight == 1.0:
                        derived.add(Triple(wt.subject, URI(o), wt.object))

        elif p == RDFS_SUBCLASS:
            # rdfs11: transitivity of subclass, in both join directions.
            if is_uri(o):
                for wt in graph.triples(subject=URI(o), predicate=RDFS_SUBCLASS):
                    if wt.weight == 1.0:
                        derived.add(Triple(s, RDFS_SUBCLASS, wt.object))
            for wt in graph.triples(predicate=RDFS_SUBCLASS, obj=s):
                if wt.weight == 1.0:
                    derived.add(Triple(wt.subject, RDFS_SUBCLASS, o))
            # rdfs9 driven by a new subclass statement.
            for wt in graph.triples(predicate=RDF_TYPE, obj=s):
                if wt.weight == 1.0:
                    derived.add(Triple(wt.subject, RDF_TYPE, o))

        elif p == RDF_TYPE:
            # rdfs9 driven by a new type statement.
            if is_uri(o):
                for wt in graph.triples(subject=URI(o), predicate=RDFS_SUBCLASS):
                    if wt.weight == 1.0:
                        derived.add(Triple(s, RDF_TYPE, wt.object))

        elif p == RDFS_DOMAIN:
            # rdfs2 driven by a new domain statement.
            for wt in graph.triples(predicate=s):
                if wt.weight == 1.0:
                    derived.add(Triple(wt.subject, RDF_TYPE, o))

        elif p == RDFS_RANGE:
            # rdfs3 driven by a new range statement.
            for wt in graph.triples(predicate=s):
                if wt.weight == 1.0 and is_uri(wt.object):
                    derived.add(Triple(URI(wt.object), RDF_TYPE, o))

        # Rules driven by a new *assertion* s p o for any property p.
        if p not in (RDFS_SUBCLASS, RDFS_SUBPROPERTY, RDFS_DOMAIN, RDFS_RANGE):
            # rdfs7: property generalization.
            for wt in graph.triples(subject=p, predicate=RDFS_SUBPROPERTY):
                if wt.weight == 1.0 and is_uri(wt.object):
                    derived.add(Triple(s, URI(wt.object), o))
            # rdfs2: domain typing.
            for wt in graph.triples(subject=p, predicate=RDFS_DOMAIN):
                if wt.weight == 1.0:
                    derived.add(Triple(s, RDF_TYPE, wt.object))
            # rdfs3: range typing.
            for wt in graph.triples(subject=p, predicate=RDFS_RANGE):
                if wt.weight == 1.0 and is_uri(o):
                    derived.add(Triple(URI(o), RDF_TYPE, wt.object))

    return derived


def saturate(graph: RDFGraph) -> int:
    """Saturate *graph* in place; return the number of triples added.

    Repeatedly applies the immediate entailment rules until the unique
    finite fixpoint is reached (the paper's closure).
    """
    frontier: List[Triple] = [wt.triple for wt in graph if wt.weight == 1.0]
    added = 0
    while frontier:
        derived = _immediate_entailments(graph, frontier)
        frontier = []
        for triple in derived:
            if graph.add(triple.subject, triple.predicate, triple.object, 1.0):
                frontier.append(triple)
                added += 1
    return added


def saturate_from(graph: RDFGraph, frontier: Iterable[Triple]) -> List[Triple]:
    """Close *graph* over what the already-present *frontier* entails.

    Semi-naive delta closure: *frontier* must already be in *graph* (the
    base facts of a mutation); only rule instances with at least one
    premise in the frontier (or in triples derived from it) are matched,
    so the cost is proportional to the delta, not the graph.  Returns the
    newly derived triples in derivation order.  Because the closure is a
    unique set fixpoint, the resulting graph equals a full
    :func:`saturate` from scratch whenever the rest of the graph was
    already saturated.
    """
    pending: List[Triple] = list(frontier)
    derived_all: List[Triple] = []
    while pending:
        derived = _immediate_entailments(graph, pending)
        pending = []
        for triple in derived:
            if graph.add(triple.subject, triple.predicate, triple.object, 1.0):
                pending.append(triple)
                derived_all.append(triple)
    return derived_all


def add_and_saturate(graph: RDFGraph, triples: Iterable[Triple]) -> int:
    """Incrementally add weight-1 *triples* and re-saturate; return # added.

    This is the incremental maintenance described in [10]: only the new
    triples (and what they entail) are matched against the rules, the
    already-saturated part of the graph is left untouched.
    """
    frontier: List[Triple] = []
    added = 0
    for triple in triples:
        if graph.add(triple.subject, triple.predicate, triple.object, 1.0):
            frontier.append(triple)
            added += 1
    while frontier:
        derived = _immediate_entailments(graph, frontier)
        frontier = []
        for triple in derived:
            if graph.add(triple.subject, triple.predicate, triple.object, 1.0):
                frontier.append(triple)
                added += 1
    return added
