"""Weighted RDF triples.

Section 2.1 of the paper introduces *weighted* RDF graphs: each edge is a
triple ``(s, p, o)`` carrying a weight ``w in [0, 1]``; a triple without an
explicit weight has weight 1.  Weight-1 triples are the only ones that take
part in RDFS entailment.
"""

from __future__ import annotations

from typing import NamedTuple

from .terms import Literal, Term, URI, coerce_term, is_uri


class Triple(NamedTuple):
    """A plain (unweighted) RDF triple ``s p o``."""

    subject: URI
    predicate: URI
    object: Term

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.subject} {self.predicate} {self.object}"


class WeightedTriple(NamedTuple):
    """A triple together with its weight ``w in [0, 1]``."""

    subject: URI
    predicate: URI
    object: Term
    weight: float

    @property
    def triple(self) -> Triple:
        """The unweighted part of this statement."""
        return Triple(self.subject, self.predicate, self.object)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.subject} {self.predicate} {self.object} ({self.weight})"


def make_triple(subject: object, predicate: object, obj: object) -> Triple:
    """Build a well-formed :class:`Triple`, validating per RDF [27].

    A well-formed triple has a URI subject, a URI property, and an object
    from ``K`` (URI or literal).
    """
    if not is_uri(subject):
        if isinstance(subject, str) and not isinstance(subject, Literal):
            subject = URI(subject)
        else:
            raise ValueError(f"triple subject must be a URI, got {subject!r}")
    if not is_uri(predicate):
        if isinstance(predicate, str) and not isinstance(predicate, Literal):
            predicate = URI(predicate)
        else:
            raise ValueError(f"triple property must be a URI, got {predicate!r}")
    return Triple(subject, predicate, coerce_term(obj))


def make_weighted(
    subject: object, predicate: object, obj: object, weight: float = 1.0
) -> WeightedTriple:
    """Build a well-formed :class:`WeightedTriple` with ``weight in [0, 1]``."""
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"triple weight must be in [0, 1], got {weight}")
    triple = make_triple(subject, predicate, obj)
    return WeightedTriple(triple.subject, triple.predicate, triple.object, weight)
