"""The S3 namespace, RDF/RDFS built-ins and inverse properties.

Table 2 of the paper lists the S3 classes (``S3:user``, ``S3:doc``,
``S3:relatedTo``) and properties (``S3:postedBy``, ``S3:commentsOn``,
``S3:partOf``, ``S3:contains``, ``S3:nodeName``, ``S3:hasSubject``,
``S3:hasKeyword``, ``S3:hasAuthor``, ``S3:social``).  Section 2.4 adds, as
syntactic sugar, *inverse* properties for the user/document connections:
``s p̄ o ∈ I`` iff ``o p s ∈ I``.
"""

from __future__ import annotations

from .terms import URI

# ---------------------------------------------------------------------------
# RDF / RDFS built-ins (Figure 2 of the paper).
# ---------------------------------------------------------------------------

#: ``s type o`` — class assertion, relationally ``o(s)``.
RDF_TYPE = URI("rdf:type")
#: ``s ≺sc o`` — subclass constraint, relationally ``s ⊆ o``.
RDFS_SUBCLASS = URI("rdfs:subClassOf")
#: ``s ≺sp o`` — subproperty constraint.
RDFS_SUBPROPERTY = URI("rdfs:subPropertyOf")
#: ``s ←↩d o`` — domain typing constraint.
RDFS_DOMAIN = URI("rdfs:domain")
#: ``s ↪→r o`` — range typing constraint.
RDFS_RANGE = URI("rdfs:range")

#: The four RDFS schema properties.
SCHEMA_PROPERTIES = frozenset(
    {RDFS_SUBCLASS, RDFS_SUBPROPERTY, RDFS_DOMAIN, RDFS_RANGE}
)

# ---------------------------------------------------------------------------
# S3 classes (Table 2).
# ---------------------------------------------------------------------------

S3_USER = URI("S3:user")
S3_DOC = URI("S3:doc")
S3_RELATED_TO = URI("S3:relatedTo")

# ---------------------------------------------------------------------------
# S3 properties (Table 2).
# ---------------------------------------------------------------------------

S3_POSTED_BY = URI("S3:postedBy")
S3_COMMENTS_ON = URI("S3:commentsOn")
S3_PART_OF = URI("S3:partOf")
S3_CONTAINS = URI("S3:contains")
S3_NODE_NAME = URI("S3:nodeName")
S3_HAS_SUBJECT = URI("S3:hasSubject")
S3_HAS_KEYWORD = URI("S3:hasKeyword")
S3_HAS_AUTHOR = URI("S3:hasAuthor")
S3_SOCIAL = URI("S3:social")

_INVERSE_SUFFIX = "~inv"

#: Properties for which Section 2.4 defines an inverse ("syntactic sugar to
#: simplify the traversal of connections between users and documents").
INVERTIBLE_PROPERTIES = (
    S3_POSTED_BY,
    S3_COMMENTS_ON,
    S3_HAS_SUBJECT,
    S3_HAS_AUTHOR,
)


def inverse_property(prop: URI) -> URI:
    """Return the inverse property ``p̄`` of *prop* (an involution)."""
    raw = str(prop)
    if raw.endswith(_INVERSE_SUFFIX):
        return URI(raw[: -len(_INVERSE_SUFFIX)])
    return URI(raw + _INVERSE_SUFFIX)


def is_inverse_property(prop: URI) -> bool:
    """Return ``True`` when *prop* is an inverse property ``p̄``."""
    return str(prop).endswith(_INVERSE_SUFFIX)


#: Inverse S3 properties, materialized alongside their direct versions.
S3_POSTED_BY_INV = inverse_property(S3_POSTED_BY)
S3_COMMENTS_ON_INV = inverse_property(S3_COMMENTS_ON)
S3_HAS_SUBJECT_INV = inverse_property(S3_HAS_SUBJECT)
S3_HAS_AUTHOR_INV = inverse_property(S3_HAS_AUTHOR)


def in_s3_namespace(prop: URI) -> bool:
    """Return ``True`` when *prop* belongs to the S3 namespace.

    Inverse properties of S3 properties are considered part of the
    namespace as well, since they encode the same connections.
    """
    return str(prop).startswith("S3:")


#: Properties whose edges are *network edges* (Section 2.5): S3 properties
#: other than ``S3:partOf`` linking users, documents or tags.  ``contains``
#: and ``nodeName`` never qualify because their objects are keywords/names,
#: not users/documents/tags; they are excluded here directly.
NETWORK_EDGE_PROPERTIES = frozenset(
    {
        S3_SOCIAL,
        S3_POSTED_BY,
        S3_POSTED_BY_INV,
        S3_COMMENTS_ON,
        S3_COMMENTS_ON_INV,
        S3_HAS_SUBJECT,
        S3_HAS_SUBJECT_INV,
        S3_HAS_AUTHOR,
        S3_HAS_AUTHOR_INV,
    }
)

#: Properties along which Algorithm ``GetDocuments`` walks to gather the
#: connected component of a document or tag (Section 5.2).
COMPONENT_PROPERTIES = frozenset(
    {
        S3_PART_OF,
        S3_COMMENTS_ON,
        S3_COMMENTS_ON_INV,
        S3_HAS_SUBJECT,
        S3_HAS_SUBJECT_INV,
    }
)

#: FOAF name property used for the DBpedia-style lexicalizations (Section 5.1).
FOAF_NAME = URI("foaf:name")
