"""S3k-vs-TopkS comparison harness producing the Figure 8 rows."""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import fmean
from typing import Dict, List, Sequence

from ..baselines import TopkSSearcher, uit_from_instance
from ..core.search import S3kSearch
from ..queries.workload import QuerySpec, Workload
from ..rdf.terms import URI
from .measures import (
    graph_reachability,
    intersection_size,
    normalized_footrule,
    semantic_reachability,
)


@dataclass
class ComparisonReport:
    """Averaged Figure 8 measures over one or more workloads."""

    graph_reachability: float = 0.0
    semantic_reachability: float = 0.0
    l1: float = 0.0
    intersection: float = 0.0
    queries: int = 0

    def rows(self) -> Dict[str, str]:
        return {
            "Graph reachability": f"{self.graph_reachability:.0%}",
            "Semantic reachability": f"{self.semantic_reachability:.0%}",
            "L1": f"{self.l1:.0%}",
            "Intersection size": f"{self.intersection:.1%}",
        }


def compare_engines(
    engine: S3kSearch,
    workloads: Sequence[Workload],
    alpha: float = 0.5,
) -> ComparisonReport:
    """Run every query through S3k and TopkS, average the 4 measures.

    S3k results (document URIs) are mapped to UIT items through the §5.1
    adapter so the two result lists are comparable, exactly as the paper
    compares against the original TopkS implementation.
    """
    dataset, doc_to_item = uit_from_instance(engine.instance, engine.component_index)
    topks = TopkSSearcher(dataset, alpha=alpha)

    graph_values: List[float] = []
    semantic_values: List[float] = []
    l1_values: List[float] = []
    intersection_values: List[float] = []
    queries = 0

    for workload in workloads:
        for spec in workload.queries:
            s3k_result = engine.search(spec.seeker, spec.keywords, k=spec.k)
            s3k_plain = engine.search(
                spec.seeker, spec.keywords, k=spec.k, semantic=False
            )
            topks_result = topks.search(
                str(spec.seeker), [str(kw) for kw in spec.keywords], k=spec.k
            )
            reachable = dataset.socially_reachable_items(
                str(spec.seeker), [str(kw) for kw in spec.keywords]
            )

            graph_values.append(
                graph_reachability(s3k_result.candidate_uris, doc_to_item, reachable)
            )
            semantic_values.append(
                semantic_reachability(
                    len(s3k_plain.candidate_uris), len(s3k_result.candidate_uris)
                )
            )
            s3k_items = [doc_to_item.get(uri, str(uri)) for uri in s3k_result.uris]
            l1_values.append(normalized_footrule(s3k_items, topks_result.items))
            intersection_values.append(
                intersection_size(s3k_items, topks_result.items)
            )
            queries += 1

    if queries == 0:
        return ComparisonReport()
    return ComparisonReport(
        graph_reachability=fmean(graph_values),
        semantic_reachability=fmean(semantic_values),
        l1=fmean(l1_values),
        intersection=fmean(intersection_values),
        queries=queries,
    )
