"""Qualitative comparison measures (Section 5.4 / Figure 8).

* **graph reachability** — fraction of S3k candidates *not* reachable by
  the TopkS search (TopkS cannot follow document-to-document links);
* **semantic reachability** — ratio of candidates examined *without*
  query expansion to candidates examined *with* it;
* **intersection size** — fraction of S3k results TopkS also returned;
* **L1** — Spearman's foot-rule distance between the two ranked lists,
  with the paper's penalty for non-shared items:

  ``L1(τ1, τ2) = 2(k−|τ1∩τ2|)(k+1) + Σ_{i∈τ1∩τ2} |τ1(i)−τ2(i)|
  − Σ_{τ∈{τ1,τ2}} Σ_{i∈τ∖(τ1∩τ2)} τ(i)``

  (ranks 1-based).  Identical lists give 0; disjoint lists give
  ``k(k+1)``, which we use to normalize into [0, 1].
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set


def spearman_footrule(list_a: Sequence, list_b: Sequence) -> float:
    """The paper's L1 distance between two ranked lists (raw value)."""
    k = max(len(list_a), len(list_b))
    rank_a: Dict[object, int] = {item: i + 1 for i, item in enumerate(list_a)}
    rank_b: Dict[object, int] = {item: i + 1 for i, item in enumerate(list_b)}
    shared = set(rank_a) & set(rank_b)
    value = 2.0 * (k - len(shared)) * (k + 1)
    value += sum(abs(rank_a[i] - rank_b[i]) for i in shared)
    value -= sum(rank for item, rank in rank_a.items() if item not in shared)
    value -= sum(rank for item, rank in rank_b.items() if item not in shared)
    return value


def normalized_footrule(list_a: Sequence, list_b: Sequence) -> float:
    """L1 scaled into [0, 1] by the disjoint-lists value for these lengths.

    For two disjoint lists of lengths ``la``, ``lb`` the formula yields
    ``2k(k+1) − la(la+1)/2 − lb(lb+1)/2`` (with ``k = max(la, lb)``); the
    result is clamped to [0, 1] for the rare partial-overlap cases that
    exceed the disjoint value.
    """
    la, lb = len(list_a), len(list_b)
    k = max(la, lb)
    if k == 0:
        return 0.0
    disjoint = 2.0 * k * (k + 1) - la * (la + 1) / 2 - lb * (lb + 1) / 2
    if disjoint <= 0:
        return 0.0
    return min(1.0, max(0.0, spearman_footrule(list_a, list_b) / disjoint))


def intersection_size(list_a: Sequence, list_b: Sequence) -> float:
    """|τ1 ∩ τ2| / k — the fraction of shared results."""
    k = max(len(list_a), len(list_b))
    if k == 0:
        return 0.0
    return len(set(list_a) & set(list_b)) / k


def graph_reachability(
    s3k_candidates: Iterable,
    candidate_items: Dict[object, str],
    topks_reachable: Set[str],
) -> float:
    """Fraction of S3k candidates outside TopkS's reach.

    *candidate_items* maps each S3k candidate document to its UIT item;
    *topks_reachable* is the item set TopkS could ever examine for the
    query.
    """
    candidates = list(s3k_candidates)
    if not candidates:
        return 0.0
    unreachable = sum(
        1
        for candidate in candidates
        if candidate_items.get(candidate) not in topks_reachable
    )
    return unreachable / len(candidates)


def semantic_reachability(candidates_without: int, candidates_with: int) -> float:
    """#candidates without query expansion / #candidates with it."""
    if candidates_with == 0:
        return 1.0
    return candidates_without / candidates_with
