"""Evaluation: qualitative measures and the S3k-vs-TopkS harness."""

from .comparison import ComparisonReport, compare_engines
from .measures import (
    graph_reachability,
    intersection_size,
    normalized_footrule,
    semantic_reachability,
    spearman_footrule,
)
from .reporting import (
    format_counter_table,
    format_engine_stats,
    format_latency_table,
    format_paper_comparison,
    format_table,
    latency_percentiles,
)

__all__ = [
    "ComparisonReport",
    "compare_engines",
    "graph_reachability",
    "intersection_size",
    "normalized_footrule",
    "semantic_reachability",
    "spearman_footrule",
    "format_table",
    "format_paper_comparison",
    "format_counter_table",
    "format_engine_stats",
    "format_latency_table",
    "latency_percentiles",
]
