"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width table, optionally titled."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_paper_comparison(
    title: str, rows: Dict[str, Sequence[object]]
) -> str:
    """A 'measure | paper | measured' table for EXPERIMENTS.md-style output."""
    table_rows = [[name, *values] for name, values in rows.items()]
    return format_table(["measure", "paper", "measured"], table_rows, title=title)
