"""Plain-text table rendering and latency aggregation for the harness."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

#: Percentiles reported for batched-execution latency distributions.
DEFAULT_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


def latency_percentiles(
    times: Sequence[float], percentiles: Sequence[float] = DEFAULT_PERCENTILES
) -> Dict[str, float]:
    """Latency distribution summary of *times* (seconds).

    Returns ``{"mean": …, "p50": …, "p90": …, …, "max": …}`` using the
    nearest-rank method — under heavy traffic the tail percentiles, not
    the mean, are what a latency SLO constrains, so batched runs report
    the full distribution instead of only per-query means.
    """
    if not times:
        return {"mean": 0.0, "max": 0.0, **{_p_name(p): 0.0 for p in percentiles}}
    ordered = sorted(times)
    summary: Dict[str, float] = {"mean": sum(ordered) / len(ordered)}
    for p in percentiles:
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        summary[_p_name(p)] = ordered[rank - 1]
    summary["max"] = ordered[-1]
    return summary


def _p_name(percentile: float) -> str:
    value = int(percentile) if float(percentile).is_integer() else percentile
    return f"p{value}"


def format_latency_table(
    rows: Dict[str, Sequence[float]], title: str = ""
) -> str:
    """One latency-percentile row (in milliseconds) per labelled series."""
    summaries = {label: latency_percentiles(times) for label, times in rows.items()}
    names = sorted(
        {name for summary in summaries.values() for name in summary},
        key=lambda name: (name != "mean", name == "max", name),
    )
    table = [
        [label, *(f"{summary[name] * 1e3:.2f}" for name in names)]
        for label, summary in summaries.items()
    ]
    return format_table(["series", *(f"{n} (ms)" for n in names)], table, title=title)


def format_counter_table(
    counters: Dict[str, Dict[str, int]], title: str = ""
) -> str:
    """One row of integer counters per labelled series.

    Used for the engine's result-cache hit / miss / occupancy statistics
    (``S3kSearch.cache_stats`` / ``BatchStats.cache_stats``): under heavy
    hot-query traffic the hit ratio, alongside the latency percentiles,
    is what sizes the cache.
    """
    names: List[str] = []
    for summary in counters.values():
        for name in summary:
            if name not in names:
                names.append(name)
    rows = [
        [label, *(str(summary.get(name, 0)) for name in names)]
        for label, summary in counters.items()
    ]
    return format_table(["series", *names], rows, title=title)


def format_engine_stats(
    stats: Dict[str, Dict[str, object]], title: str = "engine stats"
) -> str:
    """Render an ``Engine.stats()`` snapshot as one section/counter table.

    This is the single reporting surface over the merged engine / cache /
    index / batcher counters — the CLI and benchmarks read the facade's
    ``stats()`` instead of poking at ``S3kSearch`` internals.  The
    sharded executor's snapshot renders the same way: its ``router`` and
    per-worker ``shard_<i>`` breakdowns are sections like any other, and
    a counter whose value is itself a mapping flattens one level to
    dotted names.  Empty sections are omitted; float counters (build
    seconds, rates) keep a short fixed precision.
    """

    def _render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rows: List[List[str]] = []
    for section, counters in stats.items():
        if not counters:
            continue
        for name, value in counters.items():
            if isinstance(value, dict):
                rows.extend(
                    [section, f"{name}.{sub}", _render(nested)]
                    for sub, nested in value.items()
                )
            else:
                rows.append([section, name, _render(value)])
    return format_table(["section", "counter", "value"], rows, title=title)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width table, optionally titled."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_paper_comparison(
    title: str, rows: Dict[str, Sequence[object]]
) -> str:
    """A 'measure | paper | measured' table for EXPERIMENTS.md-style output."""
    table_rows = [[name, *values] for name, values in rows.items()]
    return format_table(["measure", "paper", "measured"], table_rows, title=title)
