"""Developer tooling that ships with the repository (not the library).

``tools.repro_lint`` is the project-specific static-analysis pass; run
it with ``python -m tools.repro_lint src tests``.
"""
