"""Per-line and per-file suppression comments.

Syntax (inside any comment, matched by the tokenizer so string literals
never trigger it):

* ``# repro-lint: disable=<rule>[,<rule>...]`` — suppress the named
  rules (or ``all``) on that physical line; a comment on its own line
  also covers the following line, so a finding can be suppressed either
  trailing or from directly above;
* ``# repro-lint: disable-file=<rule>[,<rule>...]`` — suppress for the
  whole file, wherever the comment sits.

Suppressions are deliberately loud in review: the rule name must be
spelled out, there is no bare ``# repro-lint: disable``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\-\s]+)"
)


@dataclass
class Suppressions:
    """Parsed suppression directives of one file."""

    file_rules: Set[str] = field(default_factory=set)
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, rule: str, line: int) -> bool:
        for bucket in (self.file_rules, self.line_rules.get(line, ())):
            if rule in bucket or "all" in bucket:
                return True
        return False


def parse_suppressions(source: str) -> Suppressions:
    """Extract the suppression directives from *source*.

    Tokenization errors (the linter may be pointed at broken code) fall
    back to no suppressions — the parse error surfaces elsewhere.
    """
    suppressions = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        rules = {
            name.strip()
            for name in match.group("rules").split(",")
            if name.strip()
        }
        if match.group("kind") == "disable-file":
            suppressions.file_rules |= rules
            continue
        line = token.start[0]
        suppressions.line_rules.setdefault(line, set()).update(rules)
        # A comment alone on its line also covers the following line.
        prefix = token.line[: token.start[1]]
        if not prefix.strip():
            suppressions.line_rules.setdefault(line + 1, set()).update(rules)
    return suppressions
