"""File collection, rule dispatch, and suppression filtering."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .base import LintModule, registered_rules
from .config import LintConfig, default_config
from .findings import Finding
from .suppressions import parse_suppressions

__all__ = ["collect_files", "lint_file", "lint_paths"]


def collect_files(paths: Sequence, root: Path) -> List[Path]:
    """Expand *paths* (files or directories) into a sorted ``.py`` list."""
    files: List[Path] = []
    seen = set()
    for entry in paths:
        entry = Path(entry)
        candidates: Iterable[Path]
        if entry.is_dir():
            candidates = sorted(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            candidates = [entry]
        else:
            raise FileNotFoundError(f"not a python file or directory: {entry}")
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                files.append(candidate)
    return files


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: Path, config: LintConfig, root: Optional[Path] = None
) -> List[Finding]:
    """All enabled-rule findings of one file, suppressions applied.

    A file that does not parse yields a single ``parse-error`` finding —
    the linter must fail loudly on broken input, not skip it.
    """
    root = root if root is not None else Path.cwd()
    relpath = _relative(path, root)
    if config.excluded(relpath):
        return []
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="parse-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    module = LintModule(path=path, relpath=relpath, source=source, tree=tree)
    rules = registered_rules()
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    for name, scope in config.scopes.items():
        rule = rules.get(name)
        if rule is None or not scope.applies_to(relpath):
            continue
        for finding in rule.check(module, scope.options):
            if not suppressions.suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def lint_paths(
    paths: Sequence,
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under *paths*; findings sorted by location.

    *root* anchors the path scopes (default: the current directory, i.e.
    the repo root when invoked as ``python -m tools.repro_lint``).
    """
    config = config if config is not None else default_config()
    root = root if root is not None else Path.cwd()
    findings: List[Finding] = []
    for path in collect_files(paths, root):
        findings.extend(lint_file(path, config, root))
    return sorted(findings, key=Finding.sort_key)
