"""Rule protocol, registry, and shared AST resolution helpers.

Every rule is an AST pass over one parsed module.  The helpers here do
the unglamorous resolution work the rules share:

* :class:`ImportMap` canonicalizes local names through import aliases,
  so ``import time as t; t.sleep(...)`` and ``from time import sleep``
  both resolve to ``time.sleep`` — a rule matches canonical dotted
  names, never spelling;
* :func:`dotted_name` flattens an attribute chain (``np.random.rand``)
  into its canonical dotted form through the import map;
* :func:`walk_functions` yields every function with its class-qualified
  name (``ShardedEngine.__init__``), which is how path-scoped rules
  target "the pre-fork path" or "the sanctioned budget hooks".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from .findings import Finding

__all__ = [
    "ImportMap",
    "LintModule",
    "Rule",
    "dotted_name",
    "register",
    "registered_rules",
    "walk_functions",
]


class ImportMap:
    """Local name → canonical dotted module path, from the import nodes."""

    def __init__(self, tree: ast.AST):
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a`` (to module ``a``).
                        root = alias.name.split(".", 1)[0]
                        self._aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports resolve inside the repo
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, name: str) -> str:
        return self._aliases.get(name, name)


def dotted_name(node: ast.expr, imports: ImportMap) -> Optional[str]:
    """Canonical dotted name of *node*, or ``None`` for dynamic bases.

    ``np.random.rand`` → ``numpy.random.rand`` (through the import map);
    a bare ``open`` stays ``open``; chains hanging off calls/subscripts
    (``store.get(n)["a"]``) have no static name and return ``None``.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    parts[0] = imports.resolve(parts[0])
    return ".".join(parts)


def walk_functions(
    tree: ast.AST,
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(qualname, function node)`` for every def in *tree*.

    Qualnames are class- and nesting-qualified: ``ShardedEngine.__init__``,
    ``_worker_loop``, ``ShardedEngine.route.inner``.  Parents are always
    yielded before the functions nested inside them.
    """

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}" if prefix else child.name
                yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


@dataclass
class LintModule:
    """One parsed source file handed to the rules."""

    path: Path  # as named on the command line (rendered in findings)
    relpath: str  # posix path relative to the lint root (scope matching)
    source: str
    tree: ast.Module
    _imports: Optional[ImportMap] = field(default=None, repr=False)

    @property
    def imports(self) -> ImportMap:
        if self._imports is None:
            self._imports = ImportMap(self.tree)
        return self._imports

    def finding(
        self, node: ast.AST, rule: "Rule", message: str
    ) -> Finding:
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule.name,
            message=message,
        )


class Rule:
    """One invariant, checked as an AST pass over a module.

    Subclasses set ``name`` / ``description`` / ``rationale``,
    ``default_paths`` (posix path prefixes relative to the lint root the
    rule applies under — the *path scope*), and implement
    :meth:`check`.  ``default_options`` are per-rule knobs the config
    layer may override (e.g. the fork-safety pre-fork function list).
    """

    name: str = ""
    description: str = ""
    rationale: str = ""
    default_paths: Tuple[str, ...] = ()
    default_excludes: Tuple[str, ...] = ()
    default_options: Mapping[str, object] = {}

    def check(
        self, module: LintModule, options: Mapping[str, object]
    ) -> List[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one rule instance to the registry."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def registered_rules() -> Dict[str, Rule]:
    """Name → rule instance, import-populated by ``tools.repro_lint.rules``."""
    from . import rules  # noqa: F401  - importing registers the rules

    return dict(_REGISTRY)
