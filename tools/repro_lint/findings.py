"""Finding records and the ``file:line:col`` findings formatter."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location.

    ``path`` is the path the file was named by on the command line (kept
    relative when the input was relative, so CI logs are clickable from
    the repo root); ``line`` / ``col`` are 1-based / 0-based as in the
    ``ast`` module.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def format_findings(findings: Iterable[Finding]) -> str:
    """Render findings sorted by location, one per line, plus a total."""
    ordered: List[Finding] = sorted(findings, key=Finding.sort_key)
    lines = [finding.render() for finding in ordered]
    noun = "finding" if len(ordered) == 1 else "findings"
    lines.append(f"{len(ordered)} {noun}")
    return "\n".join(lines)
