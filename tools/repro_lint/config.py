"""Path-scoped rule configuration.

Each rule carries a *scope*: the path prefixes (posix, relative to the
lint root) it applies under, prefixes it must skip, and its option
mapping.  The default configuration is assembled from the rules' own
declared defaults; tests and the CLI can override scopes per rule
(``LintConfig.override``) without touching the rule implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from .base import Rule, registered_rules

#: Prefixes no rule ever scans: lint fixtures are deliberate violations.
GLOBAL_EXCLUDES: Tuple[str, ...] = ("tests/lint/fixtures",)


def _normalize(prefix: str) -> str:
    return prefix.replace("\\", "/").strip("/")


def path_matches(relpath: str, prefixes: Tuple[str, ...]) -> bool:
    """True when *relpath* sits under any of *prefixes* ("" = everywhere)."""
    relpath = _normalize(relpath)
    for prefix in prefixes:
        prefix = _normalize(prefix)
        if not prefix or relpath == prefix or relpath.startswith(prefix + "/"):
            return True
    return False


@dataclass(frozen=True)
class RuleScope:
    """Where one rule applies and with which options."""

    paths: Tuple[str, ...]
    excludes: Tuple[str, ...] = ()
    options: Mapping[str, object] = field(default_factory=dict)

    def applies_to(self, relpath: str) -> bool:
        if not path_matches(relpath, self.paths):
            return False
        return not path_matches(relpath, tuple(self.excludes))


@dataclass(frozen=True)
class LintConfig:
    """The full run configuration: one scope per enabled rule."""

    scopes: Mapping[str, RuleScope]
    global_excludes: Tuple[str, ...] = GLOBAL_EXCLUDES

    def excluded(self, relpath: str) -> bool:
        return path_matches(relpath, self.global_excludes)

    def scope(self, rule: str) -> Optional[RuleScope]:
        return self.scopes.get(rule)

    def select(self, names) -> "LintConfig":
        """A config restricted to the named rules (CLI ``--select``)."""
        unknown = sorted(set(names) - set(self.scopes))
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(unknown)}")
        return replace(
            self,
            scopes={name: self.scopes[name] for name in names},
        )

    def override(
        self,
        rule: str,
        *,
        paths: Optional[Tuple[str, ...]] = None,
        excludes: Optional[Tuple[str, ...]] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> "LintConfig":
        """A config with one rule's scope fields replaced (tests use
        this to point a path-scoped rule at fixture files)."""
        current = self.scopes[rule]
        merged_options = dict(current.options)
        if options:
            merged_options.update(options)
        scopes = dict(self.scopes)
        scopes[rule] = RuleScope(
            paths=paths if paths is not None else current.paths,
            excludes=excludes if excludes is not None else current.excludes,
            options=merged_options,
        )
        return replace(self, scopes=scopes)


def default_config(rules: Optional[Dict[str, Rule]] = None) -> LintConfig:
    """The project configuration: every registered rule at its declared
    default scope and options."""
    rules = rules if rules is not None else registered_rules()
    scopes = {
        name: RuleScope(
            paths=tuple(rule.default_paths),
            excludes=tuple(rule.default_excludes),
            options=dict(rule.default_options),
        )
        for name, rule in rules.items()
    }
    return LintConfig(scopes=scopes)
