"""determinism: the core kernels answer bit-identically, run after run.

Batched execution, result caching, process sharding and the persistence
round-trip are all certified against one oracle: ``search`` over the
same instance returns the *same bits*.  That certification only holds
while the kernels in ``src/repro/core/`` are pure functions of the
instance plus the request — an unseeded RNG or a wall-clock read breaks
replay, cache-hit equivalence, and the 50-instance oracle sweep at
once.

Flags, scoped to ``src/repro/core/``:

* wall-clock reads — ``time.time`` / ``datetime.now`` / ``utcnow`` /
  ``date.today`` — everywhere (kernels never need calendar time);
* monotonic clock reads (``time.perf_counter`` / ``time.monotonic``)
  outside the sanctioned anytime-budget hooks (the Section 4.1
  ``time_budget`` stop test and the build/wall-time accounting fields),
  listed per qualified function name in the rule options;
* unseeded randomness: module-level ``random.*`` calls (the global RNG),
  any ``numpy.random.*`` legacy global call, and RNG constructors
  (``random.Random()`` / ``default_rng()`` / ``RandomState()``) called
  without a seed argument.
"""

from __future__ import annotations

import ast
from typing import List, Mapping

from ..base import LintModule, Rule, dotted_name, register, walk_functions
from ..findings import Finding

_WALL_CLOCKS = (
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
)
_MONOTONIC_CLOCKS = (
    "time.perf_counter",
    "time.monotonic",
    "time.perf_counter_ns",
    "time.monotonic_ns",
)
_RNG_CONSTRUCTORS = (
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
)

def _calls_with_scope(tree: ast.Module):
    """Yield ``(qualname, call node)`` for every call in the module.

    Calls inside a function are attributed to their innermost enclosing
    def (so a helper nested in a budget hook is *not* sanctioned by the
    hook's name — it has its own qualname); calls at module or class
    level run at import time, where entropy is just as fatal, and are
    attributed to ``<module>``.
    """
    claimed = set()
    # walk_functions yields parents before children; reversed, every
    # function claims its calls before its enclosing scope can.
    for qualname, function in reversed(list(walk_functions(tree))):
        for node in ast.walk(function):
            if isinstance(node, ast.Call) and id(node) not in claimed:
                claimed.add(id(node))
                yield qualname, node
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and id(node) not in claimed:
            yield "<module>", node


#: functions allowed to read monotonic clocks: the anytime time_budget
#: machinery of Section 4.1, the build-cost accounting counters, and
#: the delta-maintenance patch timers (telemetry only — the clock never
#: influences what a patch computes, just how its cost is reported).
_BUDGET_HOOKS = (
    "S3kSearch._prepare_query",
    "S3kSearch._check_stop",
    "S3kSearch._finish",
    "S3kSearch.search",
    "S3kSearch.search_many",
    "S3kSearch.apply_deltas",
    "ConnectionIndex.slab",
    "ConnectionIndex.apply_delta",
)


@register
class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "no unseeded randomness or wall-clock reads in the core kernels "
        "outside the sanctioned anytime-budget hooks"
    )
    rationale = (
        "batching, caching and sharding are certified bit-identical "
        "against sequential search; hidden entropy breaks the oracle"
    )
    default_paths = ("src/repro/core",)
    default_options = {"budget_hooks": _BUDGET_HOOKS}

    def check(
        self, module: LintModule, options: Mapping[str, object]
    ) -> List[Finding]:
        hooks = tuple(options["budget_hooks"])
        findings: List[Finding] = []
        for qualname, node in _calls_with_scope(module.tree):
            name = dotted_name(node.func, module.imports)
            if name is None:
                continue
            if name in _WALL_CLOCKS:
                findings.append(
                    module.finding(
                        node,
                        self,
                        f"wall-clock read {name}() in kernel "
                        f"'{qualname}': kernels are pure functions "
                        "of instance + request",
                    )
                )
            elif name in _MONOTONIC_CLOCKS and qualname not in hooks:
                findings.append(
                    module.finding(
                        node,
                        self,
                        f"{name}() in '{qualname}' is outside the "
                        "sanctioned anytime-budget hooks "
                        f"({', '.join(hooks)})",
                    )
                )
            elif name in _RNG_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    findings.append(
                        module.finding(
                            node,
                            self,
                            f"{name}() constructed without a seed in "
                            f"'{qualname}': pass an explicit seed",
                        )
                    )
            elif name.startswith("numpy.random."):
                findings.append(
                    module.finding(
                        node,
                        self,
                        f"{name}() uses numpy's global RNG in "
                        f"'{qualname}': use a seeded "
                        "default_rng(seed) generator",
                    )
                )
            elif name.startswith("random."):
                findings.append(
                    module.finding(
                        node,
                        self,
                        f"{name}() uses the global random module RNG "
                        f"in '{qualname}': use a seeded "
                        "random.Random(seed) instance",
                    )
                )
        return findings
