"""Rule modules — importing this package populates the registry."""

from . import (  # noqa: F401  - imported for their @register side effect
    async_blocking,
    determinism,
    fork_safety,
    no_sleep_tests,
    slab_mutation,
)
