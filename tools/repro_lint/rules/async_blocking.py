"""async-blocking: the serving tier must never block its event loop.

The asyncio front (``repro.engine``: http.py, batcher.py, serve.py)
carries every in-flight request on one loop thread — a single blocking
call inside an ``async def`` stalls all of them at once and blows the
p99 budget the HTTP perf gate enforces.  Kernel work belongs in the
executor (``run_in_executor``), waits belong to ``await``.

Three checks, all scoped to ``src/repro/engine/``:

* inside any ``async def``: calls to the blocking set — ``time.sleep``,
  anything in ``sqlite3``, blocking ``socket`` constructors/lookups,
  ``subprocess``/``os.system``, synchronous file I/O via builtin
  ``open`` — are findings (nested ``def`` bodies are skipped: they are
  values, typically shipped to an executor, not loop-thread code);
* ``time.sleep`` anywhere in the engine tier, sync paths included: the
  serving tier coordinates with conditions, selectors and futures,
  never by napping (this is what caught the sharded router's
  ``wait_for_respawn`` busy-wait);
* ``while`` loops whose condition reads a clock (``time.monotonic`` /
  ``perf_counter`` / ``time.time``) — deadline polling; wait on the
  event being signalled instead.
"""

from __future__ import annotations

import ast
from typing import List, Mapping

from ..base import LintModule, Rule, dotted_name, register, walk_functions
from ..findings import Finding

_BLOCKING_CALLS = (
    "time.sleep",
    "socket.socket",
    "socket.create_connection",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "os.system",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "urllib.request.urlopen",
    "open",
)
_BLOCKING_PREFIXES = ("sqlite3.",)
_CLOCKS = (
    "time.monotonic",
    "time.perf_counter",
    "time.time",
    "time.monotonic_ns",
    "time.perf_counter_ns",
    "time.time_ns",
)


def _iter_scope(node: ast.AST):
    """Walk *node* without descending into nested function bodies."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(child))


@register
class AsyncBlockingRule(Rule):
    name = "async-blocking"
    description = (
        "no blocking calls (time.sleep, sqlite3, socket, subprocess, "
        "sync file I/O) on the asyncio serving tier"
    )
    rationale = (
        "every in-flight request rides one event loop; a blocking call "
        "stalls them all and breaks the serving latency budget"
    )
    default_paths = ("src/repro/engine",)
    default_options = {
        "blocking_calls": _BLOCKING_CALLS,
        "blocking_prefixes": _BLOCKING_PREFIXES,
    }

    def check(
        self, module: LintModule, options: Mapping[str, object]
    ) -> List[Finding]:
        blocking = tuple(options["blocking_calls"])
        prefixes = tuple(options["blocking_prefixes"])
        findings: List[Finding] = []

        def blocking_name(call: ast.Call):
            name = dotted_name(call.func, module.imports)
            if name is None:
                return None
            if name in blocking or any(name.startswith(p) for p in prefixes):
                return name
            return None

        for qualname, function in walk_functions(module.tree):
            is_async = isinstance(function, ast.AsyncFunctionDef)
            for node in _iter_scope(function):
                if isinstance(node, ast.Call):
                    name = blocking_name(node)
                    if name is None:
                        continue
                    if name == "time.sleep" and not is_async:
                        findings.append(
                            module.finding(
                                node,
                                self,
                                f"time.sleep in '{qualname}': the serving "
                                "tier never naps — wait on a condition, "
                                "selector or future instead",
                            )
                        )
                    elif is_async:
                        findings.append(
                            module.finding(
                                node,
                                self,
                                f"blocking call {name}() inside async "
                                f"'{qualname}' stalls the event loop; "
                                "await it or run_in_executor",
                            )
                        )
                elif isinstance(node, ast.While):
                    for sub in ast.walk(node.test):
                        if (
                            isinstance(sub, ast.Call)
                            and dotted_name(sub.func, module.imports)
                            in _CLOCKS
                        ):
                            findings.append(
                                module.finding(
                                    node,
                                    self,
                                    f"clock-polling loop in '{qualname}': "
                                    "busy-waiting on a deadline; wait on "
                                    "the event being signalled instead",
                                )
                            )
                            break
        return findings
