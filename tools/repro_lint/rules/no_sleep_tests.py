"""no-sleep-tests: the test suite is deterministic — no naps, no clock
polling.

The PR 4/5 failure-injection harness was built so every race the HTTP
and sharded tiers can exhibit is *forced*, not waited for: FaultInjector
gates park requests, ``wait_for_inflight`` / ``wait_for_respawn`` block
on conditions, and drain ordering is asserted on events.  A
``time.sleep`` in a test reintroduces the flake class that discipline
eliminated (too short: racy on loaded CI; too long: dead time multiplied
by every run), and a wall-clock polling loop is the same nap in a trench
coat.

Flags, scoped to ``tests/``: any ``time.sleep`` call, and any ``while``
loop whose condition reads a clock (``time.monotonic`` /
``time.perf_counter`` / ``time.time`` / ``datetime.now``).
``asyncio.sleep(0)`` yields are fine and not flagged.
"""

from __future__ import annotations

import ast
from typing import List, Mapping

from ..base import LintModule, Rule, dotted_name, register
from ..findings import Finding

_CLOCKS = (
    "time.monotonic",
    "time.perf_counter",
    "time.time",
    "time.monotonic_ns",
    "time.perf_counter_ns",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
)


@register
class NoSleepTestsRule(Rule):
    name = "no-sleep-tests"
    description = "no time.sleep or wall-clock polling loops in tests"
    rationale = (
        "deterministic tests force races with injection hooks and "
        "condition waits; sleeps reintroduce flakes and dead time"
    )
    default_paths = ("tests",)
    default_excludes = ("tests/lint/fixtures",)

    def check(
        self, module: LintModule, options: Mapping[str, object]
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if dotted_name(node.func, module.imports) == "time.sleep":
                    findings.append(
                        module.finding(
                            node,
                            self,
                            "time.sleep in a test: force the state with "
                            "an injection hook or wait on a condition "
                            "(see tests/http_harness.py)",
                        )
                    )
            elif isinstance(node, ast.While):
                for sub in ast.walk(node.test):
                    if (
                        isinstance(sub, ast.Call)
                        and dotted_name(sub.func, module.imports) in _CLOCKS
                    ):
                        findings.append(
                            module.finding(
                                node,
                                self,
                                "wall-clock polling loop in a test: wait "
                                "on the event being signalled instead of "
                                "spinning on a deadline",
                            )
                        )
                        break
        return findings
