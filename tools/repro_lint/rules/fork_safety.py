"""fork-safety: the sharded router forks before it threads.

``ShardedEngine`` builds one warm engine and **forks** N workers from
it; fork copies only the calling thread.  A thread or executor running
— or a lock held — when the fork happens leaves the child with a
corpse: a mutex locked by a thread that no longer exists deadlocks the
worker on first touch.  That is why the warm-up path (``__init__`` up
to the ``_Shard`` forks, ``from_store``, slab placement) must neither
spawn threads nor take locks, and why ``_worker_loop`` (the child) must
stay single-threaded: the engine's caches are not thread-safe and the
greedy pipe drain relies on there being exactly one consumer.

Flags, inside the configured pre-fork functions and at module import
level: thread/executor/timer creation, ``.acquire()`` calls, and
``with``-blocks over lock-looking objects (name ends in ``lock`` /
``mutex``).  Creating an *unheld* ``threading.Lock`` object is fine and
not flagged — the hazard is acquisition or a live thread, not the
object.
"""

from __future__ import annotations

import ast
from typing import List, Mapping

from ..base import LintModule, Rule, dotted_name, register, walk_functions
from ..findings import Finding

_THREAD_FACTORIES = (
    "threading.Thread",
    "threading.Timer",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.pool.ThreadPool",
    "multiprocessing.Pool",
)

_PREFORK = (
    "ShardedEngine.__init__",
    "ShardedEngine.from_store",
    "ShardedEngine._place_slabs",
    "_worker_loop",
)


def _lockish(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute):
        ident = node.attr
    elif isinstance(node, ast.Name):
        ident = node.id
    else:
        return False
    ident = ident.lower()
    return ident.endswith("lock") or ident.endswith("mutex")


@register
class ForkSafetyRule(Rule):
    name = "fork-safety"
    description = (
        "no thread/executor creation or lock acquisition on the "
        "pre-fork warm-up path or in the single-threaded worker loop"
    )
    rationale = (
        "fork copies only the calling thread; a thread running or a "
        "lock held at fork time deadlocks or corrupts the worker"
    )
    default_paths = ("src/repro/engine/sharded.py",)
    default_options = {"prefork_functions": _PREFORK}

    def check(
        self, module: LintModule, options: Mapping[str, object]
    ) -> List[Finding]:
        prefork = tuple(options["prefork_functions"])
        findings: List[Finding] = []

        def scan(qualname: str, body_root: ast.AST) -> None:
            for node in ast.walk(body_root):
                if isinstance(node, ast.Call):
                    name = dotted_name(node.func, module.imports)
                    if name in _THREAD_FACTORIES:
                        findings.append(
                            module.finding(
                                node,
                                self,
                                f"{name} created on the pre-fork path "
                                f"'{qualname}': threads must not exist "
                                "when workers fork",
                            )
                        )
                    elif (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "acquire"
                        and _lockish(node.func.value)
                    ):
                        findings.append(
                            module.finding(
                                node,
                                self,
                                f"lock acquired on the pre-fork path "
                                f"'{qualname}': a lock held at fork time "
                                "deadlocks the child",
                            )
                        )
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        expr = item.context_expr
                        if isinstance(expr, ast.Call):
                            expr = expr.func
                        if _lockish(expr):
                            findings.append(
                                module.finding(
                                    node,
                                    self,
                                    f"with-block over a lock on the "
                                    f"pre-fork path '{qualname}': a lock "
                                    "held at fork time deadlocks the "
                                    "child",
                                )
                            )

        functions = dict(walk_functions(module.tree))
        for qualname in prefork:
            function = functions.get(qualname)
            if function is not None:
                scan(qualname, function)
        # Module import level runs before any fork by definition.
        for statement in module.tree.body:
            if not isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                scan("<module>", statement)
        return findings
