"""slab-mutation: arrays adopted from a SlabStore are shared — never
write them in place.

After ``ConnectionIndex.adopt_slab_store`` / ``SlabStore.get`` the CSR
evidence slabs and the proximity transition arrays are views over
POSIX-shm segments or mmap'd sidecar files that every forked worker
maps.  One in-place numpy write (`arr[...] = x`, ``+=``, ``out=``,
``.sort()``) from any process silently corrupts the answers of all of
them — the exact bit-identity the sharded oracle sweep certifies.  The
runtime backstop sets ``writeable = False`` on adopted arrays; this
rule catches the write before it ever runs.

Detection is taint-based per function scope: values coming out of a
slab store (``<*store*>.get(...)``, ``.arrays()`` bundles,
``.slab(...)`` lookups, parameters named ``arrays`` / ``warm`` /
``adopted`` — the adoption and delta-application entry points'
signature conventions) are tainted; taint follows plain assignment,
subscripting and attribute access (``warm.node_activity`` is the
adopted slab's array, and so is any alias of it), while ``.copy()``
launders — a private copy is the sanctioned way to mutate.  Flagged on
tainted values: subscript stores, augmented assignment, mutating
method calls (``sort`` / ``fill`` / ``resize`` / ``partition`` /
``put`` / ``setflags`` / ``byteswap``), and passing one as ``out=``.

The delta-application paths make this load-bearing: incremental
maintenance (``ConnectionIndex.apply_delta`` warm-reseeding,
``ProximityIndex.apply_delta`` row patches) runs against indexes whose
arrays may be adopted shm/mmap views, so every patch must be
copy-on-write — build fresh arrays, swap references, never write the
old ones.
"""

from __future__ import annotations

import ast
from typing import List, Mapping, Set

from ..base import LintModule, Rule, dotted_name, register, walk_functions
from ..findings import Finding

_MUTATORS = (
    "sort",
    "fill",
    "resize",
    "partition",
    "put",
    "setflags",
    "byteswap",
    "setfield",
)

#: a ``.get(...)`` receiver whose final identifier contains one of these
#: substrings is treated as a slab store
_STORE_HINTS = ("store", "slab")

_TAINTED_PARAMS = ("arrays", "slab_arrays", "warm", "adopted")

#: method calls whose *name* marks the receiver as handing out slab
#: arrays, wherever it lives (``slab.arrays()``, ``index.slab(ident)``)
_SOURCE_METHODS = ("arrays", "slab")


def _receiver_hint(func: ast.expr) -> bool:
    """True for ``<receiver>.get`` where the receiver looks like a store."""
    if not (isinstance(func, ast.Attribute) and func.attr == "get"):
        return False
    base = func.value
    if isinstance(base, ast.Attribute):
        ident = base.attr
    elif isinstance(base, ast.Name):
        ident = base.id
    else:
        return False
    ident = ident.lower()
    return any(hint in ident for hint in _STORE_HINTS)


def _is_taint_source(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _SOURCE_METHODS:
            return True
        return _receiver_hint(func)
    return False


class _Scope:
    """Taint state of one function body."""

    def __init__(self, tainted: Set[str]):
        self.tainted = tainted

    def is_tainted(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Attribute):
            # A field of a tainted slab handle (``warm.node_activity``)
            # is one of its adopted arrays.
            return self.is_tainted(node.value)
        if isinstance(node, ast.expr) and _is_taint_source(node):
            return True
        return False

    def absorb(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name) and self.is_tainted(value):
            self.tainted.add(target.id)
        elif isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple):
            for sub_target, sub_value in zip(target.elts, value.elts):
                self.absorb(sub_target, sub_value)


@register
class SlabMutationRule(Rule):
    name = "slab-mutation"
    description = (
        "no in-place numpy mutation of arrays adopted from a SlabStore "
        "(shm/mmap slabs are shared across forked workers)"
    )
    rationale = (
        "adopted slabs are one physical copy mapped by every worker; an "
        "in-place write corrupts all shards' answers at once"
    )
    default_paths = ("src",)
    default_options = {"tainted_params": _TAINTED_PARAMS}

    def check(
        self, module: LintModule, options: Mapping[str, object]
    ) -> List[Finding]:
        tainted_params = tuple(options["tainted_params"])
        findings: List[Finding] = []

        for qualname, function in walk_functions(module.tree):
            args = function.args
            names = [
                arg.arg
                for group in (args.posonlyargs, args.args, args.kwonlyargs)
                for arg in group
            ]
            scope = _Scope({name for name in names if name in tainted_params})
            for node in ast.walk(function):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        scope.absorb(target, node.value)
                        if isinstance(
                            target, ast.Subscript
                        ) and scope.is_tainted(target.value):
                            findings.append(
                                module.finding(
                                    target,
                                    self,
                                    f"in-place write to a slab-store array "
                                    f"in '{qualname}': adopted slabs are "
                                    "shared read-only across workers — "
                                    "copy before mutating",
                                )
                            )
                elif isinstance(node, ast.AugAssign):
                    target = node.target
                    base = (
                        target.value
                        if isinstance(target, ast.Subscript)
                        else target
                    )
                    if scope.is_tainted(base):
                        findings.append(
                            module.finding(
                                node,
                                self,
                                f"augmented assignment to a slab-store "
                                f"array in '{qualname}': shared slabs are "
                                "immutable — copy before mutating",
                            )
                        )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _MUTATORS
                        and scope.is_tainted(func.value)
                    ):
                        findings.append(
                            module.finding(
                                node,
                                self,
                                f".{func.attr}() mutates a slab-store "
                                f"array in place in '{qualname}'; use the "
                                "copying variant (np.sort, ...) instead",
                            )
                        )
                    for keyword in node.keywords:
                        if keyword.arg == "out" and scope.is_tainted(
                            keyword.value
                        ):
                            findings.append(
                                module.finding(
                                    node,
                                    self,
                                    f"out= targets a slab-store array in "
                                    f"'{qualname}': the result would be "
                                    "written into shared memory",
                                )
                            )
        return findings
