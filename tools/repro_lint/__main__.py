"""CLI: ``python -m tools.repro_lint [paths...]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .config import default_config
from .findings import format_findings
from .runner import lint_paths


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description=(
            "Project-specific static analysis: concurrency, fork-safety "
            "and bit-identity invariants of the S3k serving stack."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root the path scopes are anchored to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    arguments = parser.parse_args(argv)

    config = default_config()
    if arguments.list_rules:
        from .base import registered_rules

        for name, rule in sorted(registered_rules().items()):
            scope = config.scope(name)
            paths = ", ".join(scope.paths) if scope and scope.paths else "-"
            print(f"{name}: {rule.description}")
            print(f"    why:   {rule.rationale}")
            print(f"    scope: {paths}")
        return 0
    if arguments.select:
        try:
            config = config.select(arguments.select)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2

    try:
        findings = lint_paths(
            arguments.paths, config=config, root=Path(arguments.root)
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if findings:
        print(format_findings(findings))
        return 1
    print("repro-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
