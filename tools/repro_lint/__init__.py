"""repro-lint: project-specific static analysis for the S3k stack.

The serving stack's hardest-won guarantees — bit-identical answers
across batching and sharding, read-only shared slabs, fork-before-
thread worker spawning, deterministic no-sleep tests — are conventions
a reviewer can miss.  This package turns each one into an AST-checked,
CI-failing rule.  Run it from the repo root::

    python -m tools.repro_lint src tests

Exit status is non-zero when any finding survives; suppress a
deliberate exception with ``# repro-lint: disable=<rule>`` on (or
directly above) the offending line.  See CONTRIBUTING.md for the rule
catalogue and the invariants behind it.
"""

from .base import Rule, registered_rules
from .config import LintConfig, RuleScope, default_config
from .findings import Finding, format_findings
from .runner import lint_file, lint_paths

__all__ = [
    "Finding",
    "LintConfig",
    "Rule",
    "RuleScope",
    "default_config",
    "format_findings",
    "lint_file",
    "lint_paths",
    "registered_rules",
]
