"""Business-review search on the Yelp-shaped instance, with persistence.

Shows the full production path: generate an I3-shaped instance (friend
edges, review chains, semantic enrichment), persist it to SQLite (the
paper kept documents and RDF in an SQL store), reload, and serve top-k
queries for different seekers — demonstrating how results are personalized
by the social neighborhood.

Run:  python examples/review_search.py
"""

import tempfile
from pathlib import Path

from repro.core import S3kSearch
from repro.datasets import YelpConfig, build_yelp_instance, compute_stats
from repro.eval import format_table
from repro.queries import WorkloadBuilder, connected_seekers
from repro.storage import SQLiteStore


def main() -> None:
    dataset = build_yelp_instance(YelpConfig(n_users=150, n_businesses=30, n_reviews=250, seed=3))
    instance = dataset.instance
    print(f"generated: {dataset.n_businesses} businesses, {dataset.n_reviews} reviews")

    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "yelp.db"
        with SQLiteStore(db_path) as store:
            store.save_instance(instance)
            print(f"persisted {store.triple_count()} triples to {db_path.name}")
        with SQLiteStore(db_path) as store:
            instance = store.load_instance()
        print("reloaded instance:", instance)

    engine = S3kSearch(instance)
    builder = WorkloadBuilder(instance, seed=5)
    keyword = builder.build("+", 1, 5, 1).queries[0].keywords[0]

    print(f"\nTop-3 reviews for keyword {keyword!r}, per seeker:")
    rows = []
    for seeker in connected_seekers(instance)[:4]:
        result = engine.search(seeker, [keyword], k=3)
        rows.append(
            [
                str(seeker),
                ", ".join(str(u) for u in result.uris) or "(none)",
                result.iterations,
            ]
        )
    print(format_table(["seeker", "top-3 fragments", "steps"], rows))
    print("\nDifferent seekers see different rankings: the social dimension")
    print("of the score personalizes results to each user's neighborhood.")


if __name__ == "__main__":
    main()
