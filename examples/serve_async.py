"""Async serving: concurrent seekers through the micro-batching Engine.

Builds a small Twitter-shaped instance, then plays a burst of concurrent
queries — several of them duplicates, as trending traffic produces —
through ``await engine.asearch(...)``.  The Engine's Batcher accumulates
the concurrent requests into micro-batches under a 5 ms deadline,
collapses the duplicates onto one computation, and dispatches each
micro-batch to the lock-step kernel; every answer is bit-identical to a
sequential ``engine.search``.

Run:  PYTHONPATH=src python examples/serve_async.py
"""

import asyncio

from repro import Engine, EngineConfig
from repro.datasets import TwitterConfig, build_twitter_instance


async def main() -> None:
    instance = build_twitter_instance(
        TwitterConfig(n_users=60, n_statuses=180, seed=7)
    ).instance
    engine = Engine(
        instance,
        config=EngineConfig(max_batch_size=8, batch_deadline=0.005),
    ).warm()

    # A burst of concurrent seekers; tw:u0's query is trending (x3).
    burst = [
        ("tw:u0", ["w0"], 3),
        ("tw:u1", ["w1"], 3),
        ("tw:u0", ["w0"], 3),
        ("tw:u2", ["w0", "w2"], 3),
        ("tw:u3", ["w1"], 3),
        ("tw:u0", ["w0"], 3),
    ]
    print(f"submitting {len(burst)} concurrent requests ...\n")
    responses = await asyncio.gather(*[engine.asearch(query) for query in burst])

    for query, response in zip(burst, responses):
        marker = "collapsed" if response.collapsed else f"batch of {response.batch_size}"
        print(
            f"  {query[0]} {query[1]} -> "
            f"{[str(uri) for uri in response.uris]}  "
            f"({response.latency_seconds * 1e3:.1f} ms, {marker}, "
            f"{response.flush_reason} flush)"
        )
        # The async path returns exactly what the sync facade returns.
        assert response.result.results == engine.search(query).result.results

    batcher = engine.stats()["batcher"]
    print(
        f"\n{batcher['submitted']} submitted -> {batcher['computed']} computed "
        f"in {batcher['batches']} micro-batches "
        f"(collapse rate {batcher['collapse_rate']:.2f}, "
        f"{batcher['deadline_flushes']} deadline / "
        f"{batcher['size_flushes']} size flushes)"
    )
    await engine.aclose()


if __name__ == "__main__":
    asyncio.run(main())
