"""Quickstart: build a small S3 instance by hand and search it.

Recreates the paper's motivating example (Figure 1): an article, a reply,
a comment on a fragment, a keyword tag and a small knowledge base — then
asks the query the introduction walks through: u1 looking for university
graduates.

Run:  python examples/quickstart.py
"""

from repro import Engine, S3Instance, Tag, URI
from repro.documents import Document, build_document
from repro.rdf import RDFS_SUBCLASS, Literal


def build_instance() -> S3Instance:
    instance = S3Instance()

    # Users and explicit social connections (R0).
    for user in ("u0", "u1", "u2", "u3", "u4"):
        instance.add_user(user)
    instance.add_social_edge("u1", "u0", 1.0, relation="hasFriend")
    instance.add_social_edge("u0", "u1", 1.0, relation="hasFriend")

    # d0: a structured article (R2) posted by u0.
    d0 = build_document("d0", "article")
    for i in range(1, 6):
        section = d0.add_child(URI(f"d0.{i}"), "section")
        if i == 3:
            section.add_child(URI("d0.3.1"), "para", ["opinion"])
            section.add_child(URI("d0.3.2"), "para", ["debate"])
        if i == 5:
            section.add_child(URI("d0.5.1"), "para", ["campus"])
    instance.add_document(Document(d0), posted_by="u0")

    # d1 replies to d0 (R1): "When I got my M.S. @UAlberta in 2012..."
    # The entity kb:MS was recognized in the text (semantic enrichment).
    d1 = build_document("d1", "text", [URI("kb:MS"), "ualberta", "2012"])
    instance.add_document(Document(d1), posted_by="u2")
    instance.add_comment_edge("d1", "d0", relation="repliesTo")

    # d2 comments on the fragment d0.3.2: "A degree does give more..."
    d2 = build_document("d2", "text", ["degre", "give", "opportun"])
    instance.add_document(Document(d2), posted_by="u3")
    instance.add_comment_edge("d2", "d0.3.2")

    # u4 tags the fragment d0.5.1 with "university" (R0/R4).
    instance.add_tag(Tag(URI("t:u4"), URI("d0.5.1"), URI("u4"), keyword="university"))

    # Knowledge base (R3): an M.S. is a degree.
    instance.add_knowledge([(URI("kb:MS"), RDFS_SUBCLASS, Literal("degre"))])

    instance.saturate()
    return instance


def main() -> None:
    instance = build_instance()
    print(instance)

    # The Engine facade owns the kernel, indexes and caches; it answers
    # queries synchronously here (see serve_async.py for the async path).
    engine = Engine(instance)

    print("\nQuery: u1 searches for 'degre' (think: university graduates)")
    result = engine.search("u1", ["degre"], k=3).result
    for rank, item in enumerate(result.results, start=1):
        print(f"  {rank}. {item.uri}   score ∈ [{item.lower:.4f}, {item.upper:.4f}]")
    print(
        f"  ({result.iterations} exploration steps, "
        f"terminated by {result.terminated_by})"
    )
    print(
        "  -> d1 is found because kb:MS ≺sc 'degre' (semantics) and it\n"
        "     replies to the article of u1's friend u0 (social + links)."
    )

    print("\nSame query without semantic extension:")
    plain = engine.search("u1", ["degre"], k=3, semantic=False).result
    for rank, item in enumerate(plain.results, start=1):
        print(f"  {rank}. {item.uri}   score ∈ [{item.lower:.4f}, {item.upper:.4f}]")
    missing = set(result.uris) - set(plain.uris)
    print(f"  -> results lost without the knowledge base: {sorted(missing)}")

    print("\nBatched execution: several seekers answered in lock-step")
    queries = [
        ("u1", ["degre"]),
        ("u0", ["debate"], 3),
        ("u4", ["university"]),
        ("u1", ["degre"]),  # duplicate in-flight query: coalesced
    ]
    for response in engine.search_many(queries, k=3):
        batched = response.result
        print(
            f"  #{batched.batch_index} {batched.seeker} "
            f"{[str(kw) for kw in batched.keywords]} -> "
            f"{[str(u) for u in batched.uris]}  "
            f"({batched.wall_time * 1e3:.1f} ms)"
        )
    print(
        "  -> identical results to search(), one T^T @ B mat-mat step per\n"
        "     iteration for the whole batch, shared keyword fixpoints."
    )


if __name__ == "__main__":
    main()
