"""Microblog (Twitter-like) search: S3k vs the TopkS baseline.

Generates an I1-shaped instance (retweets as tags, replies as comments,
similarity-based social edges, DBpedia-like enrichment), runs the same
queries through S3k and through TopkS over the flattened UIT view, and
prints the qualitative comparison of Section 5.4.

Run:  python examples/microblog_search.py
"""

from repro.baselines import TopkSSearcher, uit_from_instance
from repro.core import S3kSearch
from repro.datasets import TwitterConfig, build_twitter_instance, compute_stats
from repro.eval import compare_engines, format_table
from repro.queries import WorkloadBuilder


def main() -> None:
    config = TwitterConfig(n_users=200, n_statuses=600, seed=42)
    dataset = build_twitter_instance(config)
    instance = dataset.instance

    print("Instance statistics (cf. the paper's Figure 4):")
    rows = [[name, value] for name, value in compute_stats(instance).rows().items()]
    print(format_table(["statistic", "value"], rows))
    print(
        f"\nstatuses={dataset.n_tweets}  retweets={dataset.n_retweets} "
        f"({dataset.n_retweets / dataset.n_tweets:.0%})  replies={dataset.n_replies}"
    )

    engine = S3kSearch(instance)
    uit, doc_to_item = uit_from_instance(instance, engine.component_index)
    topks = TopkSSearcher(uit, alpha=0.5)

    builder = WorkloadBuilder(instance, seed=7)
    workload = builder.build("+", 1, 5, 5)
    print(f"\nSample workload {workload.name}:")
    for spec in workload.queries[:3]:
        s3k = engine.search(spec.seeker, spec.keywords, k=spec.k)
        base = topks.search(str(spec.seeker), [str(k) for k in spec.keywords], k=spec.k)
        print(f"\n  seeker={spec.seeker} keywords={[str(k) for k in spec.keywords]}")
        print(f"    S3k  : {[str(u) for u in s3k.uris]}")
        print(f"    TopkS: {base.items}")

    print("\nQualitative comparison (Figure 8 measures, averaged):")
    report = compare_engines(engine, [workload, builder.build("-", 1, 5, 5)])
    print(format_table(["measure", "value"], list(report.rows().items())))


if __name__ == "__main__":
    main()
