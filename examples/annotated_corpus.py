"""Annotated corpus: higher-level tags, endorsements and NLP annotations.

Requirement R4 of the paper: tags may apply to tags themselves — e.g. an
annotation produced by an NLP tool, later validated (endorsed) by an
expert, or further annotated with a topic.  This example shows how those
higher-level annotations flow into query answers: the expert's validation
makes the annotated fragment rank higher for seekers close to the expert.

Run:  python examples/annotated_corpus.py
"""

from repro import S3Instance, S3kSearch, Tag, URI
from repro.documents import parse_xml
from repro.rdf import Literal, RDFS_SUBCLASS


def main() -> None:
    instance = S3Instance()
    for user in ("curator", "expert", "nlp-bot", "reader"):
        instance.add_user(f"u:{user}")
    instance.add_social_edge("u:reader", "u:expert", 0.9)
    instance.add_social_edge("u:expert", "u:reader", 0.9)
    instance.add_social_edge("u:reader", "u:curator", 0.2)

    # Two corpus documents with identical structure.
    paper_a = parse_xml(
        "doc:a",
        "<article><abstract>protein folding dynamics</abstract>"
        "<body>simulation of molecular structures</body></article>",
    )
    paper_b = parse_xml(
        "doc:b",
        "<article><abstract>protein synthesis pathways</abstract>"
        "<body>metabolic network analysis</body></article>",
    )
    instance.add_document(paper_a, posted_by="u:curator")
    instance.add_document(paper_b, posted_by="u:curator")

    # The NLP tool annotates both abstracts with a typed tag
    # (NLP:recognize ≺sc S3:relatedTo).
    nlp_type = URI("NLP:recognize")
    instance.add_tag(
        Tag(URI("t:nlp-a"), URI("doc:a.1"), URI("u:nlp-bot"), "biologi", nlp_type)
    )
    instance.add_tag(
        Tag(URI("t:nlp-b"), URI("doc:b.1"), URI("u:nlp-bot"), "biologi", nlp_type)
    )

    # The expert *endorses* (validates) only the annotation on doc:a —
    # a tag on a tag, carrying provenance-style information (R4).
    instance.add_tag(Tag(URI("t:check"), URI("t:nlp-a"), URI("u:expert")))

    # A tiny ontology: biology is a science.
    instance.add_knowledge([(URI("kb:biology"), RDFS_SUBCLASS, Literal("scienc"))])
    instance.saturate()

    engine = S3kSearch(instance)
    result = engine.search("u:reader", ["biologi"], k=2)
    print("Query: reader searches 'biologi' (stemmed 'biology')")
    for rank, item in enumerate(result.results, start=1):
        print(f"  {rank}. {item.uri}  score ∈ [{item.lower:.4f}, {item.upper:.4f}]")
    print(
        "\nBoth abstracts carry the same NLP annotation, but the expert's\n"
        "validation tag (a tag ON a tag) injects the expert as a connection\n"
        "source for doc:a — and the reader is socially close to the expert,\n"
        "so doc:a ranks first."
    )
    assert result.uris[0] in (URI("doc:a"), URI("doc:a.1"))


if __name__ == "__main__":
    main()
