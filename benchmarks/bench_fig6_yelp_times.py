"""Figure 6: query answering times on I3 (Yelp).

Same grid as Figure 5 — 8 workloads × S3k γ ∈ {1.25, 1.5, 2} × TopkS
α ∈ {0.25, 0.5, 0.75} — on the Yelp-shaped instance with its long review
chains (large components).
"""

from typing import Dict, Tuple

import pytest

from repro.eval import format_table
from repro.queries import WorkloadBuilder, run_workload, engine_runner, topks_runner

from benchmarks.conftest import QUERIES_PER_WORKLOAD, write_result

WORKLOAD_GRID = [(f, l, k) for f in ("+", "-") for l in (1, 5) for k in (5, 10)]
S3K_GAMMAS = (1.25, 1.5, 2.0)
TOPKS_ALPHAS = (0.75, 0.5, 0.25)

MEDIANS: Dict[Tuple[str, str], float] = {}


def _workload(instance, f, l, k):
    return WorkloadBuilder(instance, seed=29).build(f, l, k, QUERIES_PER_WORKLOAD)


@pytest.mark.parametrize("f,l,k", WORKLOAD_GRID)
@pytest.mark.parametrize("gamma", S3K_GAMMAS)
def test_s3k_workload(benchmark, yelp_instance, engines, f, l, k, gamma):
    engine = engines.s3k(yelp_instance, gamma=gamma)
    workload = _workload(yelp_instance, f, l, k)
    summary = benchmark.pedantic(
        run_workload, args=(engine_runner(engine), workload), rounds=1, iterations=1
    )
    MEDIANS[(f"S3k γ={gamma}", workload.name)] = summary.median
    assert summary.times


@pytest.mark.parametrize("f,l,k", WORKLOAD_GRID)
@pytest.mark.parametrize("alpha", TOPKS_ALPHAS)
def test_topks_workload(benchmark, yelp_instance, engines, f, l, k, alpha):
    searcher = engines.topks(yelp_instance, alpha=alpha)
    workload = _workload(yelp_instance, f, l, k)
    summary = benchmark.pedantic(
        run_workload, args=(topks_runner(searcher), workload), rounds=1, iterations=1
    )
    MEDIANS[(f"TopkS α={alpha}", workload.name)] = summary.median
    assert summary.times


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    engine_order = [f"S3k γ={g}" for g in S3K_GAMMAS] + [
        f"TopkS α={a}" for a in TOPKS_ALPHAS
    ]
    rows = []
    for f, l, k in WORKLOAD_GRID:
        name = f"qset({f},{l},{k})"
        rows.append(
            [name]
            + [f"{MEDIANS.get((e, name), float('nan')) * 1000:.1f}" for e in engine_order]
        )
    write_result(
        "fig6_yelp_times",
        format_table(
            ["workload"] + [f"{e} (ms)" for e in engine_order],
            rows,
            title="Figure 6 — median query time on I3 (ms)",
        ),
    )
    assert MEDIANS
