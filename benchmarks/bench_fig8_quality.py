"""Figure 8: qualitative comparison of S3k and TopkS answers.

Reproduces the four measures — graph reachability, semantic reachability,
L1 (normalized Spearman foot-rule) and intersection size — averaged over
workloads on each instance, next to the paper's values:

================  =====  =====  =====
measure           I1     I2     I3
================  =====  =====  =====
Graph reach.      12%    23%    41%
Semantic reach.   83%    100%   78%
L1                8%     10%    4%
Intersection      13.7%  18.4%  5.6%
================  =====  =====  =====

Shape expectations: I2's semantic reachability is exactly 100% (no KB);
I1/I3 are below 100%; graph reachability is non-zero everywhere a KB or
comment structure lets S3k reach items TopkS cannot; intersections are
partial.  (The paper's normalization constant for L1 is not given — see
EXPERIMENTS.md — so we report our [0,1]-normalized foot-rule.)
"""

import pytest

from repro.eval import compare_engines, format_table
from repro.queries import WorkloadBuilder

from benchmarks.conftest import write_result

PAPER = {
    "I1": {"Graph reachability": "12%", "Semantic reachability": "83%",
           "L1": "8%", "Intersection size": "13.7%"},
    "I2": {"Graph reachability": "23%", "Semantic reachability": "100%",
           "L1": "10%", "Intersection size": "18.4%"},
    "I3": {"Graph reachability": "41%", "Semantic reachability": "78%",
           "L1": "4%", "Intersection size": "5.6%"},
}

REPORTS = {}


@pytest.mark.parametrize("name", ["I1", "I2", "I3"])
def test_quality_measures(
    benchmark, name, twitter_instance, vodkaster_instance, yelp_instance, engines
):
    instance = {
        "I1": twitter_instance,
        "I2": vodkaster_instance,
        "I3": yelp_instance,
    }[name]
    engine = engines.s3k(instance)
    builder = WorkloadBuilder(instance, seed=43)
    workloads = [
        builder.build("+", 1, 5, 5),
        builder.build("-", 1, 5, 5),
        builder.build("+", 5, 5, 3),
        builder.build("-", 5, 10, 3),
    ]
    report = benchmark.pedantic(
        compare_engines, args=(engine, workloads), rounds=1, iterations=1
    )
    REPORTS[name] = report
    assert report.queries == 16
    if name == "I2":
        # No knowledge base on Vodkaster: extension changes nothing.
        assert report.semantic_reachability == pytest.approx(1.0)
    else:
        assert report.semantic_reachability <= 1.0


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    measures = [
        "Graph reachability",
        "Semantic reachability",
        "L1",
        "Intersection size",
    ]
    rows = []
    for measure in measures:
        row = [measure]
        for name in ("I1", "I2", "I3"):
            paper = PAPER[name][measure]
            measured = REPORTS[name].rows()[measure] if name in REPORTS else "n/a"
            row.append(f"{paper} / {measured}")
        rows.append(row)
    write_result(
        "fig8_quality",
        format_table(
            ["measure", "I1 paper/ours", "I2 paper/ours", "I3 paper/ours"],
            rows,
            title="Figure 8 — S3k vs TopkS (paper / measured)",
        ),
    )
    assert REPORTS
