"""Figure 5: query answering times on I1 (Twitter).

The paper plots, for each of the 8 workloads ``qset_{f,l,k}``, the median
run time of S3k with γ ∈ {1.25, 1.5, 2} and of TopkS with α ∈ {0.25, 0.5,
0.75}.  Expected shapes (paper §5.3): TopkS consistently faster than S3k
(it follows a single shortest path instead of aggregating all paths);
smaller γ → faster S3k; larger α → slower TopkS; rare-keyword workloads
faster than frequent ones.
"""

from typing import Dict, Tuple

import pytest

from repro.eval import format_table
from repro.queries import WorkloadBuilder, run_workload, engine_runner, topks_runner

from benchmarks.conftest import QUERIES_PER_WORKLOAD, write_result

WORKLOAD_GRID = [
    (f, l, k) for f in ("+", "-") for l in (1, 5) for k in (5, 10)
]
S3K_GAMMAS = (1.25, 1.5, 2.0)
TOPKS_ALPHAS = (0.75, 0.5, 0.25)

#: (engine label, workload label) -> median seconds; filled by the
#: parametrized benches, reported by the final test of the module.
MEDIANS: Dict[Tuple[str, str], float] = {}


def _workload(instance, f, l, k):
    builder = WorkloadBuilder(instance, seed=23)
    return builder.build(f, l, k, QUERIES_PER_WORKLOAD)


@pytest.mark.parametrize("f,l,k", WORKLOAD_GRID)
@pytest.mark.parametrize("gamma", S3K_GAMMAS)
def test_s3k_workload(benchmark, twitter_instance, engines, f, l, k, gamma):
    engine = engines.s3k(twitter_instance, gamma=gamma)
    workload = _workload(twitter_instance, f, l, k)
    summary = benchmark.pedantic(
        run_workload, args=(engine_runner(engine), workload), rounds=1, iterations=1
    )
    MEDIANS[(f"S3k γ={gamma}", workload.name)] = summary.median
    assert summary.times


@pytest.mark.parametrize("f,l,k", WORKLOAD_GRID)
@pytest.mark.parametrize("alpha", TOPKS_ALPHAS)
def test_topks_workload(benchmark, twitter_instance, engines, f, l, k, alpha):
    searcher = engines.topks(twitter_instance, alpha=alpha)
    workload = _workload(twitter_instance, f, l, k)
    summary = benchmark.pedantic(
        run_workload, args=(topks_runner(searcher), workload), rounds=1, iterations=1
    )
    MEDIANS[(f"TopkS α={alpha}", workload.name)] = summary.median
    assert summary.times


def test_zz_report(benchmark):
    """Assemble the Figure 5 table from the collected medians."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    engines_order = [f"S3k γ={g}" for g in S3K_GAMMAS] + [
        f"TopkS α={a}" for a in TOPKS_ALPHAS
    ]
    workloads = [f"qset({f},{l},{k})" for f, l, k in WORKLOAD_GRID]
    rows = []
    for workload in workloads:
        rows.append(
            [workload]
            + [
                f"{MEDIANS.get((engine, workload), float('nan')) * 1000:.1f}"
                for engine in engines_order
            ]
        )
    table = format_table(
        ["workload"] + [f"{e} (ms)" for e in engines_order],
        rows,
        title="Figure 5 — median query time on I1 (ms)",
    )
    shape_notes = []
    # Shape check 1: TopkS faster than S3k on average.
    s3k_medians = [v for (e, _), v in MEDIANS.items() if e.startswith("S3k")]
    topks_medians = [v for (e, _), v in MEDIANS.items() if e.startswith("TopkS")]
    if s3k_medians and topks_medians:
        ratio = (sum(s3k_medians) / len(s3k_medians)) / max(
            sum(topks_medians) / len(topks_medians), 1e-9
        )
        shape_notes.append(
            f"avg S3k / avg TopkS = {ratio:.1f}x (paper: TopkS consistently faster)"
        )
    # Shape check 2: γ ordering for S3k.
    for small, large in ((1.25, 2.0),):
        fast = sum(v for (e, _), v in MEDIANS.items() if e == f"S3k γ={small}")
        slow = sum(v for (e, _), v in MEDIANS.items() if e == f"S3k γ={large}")
        shape_notes.append(
            f"S3k total: γ={small}: {fast * 1000:.0f}ms vs γ={large}: "
            f"{slow * 1000:.0f}ms (Definition 3.5: larger γ damps long "
            "paths harder, so exploration stops earlier)"
        )
    write_result("fig5_twitter_times", table + "\n" + "\n".join(shape_notes))
    assert MEDIANS
