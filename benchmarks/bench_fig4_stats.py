"""Figure 4: dataset statistics for the three instances.

The paper tabulates users / social edges / documents / fragments / tags /
keywords per instance, plus the retweet share for I1 and the observation
that keyword extension grows workloads by ~50%.  Absolute counts are
scale-bound (our instances are laptop-scale); the bench reports the same
rows and the scale-free ratios next to the paper's values.
"""

from statistics import fmean

import pytest

from repro.core import S3kSearch
from repro.datasets import build_twitter_instance, compute_stats
from repro.eval import format_table
from repro.queries import WorkloadBuilder

from benchmarks.conftest import I1_CONFIG, write_result


@pytest.mark.parametrize("name", ["I1", "I2", "I3"])
def test_instance_statistics(
    benchmark, name, twitter_instance, vodkaster_instance, yelp_instance
):
    instance = {
        "I1": twitter_instance,
        "I2": vodkaster_instance,
        "I3": yelp_instance,
    }[name]
    stats = benchmark.pedantic(compute_stats, args=(instance,), rounds=1, iterations=1)
    rows = [[k, v] for k, v in stats.rows().items()]
    write_result(
        f"fig4_stats_{name}", format_table(["statistic", "value"], rows, title=f"Figure 4 — {name}")
    )
    assert stats.users > 0 and stats.documents > 0


def test_retweet_and_reply_shares(benchmark):
    dataset = benchmark.pedantic(
        build_twitter_instance, args=(I1_CONFIG,), rounds=1, iterations=1
    )
    retweet_share = dataset.n_retweets / dataset.n_tweets
    reply_share = dataset.n_replies / dataset.n_tweets
    write_result(
        "fig4_shares",
        format_table(
            ["ratio", "paper", "measured"],
            [
                ["retweets / tweets", "85%", f"{retweet_share:.0%}"],
                ["replies / tweets", "6.9%", f"{reply_share:.1%}"],
            ],
            title="Figure 4 — I1 stream composition",
        ),
    )
    assert 0.7 <= retweet_share <= 0.95


def test_keyword_extension_growth(benchmark, twitter_instance, engines):
    """§5.1: 'injecting semantics ... increased their size on average by 50%'."""
    engine: S3kSearch = engines.s3k(twitter_instance)
    builder = WorkloadBuilder(twitter_instance, seed=19)
    workload = builder.build("+", 5, 5, 10)

    def growth() -> float:
        growths = []
        for spec in workload.queries:
            result = engine.search(spec.seeker, spec.keywords, k=spec.k)
            growths.append(result.extended_keyword_count / len(result.keywords))
        return fmean(growths)

    factor = benchmark.pedantic(growth, rounds=1, iterations=1)
    write_result(
        "fig4_extension_growth",
        format_table(
            ["quantity", "paper", "measured"],
            [["avg extended size / query size", "+50%", f"+{(factor - 1):.0%}"]],
            title="§5.1 — workload growth under keyword extension",
        ),
    )
    assert factor > 1.0
