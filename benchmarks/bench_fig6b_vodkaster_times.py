"""§5.3: query answering times on I2 (Vodkaster).

The paper states the results on the smaller I2 instance are "similar" to
Figures 5/6 and defers them to the technical report; this bench
regenerates them with the same grid.
"""

from typing import Dict, Tuple

import pytest

from repro.eval import format_table
from repro.queries import WorkloadBuilder, run_workload, engine_runner, topks_runner

from benchmarks.conftest import QUERIES_PER_WORKLOAD, write_result

WORKLOAD_GRID = [(f, l, k) for f in ("+", "-") for l in (1, 5) for k in (5, 10)]

MEDIANS: Dict[Tuple[str, str], float] = {}


@pytest.mark.parametrize("f,l,k", WORKLOAD_GRID)
@pytest.mark.parametrize("engine_kind", ["s3k_1.5", "s3k_2.0", "topks_0.5"])
def test_workload(benchmark, vodkaster_instance, engines, f, l, k, engine_kind):
    workload = WorkloadBuilder(vodkaster_instance, seed=31).build(
        f, l, k, QUERIES_PER_WORKLOAD
    )
    if engine_kind.startswith("s3k"):
        engine = engines.s3k(vodkaster_instance, gamma=float(engine_kind.split("_")[1]))
        runner = engine_runner(engine)
        label = f"S3k γ={engine_kind.split('_')[1]}"
    else:
        searcher = engines.topks(vodkaster_instance, alpha=0.5)
        runner = topks_runner(searcher)
        label = "TopkS α=0.5"
    summary = benchmark.pedantic(
        run_workload, args=(runner, workload), rounds=1, iterations=1
    )
    MEDIANS[(label, workload.name)] = summary.median
    assert summary.times


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    engine_order = ["S3k γ=1.5", "S3k γ=2.0", "TopkS α=0.5"]
    rows = []
    for f, l, k in WORKLOAD_GRID:
        name = f"qset({f},{l},{k})"
        rows.append(
            [name]
            + [f"{MEDIANS.get((e, name), float('nan')) * 1000:.1f}" for e in engine_order]
        )
    write_result(
        "fig6b_vodkaster_times",
        format_table(
            ["workload"] + [f"{e} (ms)" for e in engine_order],
            rows,
            title="§5.3 — median query time on I2 (ms)",
        ),
    )
    assert MEDIANS
