"""Async serving latency: micro-batched ``engine.asearch`` under traffic.

The batched executor benchmarks (``bench_batch_throughput``) measure
*offline* throughput — the whole workload is known up front.  Serving
flips the question: requests arrive one by one, and the
:class:`~repro.engine.batcher.Batcher` must trade a small, bounded
queueing delay (the micro-batch deadline) for the lock-step execution
wins, while collapsing duplicate in-flight requests outright.

This bench replays two traffic mixes on the I1-shaped instance through
``await engine.asearch(...)`` with staggered arrivals:

* ``uniform`` — effectively unique requests: measures the pure
  micro-batching overhead (p99 must stay within the per-request budget);
* ``hot`` — Zipf-skewed trending traffic: duplicate in-flight requests
  must collapse (measured collapse rate > 1) on top of the result-cache
  replay.

All served answers are asserted bit-identical to sequential
``S3kSearch.search``.  Emits ``BENCH_serving_latency.json`` (schema in
:mod:`benchmarks.emit`) with per-mix qps, latency percentiles and the
batcher's flush/collapse counters.
"""

import asyncio
import random
import time
from typing import List, Tuple

from repro import Engine, EngineConfig, S3kSearch
from repro.eval import format_table, latency_percentiles
from repro.queries.workload import (
    QuerySpec,
    connected_seekers,
    document_frequencies,
    frequency_buckets,
)

from benchmarks.conftest import write_result
from benchmarks.emit import workload_entry, write_bench_json

N_REQUESTS = 96
SEED = 23
#: Micro-batch knobs: the window closes at 16 requests or after 5 ms.
MAX_BATCH_SIZE = 16
BATCH_DEADLINE = 0.005
#: Per-request latency SLO the p99 must stay within (acceptance bound;
#: generous because shared CI runners are slow and the budget covers a
#: full exploration plus one batch window).
LATENCY_BUDGET = 0.25
#: Arrival stagger between submissions, seconds.
ARRIVAL_GAP = 0.0003
#: (mix name, request-pool size, Zipf exponent).
TRAFFIC_MIXES = (
    ("uniform", N_REQUESTS * 4, 0.0),
    ("hot", 12, 1.1),
)


def _traffic(instance, pool_size: int, zipf_s: float) -> List[QuerySpec]:
    rng = random.Random(SEED)
    _, common = frequency_buckets(document_frequencies(instance))
    seekers = connected_seekers(instance)
    pool = [
        QuerySpec(rng.choice(seekers), (rng.choice(common),), 5)
        for _ in range(pool_size)
    ]
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(pool_size)]
    return rng.choices(pool, weights=weights, k=N_REQUESTS)


async def _drive(engine: Engine, specs: List[QuerySpec]) -> Tuple[List[float], list]:
    """Submit every spec with staggered arrivals; per-request latencies."""
    latencies: List[float] = [0.0] * len(specs)
    responses: list = [None] * len(specs)

    async def one(position: int, spec: QuerySpec) -> None:
        started = time.perf_counter()
        responses[position] = await engine.asearch(spec)
        latencies[position] = time.perf_counter() - started

    tasks = []
    for position, spec in enumerate(specs):
        tasks.append(asyncio.create_task(one(position, spec)))
        await asyncio.sleep(ARRIVAL_GAP)
    await asyncio.gather(*tasks)
    await engine.aclose()
    return latencies, responses


def test_serving_latency(benchmark, twitter_instance):
    instance = twitter_instance
    # Sequential baseline: one bare kernel, no result cache, so the
    # baseline pays the exploration for every duplicate request too.
    kernel = S3kSearch(instance, result_cache_size=0)

    rows: List[List[object]] = []
    workload_records = []
    batcher_records = {}
    p99_by_mix = {}
    collapse_by_mix = {}
    for name, pool_size, zipf_s in TRAFFIC_MIXES:
        specs = _traffic(instance, pool_size, zipf_s)
        unique = len({(s.seeker, s.keywords, s.k) for s in specs})
        # result_cache_size=0 on BOTH sides: the serving numbers measure
        # micro-batching + in-flight collapsing, not cross-request answer
        # replay (a warmed result cache would let the warm-up answer part
        # of the timed workload for free).
        engine = Engine(
            instance,
            config=EngineConfig(
                max_batch_size=MAX_BATCH_SIZE,
                batch_deadline=BATCH_DEADLINE,
                result_cache_size=0,
            ),
        )
        engine.warm()
        # Warm both engines' lazy structures out of the timed region.
        engine.search_many(specs[:8])
        for spec in specs[:8]:
            kernel.search(spec.seeker, spec.keywords, k=spec.k)

        serve_started = time.perf_counter()
        latencies, responses = asyncio.run(_drive(engine, specs))
        serve_seconds = time.perf_counter() - serve_started

        sequential_started = time.perf_counter()
        sequential = [
            kernel.search(spec.seeker, spec.keywords, k=spec.k) for spec in specs
        ]
        sequential_seconds = time.perf_counter() - sequential_started

        for response, single in zip(responses, sequential):
            assert response.result.results == single.results  # bit-identical

        summary = latency_percentiles(latencies)
        batcher = engine.stats()["batcher"]
        batcher_records[name] = batcher
        p99_by_mix[name] = summary["p99"]
        collapse_by_mix[name] = batcher["collapse_rate"]
        workload_records.append(
            workload_entry(
                name,
                unique,
                baseline_qps=N_REQUESTS / sequential_seconds,
                qps=N_REQUESTS / serve_seconds,
                latencies_ms={
                    key: value * 1e3 for key, value in summary.items()
                },
            )
        )
        rows.append(
            [
                name,
                f"{unique}/{N_REQUESTS}",
                f"{N_REQUESTS / sequential_seconds:.0f}",
                f"{N_REQUESTS / serve_seconds:.0f}",
                f"{summary['p50'] * 1e3:.2f} ms",
                f"{summary['p99'] * 1e3:.2f} ms",
                f"{batcher['mean_batch_size']:.1f}",
                f"{batcher['collapse_rate']:.2f}",
            ]
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = format_table(
        [
            "traffic mix",
            "unique",
            "seq q/s",
            "served q/s",
            "p50",
            "p99",
            "mean batch",
            "collapse rate",
        ],
        rows,
        title=(
            f"async serving on I1 ({N_REQUESTS} requests, "
            f"batch<= {MAX_BATCH_SIZE}, deadline {BATCH_DEADLINE * 1e3:.0f} ms)"
        ),
    )
    write_result("serving_latency", table)

    write_bench_json(
        "serving_latency",
        {
            "instance": "I1",
            "seed": SEED,
            "n_queries": N_REQUESTS,
            "batch_size": MAX_BATCH_SIZE,
            "batch_deadline_ms": BATCH_DEADLINE * 1e3,
            "latency_budget_ms": LATENCY_BUDGET * 1e3,
            "workloads": workload_records,
            "batcher": batcher_records,
        },
    )

    for name, p99 in p99_by_mix.items():
        assert p99 <= LATENCY_BUDGET, (
            f"{name}: micro-batched p99 {p99 * 1e3:.1f} ms exceeds the "
            f"{LATENCY_BUDGET * 1e3:.0f} ms budget"
        )
    assert collapse_by_mix["hot"] > 1.0, (
        f"hot traffic should collapse duplicate in-flight requests, "
        f"measured rate {collapse_by_mix['hot']:.2f}"
    )
