"""Figure 7: run-time quartiles on I1 while varying k.

The paper plots min / Q1 / median / Q3 / max run times for l=1 workloads
with k ∈ {1, 5, 10, 50} and S3k γ ∈ {1.5, 4}.  Expected shapes (§5.3):
rare-keyword workloads are faster than frequent ones; with frequent
keywords, growing k leaves the three fastest quartiles mostly unchanged
but significantly slows the slowest quartile.
"""

from typing import Dict, Tuple

import pytest

from repro.eval import format_table
from repro.queries import WorkloadBuilder, run_workload, engine_runner

from benchmarks.conftest import QUERIES_PER_WORKLOAD, write_result

KS = (1, 5, 10, 50)
GAMMAS = (1.5, 4.0)

QUARTILES: Dict[Tuple[str, str], Dict[str, float]] = {}


@pytest.mark.parametrize("f", ["+", "-"])
@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("gamma", GAMMAS)
def test_vary_k(benchmark, twitter_instance, engines, f, k, gamma):
    engine = engines.s3k(twitter_instance, gamma=gamma)
    workload = WorkloadBuilder(twitter_instance, seed=37).build(
        f, 1, k, QUERIES_PER_WORKLOAD
    )
    summary = benchmark.pedantic(
        run_workload, args=(engine_runner(engine), workload), rounds=1, iterations=1
    )
    QUARTILES[(f"γ={gamma}", f"({f},1,{k})")] = summary.quartiles()
    assert summary.times


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for gamma in GAMMAS:
        for f in ("+", "-"):
            for k in KS:
                quartiles = QUARTILES.get((f"γ={gamma}", f"({f},1,{k})"))
                if quartiles is None:
                    continue
                rows.append(
                    [
                        f"γ={gamma}",
                        f"({f},1,{k})",
                        *(f"{quartiles[q] * 1000:.1f}" for q in ("min", "q1", "median", "q3", "max")),
                    ]
                )
    table = format_table(
        ["engine", "workload", "min", "q1", "median", "q3", "max"],
        rows,
        title="Figure 7 — run-time quartiles on I1 varying k (ms)",
    )
    notes = []
    for gamma in GAMMAS:
        small = QUARTILES.get((f"γ={gamma}", "(+,1,1)"))
        large = QUARTILES.get((f"γ={gamma}", "(+,1,50)"))
        if small and large:
            notes.append(
                f"γ={gamma} frequent keywords: max k=1 {small['max']*1000:.1f}ms vs "
                f"k=50 {large['max']*1000:.1f}ms; median {small['median']*1000:.1f} vs "
                f"{large['median']*1000:.1f}ms (paper: mostly the slowest quartile grows)"
            )
    write_result("fig7_vary_k", table + "\n" + "\n".join(notes))
    assert QUARTILES
