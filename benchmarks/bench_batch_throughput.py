"""Batched S3k throughput: ConnectionIndex + caches vs the PR 1 engine.

Serving heavy traffic means answering many queries concurrently, not one
BFS at a time.  This bench runs the same 64-query traffic slice through

* the **PR 1 baseline** — batched lock-step execution, per-batch keyword
  sharing, no precomputed index, no cross-batch caches
  (``use_connection_index=False, result_cache_size=0, plan_cache_size=0``);
* the **indexed engine** — the default configuration: precomputed
  per-keyword :class:`ConnectionIndex` (zero query-time fixpoint work)
  plus the cross-batch plan cache (the result cache is disabled here so
  the uniform numbers measure the index, not answer replay);

under three traffic mixes on the I1-shaped synthetic instance:

* ``uniform`` — every query effectively unique: PR 1 broke even here
  because each distinct keyword set paid the per-component connection
  fixpoint; the index turns the gather phase into array unions, which is
  where the >= 1.5x acceptance target of ISSUE 2 lives;
* ``zipf`` — keyword popularity follows a Zipf law, as real search
  traffic does: batch-level sharing already helps, the index widens it;
* ``hot`` — trending-query traffic from a small hot pool: duplicate
  in-flight queries coalesce, and (measured separately) the LRU result
  cache replays whole answers across batches.

All served results are asserted bit-identical to sequential PR 1
execution.  Alongside the human-readable table the bench emits
``BENCH_batch_throughput.json`` (schema in :mod:`benchmarks.emit`) with
per-mix qps / latency percentiles, the gather-phase micro-comparison,
the offline index build time and — since ISSUE 9 — a per-mix
``phase_breakdown`` (step vs discover vs bounds vs clean/stop seconds
plus the certification fast-/slow-path counters), so the perf
trajectory is tracked across PRs.
"""

import random
import time
from typing import List, Tuple

from repro.core import ComponentConnections, S3kSearch
from repro.core.extension import extend_query
from repro.eval import format_table
from repro.queries import Workload, run_workload_batched
from repro.queries.workload import (
    QuerySpec,
    connected_seekers,
    document_frequencies,
    frequency_buckets,
)

from benchmarks.conftest import write_result
from benchmarks.emit import workload_entry, write_bench_json

N_QUERIES = 64
BATCH_SIZE = 32
#: Deterministic workload seed (the instance seed lives in conftest).
SEED = 17
#: (mix name, hot-pool size, Zipf exponent); pool size N_QUERIES*4 with
#: exponent 0 degenerates to (near-)uniform traffic.
TRAFFIC_MIXES = (
    ("uniform", N_QUERIES * 4, 0.0),
    ("zipf", N_QUERIES * 2, 1.0),
    ("hot", 16, 1.2),
)
#: Acceptance floors: ISSUE 1 (hot mix, batching) and ISSUE 2 (uniform
#: mix vs the PR 1 baseline; gather phase alone).
HOT_TARGET = 2.0
UNIQUE_TARGET = 1.5
GATHER_TARGET = 5.0
TIMING_ROUNDS = 3
#: Batched-loop phases timed inside ``search_many`` (ISSUE 9): the
#: mat-mat step, component discovery, the ``reduceat`` bounds refresh,
#: and clean/stop certification.
PHASES = ("step", "discover", "bounds", "clean_stop")
#: Certification counters worth tracking next to the phase seconds.
COUNTERS = (
    "stop_checks_fast",
    "stop_checks_full",
    "clean_checks_fast",
    "clean_checks_full",
    "bounds_refresh_rows",
    "batch_refresh_passes",
    "batch_layout_builds",
)


def _phase_delta(before, after):
    """Per-phase seconds + counters accrued between two
    ``exploration_stats`` snapshots (covers all TIMING_ROUNDS rounds of
    one timed run; shares are over the four exploration phases only)."""
    seconds = {
        phase: float(after[f"phase_{phase}_seconds"])
        - float(before.get(f"phase_{phase}_seconds", 0.0))
        for phase in PHASES
    }
    total = sum(seconds.values()) or 1.0
    breakdown = {"timing_rounds": TIMING_ROUNDS}
    for phase in PHASES:
        breakdown[f"{phase}_seconds"] = round(seconds[phase], 4)
        breakdown[f"{phase}_share"] = round(seconds[phase] / total, 3)
    for counter in COUNTERS:
        breakdown[counter] = int(after[counter]) - int(before.get(counter, 0))
    return breakdown


def _traffic(instance, pool_size: int, zipf_s: float, seed: int = SEED) -> Workload:
    """A 64-query traffic slice: Zipf-weighted draws from a query pool."""
    rng = random.Random(seed)
    _, common = frequency_buckets(document_frequencies(instance))
    seekers = connected_seekers(instance)
    pool = [
        QuerySpec(rng.choice(seekers), (rng.choice(common),), 5)
        for _ in range(pool_size)
    ]
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(pool_size)]
    workload = Workload(name="traffic", frequency="+", n_keywords=1, k=5)
    workload.queries = rng.choices(pool, weights=weights, k=N_QUERIES)
    return workload


def _pr1_engine(instance) -> S3kSearch:
    """The PR 1 baseline: batch-local sharing only, no precomputation."""
    return S3kSearch(
        instance,
        use_connection_index=False,
        result_cache_size=0,
        plan_cache_size=0,
    )


def _sequential_seconds(engine: S3kSearch, workload: Workload) -> Tuple[float, list]:
    results = []
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        results = []
        started = time.perf_counter()
        for spec in workload.queries:
            results.append(engine.search(spec.seeker, spec.keywords, k=spec.k))
        best = min(best, time.perf_counter() - started)
    return best, results


def _batched(engine: S3kSearch, workload: Workload):
    stats = None
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        stats = run_workload_batched(engine, workload, batch_size=BATCH_SIZE)
        best = min(best, time.perf_counter() - started)
    return best, stats


def _gather_work(engine: S3kSearch, instance, keyword_sets):
    """(component, extensions) pairs the gather phase runs over.

    The keyword extension and component matching are identical under both
    strategies, so they are resolved once, outside the timed region.
    """
    work = []
    for keywords in keyword_sets:
        extensions = extend_query(instance, keywords)
        for ident in engine._matching_components(extensions):
            work.append((engine.component_index.component(ident), extensions))
    return work


def _fixpoint_gather_ms(instance, work) -> float:
    """Query-time worklist fixpoint + candidate extraction (PR 1)."""
    for _rounds in range(2):  # round 0 warms lazy structures
        started = time.perf_counter()
        for component, extensions in work:
            ComponentConnections(instance, component, extensions).candidate_documents()
        elapsed = time.perf_counter() - started
    return elapsed * 1e3


def _indexed_gather_ms(index, work) -> float:
    """Per-atom slice unions + coverage gather (the precomputed path)."""
    for _rounds in range(2):
        started = time.perf_counter()
        for component, extensions in work:
            for extension in extensions.values():
                index.keyword_evidence(component.ident, extension)
            index.candidate_documents(component.ident, extensions)
        elapsed = time.perf_counter() - started
    return elapsed * 1e3


def test_batch_throughput(benchmark, twitter_instance):
    instance = twitter_instance
    pr1 = _pr1_engine(instance)
    build_started = time.perf_counter()
    indexed = S3kSearch(instance, result_cache_size=0)
    indexed.connection_index.ensure_all()
    index_build_seconds = time.perf_counter() - build_started

    rows: List[List[object]] = []
    speedups = {}
    workload_records = []
    phase_breakdown = {}
    for name, pool_size, zipf_s in TRAFFIC_MIXES:
        workload = _traffic(instance, pool_size, zipf_s)
        unique = len({(q.seeker, q.keywords, q.k) for q in workload.queries})
        # Warm both engines (lazy side caches fill on first contact).
        pr1.search_many(workload.queries[:8])
        indexed.search_many(workload.queries[:8])
        seq_seconds, seq_results = _sequential_seconds(pr1, workload)
        pr1_seconds, pr1_stats = _batched(pr1, workload)
        explore_before = dict(indexed.exploration_stats)
        idx_seconds, idx_stats = _batched(indexed, workload)
        phase_breakdown[name] = _phase_delta(
            explore_before, indexed.exploration_stats
        )
        for single, via_pr1, via_index in zip(
            seq_results, pr1_stats.results, idx_stats.results
        ):
            assert single.results == via_pr1.results  # bit-identical answers
            assert single.results == via_index.results
        # hot acceptance (ISSUE 1) stays relative to sequential execution;
        # the uniform acceptance (ISSUE 2) is relative to PR 1's batching.
        speedups[name] = {
            "vs_seq": seq_seconds / idx_seconds,
            "vs_pr1": pr1_seconds / idx_seconds,
        }
        workload_records.append(
            workload_entry(
                name,
                unique,
                baseline_qps=N_QUERIES / pr1_seconds,
                qps=N_QUERIES / idx_seconds,
                latencies_ms={
                    key: value * 1e3
                    for key, value in idx_stats.latency_summary().items()
                },
            )
        )
        rows.append(
            [
                name,
                f"{unique}/{N_QUERIES}",
                f"{N_QUERIES / seq_seconds:.0f}",
                f"{N_QUERIES / pr1_seconds:.0f}",
                f"{N_QUERIES / idx_seconds:.0f}",
                f"{speedups[name]['vs_pr1']:.2f}x",
                f"{speedups[name]['vs_seq']:.2f}x",
            ]
        )

    # Gather phase alone (evidence + candidate extraction — the stage the
    # index precomputes): fixpoint vs slice unions, no caches.
    rng = random.Random(SEED)
    _, common = frequency_buckets(document_frequencies(instance))
    keyword_sets = [(rng.choice(common),) for _ in range(40)]
    work = _gather_work(pr1, instance, keyword_sets)
    gather_fixpoint_ms = _fixpoint_gather_ms(instance, work)
    gather_index_ms = _indexed_gather_ms(indexed.connection_index, work)
    gather_speedup = gather_fixpoint_ms / gather_index_ms

    # Result cache on hot traffic: whole answers replay across batches.
    cached_engine = S3kSearch(instance)
    hot_workload = _traffic(instance, 16, 1.2)
    run_workload_batched(cached_engine, hot_workload, batch_size=BATCH_SIZE)
    cache_stats = run_workload_batched(
        cached_engine, hot_workload, batch_size=BATCH_SIZE
    ).cache_stats

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = format_table(
        [
            "traffic mix",
            "unique",
            "seq q/s",
            f"PR1 q/s (b={BATCH_SIZE})",
            f"indexed q/s (b={BATCH_SIZE})",
            "vs PR1",
            "vs seq",
        ],
        rows,
        title="ConnectionIndex vs PR 1 batched S3k throughput on I1 (64 queries)",
    )
    gather_line = (
        f"gather phase over 40 unique keyword sets: fixpoint "
        f"{gather_fixpoint_ms:.1f} ms, index {gather_index_ms:.1f} ms "
        f"({gather_speedup:.1f}x); index build {index_build_seconds * 1e3:.0f} ms"
    )
    uniform_phases = phase_breakdown["uniform"]
    stop_total = (
        uniform_phases["stop_checks_fast"] + uniform_phases["stop_checks_full"]
    )
    clean_total = (
        uniform_phases["clean_checks_fast"]
        + uniform_phases["clean_checks_full"]
    )
    phase_line = (
        "uniform exploration split: "
        + ", ".join(
            f"{phase} {uniform_phases[f'{phase}_share'] * 100:.0f}%"
            for phase in PHASES
        )
        + f"; screen hit rates: stop "
        f"{uniform_phases['stop_checks_fast'] / max(stop_total, 1) * 100:.0f}%, "
        f"clean "
        f"{uniform_phases['clean_checks_fast'] / max(clean_total, 1) * 100:.0f}%"
    )
    write_result(
        "batch_throughput", table + "\n" + gather_line + "\n" + phase_line
    )

    index_stats = indexed.connection_index.stats()
    write_bench_json(
        "batch_throughput",
        {
            "instance": "I1",
            "seed": SEED,
            "n_queries": N_QUERIES,
            "batch_size": BATCH_SIZE,
            "index_build_seconds": round(index_build_seconds, 4),
            "index_size_bytes": int(index_stats["size_bytes"]),
            "index_evidence_entries": int(index_stats["evidence_entries"]),
            "workloads": workload_records,
            "phase_breakdown": phase_breakdown,
            "gather_phase": {
                "keyword_sets": len(keyword_sets),
                "fixpoint_ms": round(gather_fixpoint_ms, 3),
                "index_ms": round(gather_index_ms, 3),
                "speedup": round(gather_speedup, 3),
            },
            "hot_result_cache": cache_stats,
        },
    )

    assert speedups["hot"]["vs_seq"] >= HOT_TARGET, (
        f"hot-traffic batched speedup {speedups['hot']['vs_seq']:.2f}x "
        f"below the {HOT_TARGET}x target"
    )
    assert speedups["uniform"]["vs_pr1"] >= UNIQUE_TARGET, (
        f"unique-traffic indexed speedup {speedups['uniform']['vs_pr1']:.2f}x "
        f"below the {UNIQUE_TARGET}x target"
    )
    assert gather_speedup >= GATHER_TARGET, (
        f"gather-phase speedup {gather_speedup:.1f}x "
        f"below the {GATHER_TARGET}x target"
    )
    assert cache_stats["hits"] > 0, "hot traffic should replay cached answers"
