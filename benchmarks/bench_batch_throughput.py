"""Batched vs single-query S3k throughput (the serving seam).

Serving heavy traffic means answering many queries concurrently, not one
BFS at a time.  This bench compares answering the same 64-query traffic
slice one query at a time (``S3kSearch.search``) and through the
lock-step batched executor (``S3kSearch.search_many``, batch size 32) on
the I1-shaped synthetic instance, under three traffic mixes:

* ``uniform`` — every query effectively unique: batching can only
  amortize call overhead (one ``T^T @ B`` mat-mat instead of N sparse
  mat-vecs per iteration), and roughly breaks even;
* ``zipf`` — keyword popularity follows a Zipf law, as real search
  traffic does: queries in a batch share keyword sets, so keyword
  extension, component matching, weight bounds and per-component
  connection fixpoints are computed once and shared batch-wide;
* ``hot`` — trending-query traffic drawn from a small hot pool:
  duplicate in-flight queries additionally coalesce into a single
  exploration.

The served results are asserted bit-identical to sequential execution;
the throughput target (ISSUE 1) is >= 2x on the hot, production-like
mix.
"""

import random
import time
from typing import List, Tuple

from repro.core import S3kSearch
from repro.queries import Workload, run_workload_batched
from repro.queries.workload import (
    QuerySpec,
    connected_seekers,
    document_frequencies,
    frequency_buckets,
)

from benchmarks.conftest import write_result

N_QUERIES = 64
BATCH_SIZE = 32
#: (mix name, hot-pool size, Zipf exponent); pool size N_QUERIES*4 with
#: exponent 0 degenerates to (near-)uniform traffic.
TRAFFIC_MIXES = (
    ("uniform", N_QUERIES * 4, 0.0),
    ("zipf", N_QUERIES * 2, 1.0),
    ("hot", 16, 1.2),
)
#: Acceptance floor for the hot mix (measured ~2.4x on the dev box).
HOT_TARGET = 2.0
TIMING_ROUNDS = 3


def _traffic(instance, pool_size: int, zipf_s: float, seed: int = 17) -> Workload:
    """A 64-query traffic slice: Zipf-weighted draws from a query pool."""
    rng = random.Random(seed)
    _, common = frequency_buckets(document_frequencies(instance))
    seekers = connected_seekers(instance)
    pool = [
        QuerySpec(rng.choice(seekers), (rng.choice(common),), 5)
        for _ in range(pool_size)
    ]
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(pool_size)]
    workload = Workload(name="traffic", frequency="+", n_keywords=1, k=5)
    workload.queries = rng.choices(pool, weights=weights, k=N_QUERIES)
    return workload


def _sequential_seconds(engine: S3kSearch, workload: Workload) -> Tuple[float, list]:
    results = []
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        results = []
        started = time.perf_counter()
        for spec in workload.queries:
            results.append(engine.search(spec.seeker, spec.keywords, k=spec.k))
        best = min(best, time.perf_counter() - started)
    return best, results


def _batched_seconds(engine: S3kSearch, workload: Workload) -> Tuple[float, list]:
    stats = None
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        stats = run_workload_batched(engine, workload, batch_size=BATCH_SIZE)
        best = min(best, time.perf_counter() - started)
    return best, stats.results


def test_batch_throughput(benchmark, twitter_instance, engines):
    engine = engines.s3k(twitter_instance)
    rows: List[List[object]] = []
    speedups = {}
    for name, pool_size, zipf_s in TRAFFIC_MIXES:
        workload = _traffic(twitter_instance, pool_size, zipf_s)
        unique = len({(q.seeker, q.keywords, q.k) for q in workload.queries})
        # Warm the engine (JIT-free, but index side caches fill lazily).
        engine.search_many(workload.queries[:8])
        seq_seconds, seq_results = _sequential_seconds(engine, workload)
        bat_seconds, bat_results = _batched_seconds(engine, workload)
        for single, batched in zip(seq_results, bat_results):
            assert single.results == batched.results  # bit-identical answers
        speedups[name] = seq_seconds / bat_seconds
        rows.append(
            [
                name,
                f"{unique}/{N_QUERIES}",
                f"{N_QUERIES / seq_seconds:.0f}",
                f"{N_QUERIES / bat_seconds:.0f}",
                f"{speedups[name]:.2f}x",
            ]
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.eval import format_table

    table = format_table(
        ["traffic mix", "unique", "single q/s", f"batched q/s (b={BATCH_SIZE})", "speedup"],
        rows,
        title="Batched vs single-query S3k throughput on I1 (64 queries)",
    )
    write_result("batch_throughput", table)
    assert speedups["hot"] >= HOT_TARGET, (
        f"hot-traffic batched speedup {speedups['hot']:.2f}x "
        f"below the {HOT_TARGET}x target"
    )
