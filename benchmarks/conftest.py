"""Shared fixtures for the benchmark harness.

One laptop-scale instance per dataset (I1 Twitter-shaped, I2 Vodkaster-
shaped, I3 Yelp-shaped), built once per session, plus cached S3k engines
and UIT flattenings.  Figure outputs are written to
``benchmarks/results/<name>.txt`` so runs leave a comparable artifact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.baselines import TopkSSearcher, uit_from_instance
from repro.core import S3kScore, S3kSearch
from repro.datasets import (
    TwitterConfig,
    VodkasterConfig,
    YelpConfig,
    build_twitter_instance,
    build_vodkaster_instance,
    build_yelp_instance,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Bench-scale configurations (paper ratios, laptop sizes).
I1_CONFIG = TwitterConfig(n_users=400, n_statuses=1200, seed=41)
I2_CONFIG = VodkasterConfig(n_users=200, n_movies=60, n_comments=450, seed=41)
I3_CONFIG = YelpConfig(n_users=300, n_businesses=50, n_reviews=550, seed=41)

#: Queries per workload in benches (the paper used 100 per workload).
QUERIES_PER_WORKLOAD = 10


@pytest.fixture(scope="session")
def twitter_instance():
    return build_twitter_instance(I1_CONFIG).instance


@pytest.fixture(scope="session")
def vodkaster_instance():
    return build_vodkaster_instance(I2_CONFIG).instance


@pytest.fixture(scope="session")
def yelp_instance():
    return build_yelp_instance(I3_CONFIG).instance


class EngineCache:
    """Builds S3k engines / TopkS searchers once per (instance, params)."""

    def __init__(self) -> None:
        self._s3k: Dict[Tuple[int, float, bool], S3kSearch] = {}
        self._uit: Dict[int, Tuple[object, dict]] = {}

    def s3k(self, instance, gamma: float = 2.0, use_matrix: bool = True) -> S3kSearch:
        key = (id(instance), gamma, use_matrix)
        if key not in self._s3k:
            self._s3k[key] = S3kSearch(
                instance, score=S3kScore(gamma=gamma), use_matrix=use_matrix
            )
        return self._s3k[key]

    def topks(self, instance, alpha: float) -> TopkSSearcher:
        if id(instance) not in self._uit:
            self._uit[id(instance)] = uit_from_instance(instance)
        dataset, _ = self._uit[id(instance)]
        return TopkSSearcher(dataset, alpha=alpha)

    def uit(self, instance):
        if id(instance) not in self._uit:
            self._uit[id(instance)] = uit_from_instance(instance)
        return self._uit[id(instance)]


@pytest.fixture(scope="session")
def engines() -> EngineCache:
    return EngineCache()


def write_result(name: str, content: str) -> None:
    """Persist a figure table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    print(f"\n{content}\n[written to {path}]")
