"""Machine-readable benchmark artifacts (``BENCH_<name>.json``).

Every perf benchmark emits, next to its human-readable table, one JSON
document under the repo root so the perf trajectory is tracked across
PRs (the committed file records the numbers of the PR that touched it;
CI uploads the freshly measured one as an artifact and the perf-smoke
job compares the two).

Shared schema (``schema_version`` 1)::

    {
      "bench": "<name>",                # benchmark identifier
      "schema_version": 1,
      "instance": "I1",                 # dataset the numbers were taken on
      "seed": 17,                       # workload seed (deterministic)
      "n_queries": 64, "batch_size": 32,
      "index_build_seconds": 0.28,      # offline ConnectionIndex build
      "workloads": [                    # one entry per traffic mix
        {"workload": "uniform", "unique_queries": 63,
         "baseline_qps": ..., "qps": ..., "speedup": ...,
         "latency_p50_ms": ..., "latency_p99_ms": ...},
        ...
      ],
      ...                               # bench-specific extras
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

SCHEMA_VERSION = 1

#: Repo root — BENCH_*.json artifacts live here so they are committed
#: alongside the code whose performance they record.
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def workload_entry(
    name: str,
    unique_queries: int,
    baseline_qps: float,
    qps: float,
    latencies_ms: Dict[str, float],
) -> Dict[str, object]:
    """One traffic-mix record of the shared schema."""
    return {
        "workload": name,
        "unique_queries": unique_queries,
        "baseline_qps": round(baseline_qps, 2),
        "qps": round(qps, 2),
        "speedup": round(qps / baseline_qps, 3) if baseline_qps else None,
        "latency_p50_ms": round(latencies_ms.get("p50", 0.0), 3),
        "latency_p99_ms": round(latencies_ms.get("p99", 0.0), 3),
    }


def write_bench_json(name: str, payload: Dict[str, object]) -> Path:
    """Write ``BENCH_<name>.json`` (repo root + a copy under results/)."""
    document = {"bench": name, "schema_version": SCHEMA_VERSION}
    document.update(payload)
    text = json.dumps(document, indent=2, sort_keys=False) + "\n"
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(text)
    return path


def read_bench_json(name: str) -> Dict[str, object]:
    """Load the committed ``BENCH_<name>.json`` (for regression gates)."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    return json.loads(path.read_text())
