"""Live mutate/query serving: delta maintenance vs full rebuild (ISSUE 10).

Until the delta pipeline, every write invalidated the whole kernel: the
next answer paid a from-scratch ``S3kSearch`` build plus lazy
ConnectionIndex slab rebuilds, so the serving tiers could only offer
read-only traffic.  This bench measures what typed delta propagation
buys on the I1-shaped synthetic instance:

* **delta vs rebuild cost** — the mean per-write kernel patch time
  (``maintenance.patch_wall_seconds`` over the writes applied) against
  the full price a rebuild pays (kernel construction + building every
  ConnectionIndex slab).  The ISSUE 10 acceptance floor is >= 5x; the
  ratio is machine-relative, so shared-runner noise cannot flake it;
* **mixed-traffic throughput** — closed-loop qps over ~1%-write traffic
  (every write a delta-expressible ``add_tag``) against the same
  workload read-only.  The floor is mixed >= 0.5x read-only: writes
  must tax the read path, not collapse it;
* **staleness window** — per write, the submission-to-applied latency
  reported by :class:`MutationResponse`: the interval during which an
  answer may still reflect the pre-write snapshot.  Mean and max are
  reported (and bounded: the write path re-aligns the kernel before
  acknowledging, so the window closes with the ack);
* **bit identity** — after the mixed run, answers from the
  delta-maintained engine are asserted identical to a freshly built
  kernel over the mutated instance.  Throughput from wrong answers does
  not count.

Emits ``BENCH_live_mutation.json`` (repo root + ``results/`` copy; the
CI gate in ``check_live_mutation.py`` reads the fresh copy).
"""

import random
import time
from typing import Dict, List

from repro.core import ConnectionIndex, S3kSearch
from repro.engine import Engine, EngineConfig
from repro.eval import format_table
from repro.queries.workload import (
    connected_seekers,
    document_frequencies,
    frequency_buckets,
)

from benchmarks.conftest import write_result
from benchmarks.emit import write_bench_json

SEED = 29
#: Closed-loop requests per measured pass (reads + interleaved writes).
N_REQUESTS = 256
#: One write per this many requests (~1% write traffic).
WRITE_EVERY = 100
#: Timing passes; the best pass is reported (load spikes only ever slow
#: a pass down).
TIMING_ROUNDS = 3
#: ISSUE 10 acceptance floors.
DELTA_VS_REBUILD_FLOOR = 5.0
MIXED_QPS_FLOOR = 0.5


def _queries(instance) -> List[Dict[str, object]]:
    rng = random.Random(SEED)
    _, common = frequency_buckets(document_frequencies(instance))
    seekers = connected_seekers(instance)
    return [
        {
            "seeker": str(rng.choice(seekers)),
            "keywords": [str(rng.choice(common))],
            "k": 5,
        }
        for _ in range(N_REQUESTS)
    ]


def _writes(instance, count: int, serial_base: int) -> List[Dict[str, object]]:
    """Delta-expressible tags: fresh URIs on existing document nodes."""
    rng = random.Random(SEED + serial_base)
    nodes = sorted(str(node) for node in instance.node_to_document)
    users = sorted(str(user) for user in instance.users)
    _, common = frequency_buckets(document_frequencies(instance))
    return [
        {
            "op": "add_tag",
            "uri": f"bench_tag_{serial_base + serial}",
            "subject": rng.choice(nodes),
            "author": rng.choice(users),
            "keyword": str(rng.choice(common)),
        }
        for serial in range(count)
    ]


def _run_read_only(engine, queries) -> float:
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        for query in queries:
            engine.search(query)
        best = min(best, time.perf_counter() - started)
    return len(queries) / best


def _run_mixed(engine, queries, writes) -> Dict[str, object]:
    """One pass of ~1%-write closed-loop traffic (writes are not
    repeatable — tag URIs are unique — so the mix runs once)."""
    staleness: List[float] = []
    modes: List[str] = []
    write_iter = iter(writes)
    started = time.perf_counter()
    for ordinal, query in enumerate(queries):
        if ordinal and ordinal % WRITE_EVERY == 0:
            response = engine.mutate(next(write_iter))
            staleness.append(response.latency_seconds)
            modes.append(response.mode)
        engine.search(query)
    elapsed = time.perf_counter() - started
    n_ops = len(queries) + len(staleness)
    return {
        "qps": n_ops / elapsed,
        "staleness_seconds": staleness,
        "modes": modes,
    }


def _rebuild_seconds(instance) -> float:
    """The full price one inexpressible write makes the next answer pay:
    kernel construction plus every ConnectionIndex slab."""
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        kernel = S3kSearch(instance)
        kernel.connection_index.ensure_all()
        best = min(best, time.perf_counter() - started)
    return best


def test_live_mutation(twitter_instance):
    instance = twitter_instance
    build_started = time.perf_counter()
    ConnectionIndex(instance).ensure_all()
    index_build_seconds = time.perf_counter() - build_started

    queries = _queries(instance)
    # Result cache off: repeated timing passes must measure kernel work,
    # not replay — otherwise the read-only baseline is pure cache hits
    # and the mixed/read-only ratio only measures eviction, not writes.
    engine = Engine(instance, config=EngineConfig(result_cache_size=0))
    engine.warm()
    try:
        read_only_qps = _run_read_only(engine, queries)
        n_writes = (N_REQUESTS - 1) // WRITE_EVERY
        mixed = _run_mixed(engine, queries, _writes(instance, n_writes, 0))

        maintenance = engine.stats()["maintenance"]
        deltas_applied = int(maintenance["deltas_applied"])
        delta_apply_seconds = (
            maintenance["patch_wall_seconds"] / deltas_applied
            if deltas_applied
            else float("inf")
        )
        rebuild_seconds = _rebuild_seconds(instance)
        ratio = rebuild_seconds / delta_apply_seconds

        # Answers after the writes must match a from-scratch kernel.
        oracle = S3kSearch(instance)
        bit_identical = True
        for query in queries[:16]:
            served = engine.search(query).result
            expected = oracle.search(
                query["seeker"], query["keywords"], k=query["k"]
            )
            bit_identical = bit_identical and (
                [(str(r.uri), r.lower, r.upper) for r in served.results]
                == [(str(r.uri), r.lower, r.upper) for r in expected.results]
                and served.iterations == expected.iterations
            )
    finally:
        engine.close()

    staleness_ms = [s * 1e3 for s in mixed["staleness_seconds"]]
    delta_fraction = (
        mixed["modes"].count("delta") / len(mixed["modes"])
        if mixed["modes"]
        else 0.0
    )
    qps_ratio = mixed["qps"] / read_only_qps if read_only_qps else 0.0

    payload = {
        "instance": "I1",
        "seed": SEED,
        "n_requests": N_REQUESTS,
        "write_every": WRITE_EVERY,
        "writes_applied": len(mixed["modes"]),
        "index_build_seconds": round(index_build_seconds, 3),
        "read_only_qps": round(read_only_qps, 2),
        "mixed_qps": round(mixed["qps"], 2),
        "qps_ratio": round(qps_ratio, 3),
        "delta_apply_ms_mean": round(delta_apply_seconds * 1e3, 3),
        "rebuild_ms": round(rebuild_seconds * 1e3, 3),
        "delta_vs_rebuild_ratio": round(ratio, 2),
        "delta_fraction": round(delta_fraction, 3),
        "staleness_ms_mean": round(
            sum(staleness_ms) / len(staleness_ms), 3
        )
        if staleness_ms
        else 0.0,
        "staleness_ms_max": round(max(staleness_ms), 3) if staleness_ms else 0.0,
        "deltas_applied": deltas_applied,
        "fallback_rebuilds": int(maintenance["fallback_rebuilds"]),
        "bit_identical": bit_identical,
    }
    write_bench_json("live_mutation", payload)

    rows = [
        ["read-only qps", f"{read_only_qps:.0f}"],
        ["mixed (~1% write) qps", f"{mixed['qps']:.0f}"],
        ["mixed / read-only", f"{qps_ratio:.2f}x"],
        ["delta apply (mean)", f"{delta_apply_seconds * 1e3:.2f} ms"],
        ["full rebuild", f"{rebuild_seconds * 1e3:.1f} ms"],
        ["rebuild / delta", f"{ratio:.1f}x"],
        ["staleness window (max)", f"{payload['staleness_ms_max']:.2f} ms"],
        ["writes on the delta path", f"{delta_fraction:.0%}"],
        ["bit-identical to rebuild", str(bit_identical)],
    ]
    write_result(
        "live_mutation",
        format_table(["measure", "value"], rows, title="live mutation (I1)"),
    )

    assert bit_identical, "delta-maintained answers diverged from rebuild"
    assert delta_fraction == 1.0, (
        f"only {delta_fraction:.0%} of writes took the delta path: {mixed['modes']}"
    )
    assert ratio >= DELTA_VS_REBUILD_FLOOR, (
        f"delta apply beats rebuild by {ratio:.1f}x "
        f"(floor {DELTA_VS_REBUILD_FLOOR}x)"
    )
    assert qps_ratio >= MIXED_QPS_FLOOR, (
        f"mixed traffic sustains {qps_ratio:.2f}x of read-only qps "
        f"(floor {MIXED_QPS_FLOOR}x)"
    )
