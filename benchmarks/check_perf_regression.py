"""CI perf gate: compare a fresh BENCH json against the committed baseline.

Usage::

    python benchmarks/check_perf_regression.py BASELINE.json FRESH.json [factor]

Exits non-zero when the gather phase regressed more than *factor* (default
2x) against the baseline.  The gate compares the fixpoint/index *speedup
ratio* rather than absolute milliseconds, so a slower CI runner does not
trip it — only a real relative regression of the indexed gather path does.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def main(argv) -> int:
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline = json.loads(Path(argv[1]).read_text())
    fresh = json.loads(Path(argv[2]).read_text())
    factor = float(argv[3]) if len(argv) > 3 else 2.0

    baseline_speedup = float(baseline["gather_phase"]["speedup"])
    fresh_speedup = float(fresh["gather_phase"]["speedup"])
    floor = baseline_speedup / factor
    print(
        f"gather-phase speedup: baseline {baseline_speedup:.2f}x, "
        f"fresh {fresh_speedup:.2f}x, floor {floor:.2f}x "
        f"(= baseline / {factor:g})"
    )
    if fresh_speedup < floor:
        print(
            "FAIL: the indexed gather phase regressed more than "
            f"{factor:g}x relative to the fixpoint baseline"
        )
        return 1

    for name in ("uniform", "zipf", "hot"):
        base = next(
            (w for w in baseline["workloads"] if w["workload"] == name), None
        )
        new = next((w for w in fresh["workloads"] if w["workload"] == name), None)
        if base is None or new is None or not base.get("speedup"):
            continue
        print(
            f"{name}: throughput speedup baseline {base['speedup']:.2f}x, "
            f"fresh {new['speedup']:.2f}x"
        )
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
