"""CI perf gate: compare a fresh BENCH json against the committed baseline.

Usage::

    python benchmarks/check_perf_regression.py BASELINE.json FRESH.json [factor]

Exits non-zero when

* the gather phase regressed more than *factor* (default 2x) against the
  baseline, or
* the uniform-traffic batched speedup (indexed engine vs the PR 1
  baseline, measured in the same fresh run) fell below the 1.5x floor of
  ISSUE 9.

Both gates compare *speedup ratios* measured within one run rather than
absolute qps / milliseconds, so a slower CI runner does not trip them —
only a real relative regression of the indexed path does.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: ISSUE 9 floor: uniform-traffic batched qps must stay at least this
#: multiple of the in-run PR 1 baseline (the committed PR 5 number was
#: 1.968x; the batch-major exploration loop pushed it past 2x).
UNIFORM_SPEEDUP_FLOOR = 1.5


def main(argv) -> int:
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline = json.loads(Path(argv[1]).read_text())
    fresh = json.loads(Path(argv[2]).read_text())
    factor = float(argv[3]) if len(argv) > 3 else 2.0

    baseline_speedup = float(baseline["gather_phase"]["speedup"])
    fresh_speedup = float(fresh["gather_phase"]["speedup"])
    floor = baseline_speedup / factor
    print(
        f"gather-phase speedup: baseline {baseline_speedup:.2f}x, "
        f"fresh {fresh_speedup:.2f}x, floor {floor:.2f}x "
        f"(= baseline / {factor:g})"
    )
    if fresh_speedup < floor:
        print(
            "FAIL: the indexed gather phase regressed more than "
            f"{factor:g}x relative to the fixpoint baseline"
        )
        return 1

    for name in ("uniform", "zipf", "hot"):
        base = next(
            (w for w in baseline["workloads"] if w["workload"] == name), None
        )
        new = next((w for w in fresh["workloads"] if w["workload"] == name), None)
        if base is None or new is None or not base.get("speedup"):
            continue
        print(
            f"{name}: throughput speedup baseline {base['speedup']:.2f}x, "
            f"fresh {new['speedup']:.2f}x"
        )

    fresh_uniform = next(
        (w for w in fresh["workloads"] if w["workload"] == "uniform"), None
    )
    if fresh_uniform is None or not fresh_uniform.get("speedup"):
        print("FAIL: fresh run has no uniform-traffic speedup to gate on")
        return 1
    uniform_speedup = float(fresh_uniform["speedup"])
    print(
        f"uniform batched speedup vs PR 1 baseline: {uniform_speedup:.2f}x, "
        f"floor {UNIFORM_SPEEDUP_FLOOR:g}x"
    )
    if uniform_speedup < UNIFORM_SPEEDUP_FLOOR:
        print(
            "FAIL: uniform-traffic batched qps regressed below "
            f"{UNIFORM_SPEEDUP_FLOOR:g}x the PR 1 baseline (ISSUE 9 floor)"
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
