"""CI hard gate for the live-mutation bench artifact (ISSUE 10).

Usage::

    python benchmarks/check_live_mutation.py FRESH.json

Reads the ``BENCH_live_mutation.json`` a fresh bench run just emitted
and fails when the delta-maintenance pipeline violated its contract:

* **delta beats rebuild by >= 5x on I1** — mean per-write kernel patch
  time against the full kernel + ConnectionIndex rebuild price, same
  machine, same run.  A ratio, so shared-runner load cannot flake it;
* **mixed ~1%-write traffic sustains >= 0.5x of read-only qps** — also
  a same-run ratio: writes must tax the read path, not collapse it;
* **every write took the delta path** (``delta_fraction`` 1.0) — a
  silent fallback to full rebuilds would still pass wall-clock floors
  on a small instance while defeating the entire pipeline;
* **answers stayed bit-identical to a from-scratch rebuild** — the
  bench asserts it in-run and records the verdict; throughput from
  wrong answers does not count.

The bench's own asserts mirror these floors; CI runs the bench
``continue-on-error`` (absolute timings are noisy on shared runners),
then blocks the merge on this relative, same-run gate.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DELTA_VS_REBUILD_FLOOR = 5.0
MIXED_QPS_FLOOR = 0.5


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    fresh = json.loads(Path(argv[1]).read_text())

    ratio = float(fresh["delta_vs_rebuild_ratio"])
    qps_ratio = float(fresh["qps_ratio"])
    delta_fraction = float(fresh["delta_fraction"])
    bit_identical = bool(fresh["bit_identical"])
    print(
        f"I1 live mutation: delta apply {fresh['delta_apply_ms_mean']} ms vs "
        f"rebuild {fresh['rebuild_ms']} ms ({ratio:.1f}x), mixed "
        f"{fresh['mixed_qps']} q/s vs read-only {fresh['read_only_qps']} q/s "
        f"({qps_ratio:.2f}x), staleness max {fresh['staleness_ms_max']} ms"
    )

    failures = []
    if not bit_identical:
        failures.append("delta-maintained answers diverged from rebuild")
    if delta_fraction < 1.0:
        failures.append(
            f"only {delta_fraction:.0%} of writes took the delta path"
        )
    if ratio < DELTA_VS_REBUILD_FLOOR:
        failures.append(
            f"delta apply only {ratio:.1f}x faster than rebuild "
            f"(floor {DELTA_VS_REBUILD_FLOOR}x)"
        )
    if qps_ratio < MIXED_QPS_FLOOR:
        failures.append(
            f"mixed traffic at {qps_ratio:.2f}x of read-only qps "
            f"(floor {MIXED_QPS_FLOOR}x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("live-mutation gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
