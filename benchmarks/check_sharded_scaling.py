"""CI hard gate for the sharded-scaling bench artifact.

Usage::

    python benchmarks/check_sharded_scaling.py FRESH.json

Reads the ``BENCH_sharded_scaling.json`` a fresh bench run just emitted
and fails when the sharded tier violated its structural contract:

* **no fan-out regression, ever** — 4-shard qps on the uniform mix must
  not drop below 0.9x of 1-shard qps.  The per-component fan-out the
  issue warns about (every shard computes every query) lands at ~0.67x;
  whole-query routing can never produce that shape, so any machine —
  including a 1-core container — enforces this;
* **scaling where the cores exist** — the 4-shard vs 1-shard speedup on
  the uniform mix must clear a floor keyed by the core count the bench
  recorded: the full >= 1.5x ISSUE 7 target on >= 4 cores (the CI
  runner class), proportionally relaxed below that, and on a single
  core only the regression guard applies;
* the bench must have asserted bit-identity against the single-process
  engine (``bit_identical`` true) — throughput from wrong answers does
  not count.

The bench's own asserts mirror these floors; CI runs the bench
``continue-on-error`` because absolute timings are noisy on shared
runners, then blocks the merge on this relative, same-run gate.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: 4-shard vs 1-shard uniform-mix speedup floors by measured core count.
SPEEDUP_FLOORS = {1: 0.75, 2: 1.15, 3: 1.3}
FULL_TARGET = 1.5
REGRESSION_FACTOR = 0.75


def floor_for(cores: int) -> float:
    return SPEEDUP_FLOORS.get(cores, FULL_TARGET) if cores < 4 else FULL_TARGET


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    fresh = json.loads(Path(argv[1]).read_text())

    cores = int(fresh["cores"])
    uniform = next(
        w for w in fresh["workloads"] if w["workload"] == "uniform"
    )
    qps = {entry["shards"]: float(entry["qps"]) for entry in uniform["scaling"]}
    speedup = qps[4] / qps[1] if qps[1] else 0.0
    print(
        f"uniform mix on {cores} core(s): 1 shard {qps[1]:.0f} q/s, "
        f"4 shards {qps[4]:.0f} q/s ({speedup:.2f}x)"
    )

    if not fresh.get("bit_identical"):
        print("FAIL: the bench did not assert bit-identity with the "
              "single-process engine")
        return 1

    if qps[4] < qps[1] * REGRESSION_FACTOR:
        print(
            f"FAIL: 4-shard qps below {REGRESSION_FACTOR}x of 1-shard — "
            "the every-shard-computes-every-query fan-out regression shape"
        )
        return 1

    floor = floor_for(cores)
    if speedup < floor:
        print(
            f"FAIL: uniform 4-shard speedup {speedup:.2f}x below the "
            f"{floor}x floor for {cores} core(s) "
            f"(full target {FULL_TARGET}x on >= 4 cores)"
        )
        return 1

    load = fresh["four_shard"]["shard_load"]
    active = sum(1 for n in load.values() if n > 0)
    print(f"4-shard load distribution: {load}")
    if active < 3:
        print("FAIL: uniform traffic landed on fewer than 3 of 4 shards — "
              "routing is not spreading load")
        return 1

    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
