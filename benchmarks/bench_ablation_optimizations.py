"""Ablations for the §5.2 implementation optimizations.

The paper replaces materialized ``borderPath`` sets by the ``borderProx``
sparse-matrix propagation and adds connected-component pruning; it also
reports a ×2 speedup from 8-thread parallelism (an engineering measure we
do not reproduce — see DESIGN.md).  This bench quantifies:

* matrix vs naive (pure Python dict) border propagation;
* the component keyword-pruning ratio (components discarded without
  running the connection fixpoint);
* batch vs incremental RDFS saturation;
* SQLite persistence throughput (the storage side-car).
"""

import random

import pytest

from repro.core import S3kSearch
from repro.eval import format_table
from repro.queries import WorkloadBuilder, run_workload, engine_runner
from repro.rdf import RDFGraph, RDFS_SUBCLASS, RDF_TYPE, Triple, URI, add_and_saturate, saturate
from repro.storage import SQLiteStore

from benchmarks.conftest import QUERIES_PER_WORKLOAD, write_result

RESULTS = {}


@pytest.mark.parametrize("use_matrix", [True, False])
def test_border_propagation_mode(benchmark, twitter_instance, engines, use_matrix):
    engine = engines.s3k(twitter_instance, use_matrix=use_matrix)
    workload = WorkloadBuilder(twitter_instance, seed=47).build(
        "+", 1, 5, QUERIES_PER_WORKLOAD
    )
    summary = benchmark.pedantic(
        run_workload, args=(engine_runner(engine), workload), rounds=1, iterations=1
    )
    RESULTS["matrix" if use_matrix else "naive"] = summary.median
    assert summary.times


def test_component_pruning_ratio(benchmark, twitter_instance, engines):
    engine: S3kSearch = engines.s3k(twitter_instance)
    workload = WorkloadBuilder(twitter_instance, seed=47).build("-", 1, 5, 8)

    def pruning_ratio() -> float:
        processed = discarded = 0
        for spec in workload.queries:
            result = engine.search(spec.seeker, spec.keywords, k=spec.k)
            processed += result.components_processed
            discarded += result.components_discarded
        return discarded / processed if processed else 0.0

    ratio = benchmark.pedantic(pruning_ratio, rounds=1, iterations=1)
    RESULTS["pruned"] = ratio
    assert 0.0 <= ratio <= 1.0


def test_saturation_batch_vs_incremental(benchmark):
    rng = random.Random(51)
    base = [
        Triple(URI(f"c{i}"), RDFS_SUBCLASS, URI(f"c{rng.randrange(60)}"))
        for i in range(60)
    ] + [
        Triple(URI(f"x{i}"), RDF_TYPE, URI(f"c{rng.randrange(60)}"))
        for i in range(300)
    ]
    extra = [
        Triple(URI(f"y{i}"), RDF_TYPE, URI(f"c{rng.randrange(60)}")) for i in range(30)
    ]

    def incremental():
        graph = RDFGraph()
        for t in base:
            graph.add(*t)
        saturate(graph)
        add_and_saturate(graph, extra)
        return len(graph)

    size = benchmark.pedantic(incremental, rounds=1, iterations=1)
    # Equivalence check against one batch saturation.
    batch = RDFGraph()
    for t in base + extra:
        batch.add(*t)
    saturate(batch)
    assert size == len(batch)


def test_sqlite_round_trip(benchmark, twitter_instance):
    def round_trip() -> int:
        with SQLiteStore() as store:
            store.save_instance(twitter_instance)
            return store.triple_count()

    count = benchmark.pedantic(round_trip, rounds=1, iterations=1)
    RESULTS["sqlite_triples"] = count
    assert count == len(twitter_instance.graph)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    if "matrix" in RESULTS and "naive" in RESULTS:
        speedup = RESULTS["naive"] / max(RESULTS["matrix"], 1e-9)
        rows.append(
            [
                "borderProx: matrix vs naive",
                f"{RESULTS['matrix']*1000:.1f}ms vs {RESULTS['naive']*1000:.1f}ms "
                f"({speedup:.1f}x)",
            ]
        )
    if "pruned" in RESULTS:
        rows.append(
            ["components pruned without fixpoint", f"{RESULTS['pruned']:.0%}"]
        )
    if "sqlite_triples" in RESULTS:
        rows.append(["triples persisted to SQLite", RESULTS["sqlite_triples"]])
    write_result(
        "ablation_optimizations",
        format_table(["ablation", "result"], rows, title="§5.2 optimizations"),
    )
    assert rows
