"""Process-parallel sharded serving: throughput scaling vs shard count.

The sharded tier (ISSUE 7) answers each query in one of N worker processes
— full engines forked from a single warm parent so the ConnectionIndex
slabs and proximity matrices exist once physically (copy-on-write /
slab placement), not N times.  This bench measures what that buys under
closed-loop load on the I1-shaped synthetic instance:

* ``uniform`` — effectively unique queries: no cache can help, every
  answer is kernel work, so qps scales only if the *processes* scale.
  This is where the >= 1.5x @ 4 shards acceptance target of ISSUE 7
  lives — and where the anti-pattern the issue warns about (fan every
  query to every shard) would show up as ~0.67x *regression* instead;
* ``hot`` — trending traffic from a small pool: whole-query routing by
  stable hash keeps repeats on the same shard, preserving result-cache
  and collapse affinity (caches are disabled here so the scaling
  numbers measure compute, not replay — affinity is asserted via the
  shard-load distribution instead).

Every sharded answer is asserted bit-identical to a single-process
engine run sequentially over the same workload.  The emitted
``BENCH_sharded_scaling.json`` records the measured core count
honestly: on a 1-core container real parallel speedup is impossible,
so the in-bench asserts (and the CI gate in
``check_sharded_scaling.py``) scale their floors with ``cores`` — the
full 1.5x target is enforced where >= 4 cores exist, while the
0.67x fan-out regression shape hard-fails everywhere.
"""

import os
import random
import time
from typing import Dict, List

from repro.core import ConnectionIndex
from repro.engine import Engine, EngineConfig, ShardedEngine
from repro.eval import format_table
from repro.queries.workload import (
    QuerySpec,
    connected_seekers,
    document_frequencies,
    frequency_buckets,
)

from benchmarks.conftest import write_result
from benchmarks.emit import write_bench_json

N_QUERIES = 64
#: Deterministic workload seed (the instance seed lives in conftest).
SEED = 23
SHARD_COUNTS = (1, 2, 4)
TIMING_ROUNDS = 3
#: (mix name, hot-pool size, Zipf exponent) — uniform degenerates to
#: (near-)unique traffic, hot replays a 16-query trending pool.
TRAFFIC_MIXES = (
    ("uniform", N_QUERIES * 4, 0.0),
    ("hot", 16, 1.2),
)
#: Speedup floors for 4 shards vs 1 shard on the uniform mix, keyed by
#: available cores.  Mirrors benchmarks/check_sharded_scaling.py: the
#: ISSUE 7 target (1.5x) applies where the hardware can deliver it; on
#: fewer cores the floor only guards against the fan-out regression.
SPEEDUP_FLOORS = {1: 0.75, 2: 1.15, 3: 1.3}
FULL_TARGET = 1.5
#: 4-shard qps below 0.75x of 1-shard qps is the every-shard-computes-
#: every-query shape (per-component fan-out lands at ~0.67x or worse) —
#: a hard failure regardless of core count.  IPC overhead alone costs
#: ~0.8-0.9x on a single time-sliced core, so 0.75 separates the two.
REGRESSION_FACTOR = 0.75


def _floor_for(cores: int) -> float:
    return SPEEDUP_FLOORS.get(cores, FULL_TARGET) if cores < 4 else FULL_TARGET


def _traffic(instance, pool_size: int, zipf_s: float) -> List[Dict[str, object]]:
    """A deterministic traffic slice: Zipf-weighted draws from a pool."""
    rng = random.Random(SEED)
    _, common = frequency_buckets(document_frequencies(instance))
    seekers = connected_seekers(instance)
    pool = [
        QuerySpec(rng.choice(seekers), (rng.choice(common),), 5)
        for _ in range(pool_size)
    ]
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(pool_size)]
    return [
        {"seeker": str(spec.seeker), "keywords": list(spec.keywords), "k": spec.k}
        for spec in rng.choices(pool, weights=weights, k=N_QUERIES)
    ]


def _ranked(response) -> tuple:
    result = response.result
    return (
        tuple((str(r.uri), r.lower, r.upper) for r in result.results),
        result.iterations,
        result.terminated_by,
    )


def _best_seconds(engine, queries) -> float:
    """Best-of-N closed-loop wall time for the whole workload in flight."""
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        engine.search_many(queries)
        best = min(best, time.perf_counter() - started)
    return best


def test_sharded_scaling(benchmark, twitter_instance):
    instance = twitter_instance
    cores = len(os.sched_getaffinity(0))
    build_started = time.perf_counter()
    index = ConnectionIndex(instance).ensure_all()
    index_build_seconds = time.perf_counter() - build_started
    # Caches off: uniform traffic measures the kernel, and repeating the
    # same workload across timing rounds must not degrade into replay.
    config = EngineConfig(result_cache_size=0)

    reference = Engine(instance, connection_index=index, config=config)
    rows: List[List[object]] = []
    workload_records = []
    speedups: Dict[str, Dict[int, float]] = {}
    four_shard_stats = None
    for name, pool_size, zipf_s in TRAFFIC_MIXES:
        queries = _traffic(instance, pool_size, zipf_s)
        unique = len(
            {(q["seeker"], tuple(q["keywords"]), q["k"]) for q in queries}
        )
        expected = [_ranked(reference.search(dict(q))) for q in queries]
        scaling = []
        qps_by_shards: Dict[int, float] = {}
        for shards in SHARD_COUNTS:
            sharded = ShardedEngine(
                instance, shards=shards, connection_index=index, config=config
            )
            try:
                answers = sharded.search_many(queries)
                assert [_ranked(a) for a in answers] == expected, (
                    f"sharded answers diverged from the single-process "
                    f"engine ({name} mix, {shards} shards)"
                )
                seconds = _best_seconds(sharded, queries)
                if name == "uniform" and shards == 4:
                    four_shard_stats = sharded.stats()
            finally:
                sharded.close()
            qps = N_QUERIES / seconds
            qps_by_shards[shards] = qps
            speedup = qps / qps_by_shards[SHARD_COUNTS[0]]
            scaling.append(
                {
                    "shards": shards,
                    "qps": round(qps, 2),
                    "speedup": round(speedup, 3),
                    "mean_latency_ms": round(seconds / N_QUERIES * 1e3, 3),
                }
            )
            rows.append(
                [name, f"{unique}/{N_QUERIES}", shards, f"{qps:.0f}", f"{speedup:.2f}x"]
            )
        speedups[name] = {
            shards: qps / qps_by_shards[SHARD_COUNTS[0]]
            for shards, qps in qps_by_shards.items()
        }
        workload_records.append(
            {"workload": name, "unique_queries": unique, "scaling": scaling}
        )

    assert four_shard_stats is not None
    shard_load = {
        f"shard_{i}": int(four_shard_stats[f"shard_{i}"]["queries_routed"])
        for i in range(4)
    }
    router = four_shard_stats["router"]
    # Whole-query hashing must actually spread uniform traffic.
    assert sum(1 for n in shard_load.values() if n > 0) >= 3, shard_load

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = format_table(
        ["traffic mix", "unique", "shards", "q/s", "vs 1 shard"],
        rows,
        title=(
            f"Sharded serving scaling on I1 ({N_QUERIES} queries closed-loop, "
            f"{cores} core{'s' if cores != 1 else ''}, caches off)"
        ),
    )
    balance_line = (
        f"4-shard uniform load: "
        + ", ".join(f"{k}={v}" for k, v in shard_load.items())
        + f"; slab backend {router['slab_backend']}"
    )
    write_result("sharded_scaling", table + "\n" + balance_line)

    write_bench_json(
        "sharded_scaling",
        {
            "instance": "I1",
            "seed": SEED,
            "n_queries": N_QUERIES,
            "cores": cores,
            "timing_rounds": TIMING_ROUNDS,
            "bit_identical": True,
            "index_build_seconds": round(index_build_seconds, 4),
            "shard_counts": list(SHARD_COUNTS),
            "workloads": workload_records,
            "four_shard": {
                "slab_backend": router["slab_backend"],
                "slabs_placed": router["slabs_placed"],
                "worker_respawns": router["worker_respawns"],
                "shard_load": shard_load,
            },
        },
    )

    floor = _floor_for(cores)
    uniform_4x = speedups["uniform"][4]
    uniform_qps = {
        entry["shards"]: entry["qps"] for entry in workload_records[0]["scaling"]
    }
    assert uniform_qps[4] >= uniform_qps[1] * REGRESSION_FACTOR, (
        f"4-shard uniform qps {uniform_qps[4]:.0f} fell below "
        f"{REGRESSION_FACTOR}x of 1-shard ({uniform_qps[1]:.0f}) — the "
        "every-shard-computes-every-query regression shape"
    )
    assert uniform_4x >= floor, (
        f"uniform 4-shard speedup {uniform_4x:.2f}x below the {floor}x "
        f"floor for {cores} core(s)"
    )
