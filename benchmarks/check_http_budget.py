"""CI hard gate for the HTTP serving bench artifact.

Usage::

    python benchmarks/check_http_budget.py FRESH.json [capacity_factor]

Reads the ``BENCH_serving_http.json`` a fresh bench run just emitted and
fails when the serving tier violated its structural contract:

* the knee's p99 must be inside the latency budget the server enforces
  (the bench found no load level it could serve cleanly otherwise);
* past saturation, overload must be shed by admission control — 429s
  present, zero 504s, zero dropped connections.  A server that times
  requests out instead of rejecting them has broken backpressure;
* the HTTP tier's capacity must stay within *capacity_factor* (default
  2x, matching the other perf gates) of the engine-only qps measured in
  the same run.  A ratio of two same-run numbers, so a slow shared
  runner cannot trip it — only a real regression of the HTTP path can.

The tighter perf targets (HTTP within 10% of engine-only) live in the
bench's own asserts, which CI runs ``continue-on-error`` because they
are timing-sensitive on shared runners.  This gate is the merge-blocking
subset that must hold on any machine.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    fresh = json.loads(Path(argv[1]).read_text())
    capacity_factor = float(argv[2]) if len(argv) > 2 else 2.0

    budget_ms = float(fresh["latency_budget_ms"])
    knee = fresh["knee"]
    print(
        f"knee: {knee['target_qps']:.0f} q/s target at "
        f"{knee['load_fraction']}x capacity, p99 {knee['latency_p99_ms']:.1f} ms "
        f"(budget {budget_ms:.0f} ms)"
    )
    if knee["latency_p99_ms"] > budget_ms:
        print("FAIL: p99 at the knee exceeds the request deadline budget")
        return 1

    saturated = fresh["levels"][-1]
    print(
        f"saturation ({saturated['load_fraction']}x capacity): "
        f"{saturated['rejected_429']} rejected, "
        f"{saturated['deadline_504']} deadline-expired, "
        f"{saturated['client_errors']} connection errors"
    )
    if saturated["rejected_429"] <= 0:
        print("FAIL: past saturation the server never shed load with 429s")
        return 1
    if saturated["deadline_504"] > 0 or saturated["client_errors"] > 0:
        print(
            "FAIL: overload leaked past admission control "
            "(timeouts or dropped connections instead of 429s)"
        )
        return 1

    capacity = fresh["capacity"]
    floor = float(capacity["engine_qps"]) / capacity_factor
    print(
        f"capacity: HTTP {capacity['qps']:.0f} q/s vs in-run engine-only "
        f"{capacity['engine_qps']:.0f} q/s, floor {floor:.0f} "
        f"(= engine / {capacity_factor:g})"
    )
    if capacity["qps"] < floor:
        print(
            f"FAIL: the HTTP tier costs more than {capacity_factor:g}x "
            "over the engine-only serving path"
        )
        return 1

    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
