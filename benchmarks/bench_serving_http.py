"""HTTP serving under load: open-loop arrivals against ``HttpServer``.

``bench_serving_latency`` measures the micro-batching engine through
``await engine.asearch(...)`` — no sockets, no admission control.  This
bench puts the full HTTP tier in the path (:mod:`repro.engine.http`:
request parsing, deadline mapping, bounded admission, response
encoding) and asks two questions:

* **capacity** — replaying the *same* uniform workload as the committed
  ``BENCH_serving_latency.json`` (96 requests, 0.3 ms stagger, identical
  engine knobs) through real HTTP connections: the tier's overhead must
  keep sustained qps within 10% of the engine-only number.
* **latency vs load** — an open-loop target-qps sweep against a
  backpressured server (bounded admission queue, 250 ms request
  deadline).  Requests arrive on a fixed schedule regardless of
  completions — the honest serving model; a closed loop would slow its
  own arrivals when the server struggles and hide the knee.  Below the
  knee every request completes with p99 under the budget; past
  saturation the server must shed load with immediate 429s, **not** by
  letting admitted requests time out (504s).

All capacity-phase answers are asserted bit-identical to sequential
``S3kSearch.search``.  Emits ``BENCH_serving_http.json`` with the
latency-vs-load curve; ``check_http_budget.py`` hard-gates it in CI.
"""

import asyncio
import json
import random
import time
from typing import Dict, List

from repro import Engine, EngineConfig, S3kSearch
from repro.engine.http import (
    HttpClientConnection,
    HttpConfig,
    HttpServer,
    http_call,
)
from repro.eval import format_table, latency_percentiles
from repro.queries.workload import (
    QuerySpec,
    connected_seekers,
    document_frequencies,
    frequency_buckets,
)

from benchmarks.conftest import write_result
from benchmarks.emit import read_bench_json, write_bench_json

#: Mirror of the bench_serving_latency uniform mix so the capacity
#: number is an apples-to-apples comparison against the committed
#: ``BENCH_serving_latency.json``.
N_REQUESTS = 96
SEED = 23
MAX_BATCH_SIZE = 16
BATCH_DEADLINE = 0.005
ARRIVAL_GAP = 0.0003
POOL_SIZE = N_REQUESTS * 4

#: Per-request latency SLO (matches bench_serving_latency and the
#: server's default deadline in the sweep phase).
LATENCY_BUDGET = 0.25
#: The HTTP tier may cost at most 10% of engine-only serving qps.
CAPACITY_FLOOR = 0.9

#: Sweep: open-loop arrival rates as fractions of the measured capacity.
#: The last levels are deliberately past saturation: the backlog must
#: outgrow the admission queue within the level so the server sheds load
#: with 429s rather than deadline expiry.
LOAD_LEVELS = (0.3, 0.6, 0.9, 1.2, 1.8, 3.0)
REQUESTS_PER_LEVEL = 120
#: The overload level runs longer: at 3x capacity the backlog outpaces
#: service by ~2x capacity q/s, so ~0.25 s in, the 32-slot queue is full
#: and every later arrival is rejected immediately.
OVERLOAD_REQUESTS = 240
#: Bounded admission queue for the sweep server: small enough that the
#: queue fills (and sheds with 429s) long before queued requests could
#: burn through the 250 ms deadline.
SWEEP_MAX_INFLIGHT = 32


def _traffic(instance, n: int, seed: int = SEED) -> List[QuerySpec]:
    """Uniform request pool, same construction as bench_serving_latency."""
    rng = random.Random(seed)
    _, common = frequency_buckets(document_frequencies(instance))
    seekers = connected_seekers(instance)
    pool = [
        QuerySpec(rng.choice(seekers), (rng.choice(common),), 5)
        for _ in range(POOL_SIZE)
    ]
    return rng.choices(pool, k=n)


def _body(spec: QuerySpec) -> Dict[str, object]:
    return {"seeker": str(spec.seeker), "keywords": list(spec.keywords), "k": spec.k}


def _engine(instance) -> Engine:
    return Engine(
        instance,
        config=EngineConfig(
            max_batch_size=MAX_BATCH_SIZE,
            batch_deadline=BATCH_DEADLINE,
            result_cache_size=0,
        ),
    )


async def _engine_burst(instance, specs: List[QuerySpec]) -> float:
    """The reference replay through ``engine.asearch`` directly — the
    engine-only qps measured in *this* process, so the HTTP/engine ratio
    below is immune to run-to-run machine noise (the committed
    ``BENCH_serving_latency.json`` number came from a separate run)."""
    engine = _engine(instance)
    engine.warm()
    engine.search_many(specs[:8])

    async def one(spec: QuerySpec) -> None:
        await engine.asearch(spec)

    started = time.perf_counter()
    tasks = []
    for spec in specs:
        tasks.append(asyncio.create_task(one(spec)))
        await asyncio.sleep(ARRIVAL_GAP)
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - started
    await engine.aclose()
    return len(specs) / elapsed


async def _http_burst(instance, specs: List[QuerySpec]) -> Dict[str, object]:
    """The same replay over real HTTP connections.

    One pre-opened keep-alive connection per in-flight request: the
    timed region covers request write → response read, exactly the span
    the engine-only replay times around ``asearch``.  Connection setup
    is a fixed cost real clients amortize over a connection's lifetime,
    so it stays outside the measurement (the sweep phase, which models
    independent arrivals, pays it on every request).
    """
    engine = _engine(instance)
    engine.warm()
    engine.search_many(specs[:8])
    server = HttpServer(engine, config=HttpConfig(port=0, max_inflight=256))
    await server.start()
    try:
        connections = [
            await HttpClientConnection.open(server.port) for _ in specs
        ]
        # Warm the socket path too (header parsing, response encoding).
        await connections[0].request("POST", "/search", body=_body(specs[0]))

        latencies = [0.0] * len(specs)
        payloads: list = [None] * len(specs)

        async def one(position: int, spec: QuerySpec) -> None:
            started = time.perf_counter()
            response = await connections[position].request(
                "POST", "/search", body=_body(spec)
            )
            latencies[position] = time.perf_counter() - started
            assert response.status == 200, response.body
            payloads[position] = response.json()

        started = time.perf_counter()
        tasks = []
        for position, spec in enumerate(specs):
            tasks.append(asyncio.create_task(one(position, spec)))
            await asyncio.sleep(ARRIVAL_GAP)
        await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - started
        for connection in connections:
            await connection.aclose()
    finally:
        await server.drain()

    # Bit-identity: every wire answer matches the sequential kernel.
    kernel = S3kSearch(instance, result_cache_size=0)
    for spec, payload in zip(specs, payloads):
        expected = kernel.search(spec.seeker, spec.keywords, k=spec.k)
        assert payload["results"] == [
            {"uri": str(r.uri), "lower": r.lower, "upper": r.upper}
            for r in expected.results
        ], f"HTTP answer diverged from kernel on {spec!r}"

    summary = latency_percentiles(latencies)
    return {
        "n_requests": len(specs),
        "qps": round(len(specs) / elapsed, 2),
        "latency_p50_ms": round(summary["p50"] * 1e3, 3),
        "latency_p99_ms": round(summary["p99"] * 1e3, 3),
    }


async def _capacity_phase(instance, specs: List[QuerySpec]) -> Dict[str, object]:
    """Engine-only and HTTP replays of the reference workload, same
    process, engine-first so both run on fully warmed instance caches."""
    engine_qps = await _engine_burst(instance, specs)
    capacity = await _http_burst(instance, specs)
    capacity["engine_qps"] = round(engine_qps, 2)
    capacity["http_over_engine"] = round(capacity["qps"] / engine_qps, 3)
    return capacity


async def _run_level(
    port: int, specs: List[QuerySpec], target_qps: float
) -> Dict[str, object]:
    """Open-loop: request *i* departs at ``start + i / target_qps``."""
    outcomes: list = [None] * len(specs)  # (status, latency_seconds)

    async def one(position: int, spec: QuerySpec) -> None:
        started = time.perf_counter()
        try:
            response = await http_call(
                port, "POST", "/search", body=_body(spec)
            )
            outcomes[position] = (response.status, time.perf_counter() - started)
        except OSError:
            outcomes[position] = (-1, time.perf_counter() - started)

    start = time.perf_counter()
    tasks = []
    for position, spec in enumerate(specs):
        due = start + position / target_qps
        delay = due - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(one(position, spec)))
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - start

    statuses = [status for status, _ in outcomes]
    completed = statuses.count(200)
    ok_latencies = [
        latency for status, latency in outcomes if status == 200
    ] or [0.0]
    summary = latency_percentiles(ok_latencies)
    return {
        "target_qps": round(target_qps, 2),
        "offered": len(specs),
        "completed": completed,
        "rejected_429": statuses.count(429),
        "deadline_504": statuses.count(504),
        "client_errors": sum(1 for s in statuses if s not in (200, 429, 504)),
        "achieved_qps": round(completed / elapsed, 2) if elapsed else 0.0,
        "latency_p50_ms": round(summary["p50"] * 1e3, 3),
        "latency_p99_ms": round(summary["p99"] * 1e3, 3),
    }


async def _sweep_phase(
    instance, capacity_qps: float
) -> List[Dict[str, object]]:
    """Target-qps sweep against a backpressured, deadline-enforcing server."""
    engine = _engine(instance)
    engine.warm()
    server = HttpServer(
        engine,
        config=HttpConfig(
            port=0,
            max_inflight=SWEEP_MAX_INFLIGHT,
            default_deadline=LATENCY_BUDGET,
        ),
    )
    await server.start()
    try:
        # Socket + engine warmup outside any measured level.
        for spec in _traffic(instance, 8, seed=SEED + 1):
            await http_call(server.port, "POST", "/search", body=_body(spec))
        levels = []
        for fraction in LOAD_LEVELS:
            n = OVERLOAD_REQUESTS if fraction == LOAD_LEVELS[-1] else REQUESTS_PER_LEVEL
            specs = _traffic(instance, n, seed=SEED)
            level = await _run_level(
                server.port, specs, target_qps=fraction * capacity_qps
            )
            level["load_fraction"] = fraction
            levels.append(level)
        return levels
    finally:
        await server.drain()


def _knee(levels: List[Dict[str, object]]) -> Dict[str, object]:
    """Highest load level served cleanly: everything completed, p99 in
    budget.  The curve's last clean point before backpressure kicks in."""
    clean = [
        level
        for level in levels
        if level["completed"] == level["offered"]
        and level["latency_p99_ms"] <= LATENCY_BUDGET * 1e3
    ]
    assert clean, f"no load level was served cleanly: {levels!r}"
    return max(clean, key=lambda level: level["target_qps"])


def test_serving_http(benchmark, twitter_instance):
    instance = twitter_instance
    reference = read_bench_json("serving_latency")
    reference_qps = next(
        w for w in reference["workloads"] if w["workload"] == "uniform"
    )["qps"]

    capacity = asyncio.run(_capacity_phase(instance, _traffic(instance, N_REQUESTS)))
    levels = asyncio.run(_sweep_phase(instance, capacity["qps"]))
    knee = _knee(levels)
    saturated = levels[-1]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [
            f"{level['load_fraction']:.1f}x",
            f"{level['target_qps']:.0f}",
            f"{level['achieved_qps']:.0f}",
            f"{level['completed']}/{level['offered']}",
            str(level["rejected_429"]),
            str(level["deadline_504"]),
            f"{level['latency_p50_ms']:.1f} ms",
            f"{level['latency_p99_ms']:.1f} ms",
        ]
        for level in levels
    ]
    table = format_table(
        ["load", "target q/s", "served q/s", "ok", "429", "504", "p50", "p99"],
        rows,
        title=(
            f"HTTP serving on I1 — capacity {capacity['qps']:.0f} q/s "
            f"(engine-only in-run {capacity['engine_qps']:.0f}, "
            f"committed {reference_qps:.0f}), "
            f"max_inflight={SWEEP_MAX_INFLIGHT}, "
            f"deadline {LATENCY_BUDGET * 1e3:.0f} ms"
        ),
    )
    write_result("serving_http", table)

    write_bench_json(
        "serving_http",
        {
            "instance": "I1",
            "seed": SEED,
            "batch_size": MAX_BATCH_SIZE,
            "batch_deadline_ms": BATCH_DEADLINE * 1e3,
            "latency_budget_ms": LATENCY_BUDGET * 1e3,
            "max_inflight": SWEEP_MAX_INFLIGHT,
            "reference_engine_qps": reference_qps,
            "capacity": capacity,
            "levels": levels,
            "knee": {
                "load_fraction": knee["load_fraction"],
                "target_qps": knee["target_qps"],
                "achieved_qps": knee["achieved_qps"],
                "latency_p99_ms": knee["latency_p99_ms"],
            },
        },
    )

    # SLOs (CI runs this bench continue-on-error; check_http_budget.py is
    # the hard gate and re-checks the structural half of these).  The
    # capacity floor compares against the engine-only replay measured in
    # this same run — a ratio, so shared-runner speed doesn't trip it.
    assert capacity["qps"] >= CAPACITY_FLOOR * capacity["engine_qps"], (
        f"HTTP tier sustained {capacity['qps']:.0f} q/s, below "
        f"{CAPACITY_FLOOR:.0%} of the in-run engine-only "
        f"{capacity['engine_qps']:.0f} q/s"
    )
    assert knee["latency_p99_ms"] <= LATENCY_BUDGET * 1e3, (
        f"knee p99 {knee['latency_p99_ms']:.1f} ms exceeds the "
        f"{LATENCY_BUDGET * 1e3:.0f} ms budget"
    )
    assert saturated["rejected_429"] > 0, (
        f"past saturation ({saturated['load_fraction']}x capacity) the "
        f"server should shed load with 429s: {saturated!r}"
    )
    assert saturated["deadline_504"] == 0 and saturated["client_errors"] == 0, (
        f"overload must be shed by admission control, not timeouts or "
        f"dropped connections: {saturated!r}"
    )
    print(json.dumps({"knee": knee, "capacity": capacity}, indent=2))
