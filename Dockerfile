# S3k serving tier: `repro serve --http` behind a bounded admission
# queue with graceful SIGTERM drain (see README "Serving").
#
# The container serves whatever SQLite database is mounted at $DB
# (default /data/i1.db).  When nothing is mounted it bootstraps a
# Twitter-shaped demo instance with prebuilt ConnectionIndex slabs on
# first start, so `docker compose up` answers queries out of the box.
FROM python:3.11-slim

RUN pip install --no-cache-dir numpy scipy

WORKDIR /app
COPY src/ src/

ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1 \
    DB=/data/i1.db \
    HTTP_ADDR=0.0.0.0:8080 \
    SHARDS=1 \
    SLAB_BACKEND=mmap

VOLUME /data
EXPOSE 8080

HEALTHCHECK --interval=10s --timeout=3s --start-period=60s \
  CMD python -c "import os, urllib.request; \
    port = os.environ['HTTP_ADDR'].rsplit(':', 1)[1]; \
    urllib.request.urlopen(f'http://127.0.0.1:{port}/healthz', timeout=2)"

# `exec` keeps the server as PID 1: SIGTERM from the runtime stops the
# listener, flushes in-flight micro-batches (with SHARDS > 1 the router
# quiesces before any worker process stops), and exits cleanly instead
# of dropping requests on the floor.  --rebuild-stale-index repairs
# slabs left stale by offline writes to the mounted database.
#
# SHARDS=N forks N full-engine worker processes off one warm parent;
# with the default mmap slab backend the index slabs are exported once
# to an uncompressed-npz sidecar next to $DB and memory-mapped by every
# worker — one physical copy regardless of N.  SLAB_BACKEND=shm places
# them in POSIX shared memory instead (size /dev/shm accordingly, see
# docker-compose.yml).
CMD ["sh", "-c", "\
  if [ ! -f \"$DB\" ]; then \
    echo \"bootstrapping demo instance at $DB\" >&2 && \
    python -m repro generate --dataset twitter --out \"$DB\" --scale 1.0 && \
    python -m repro index --db \"$DB\"; \
  fi && \
  exec python -m repro serve --db \"$DB\" --http \"$HTTP_ADDR\" \
    --shards \"$SHARDS\" --slab-backend \"$SLAB_BACKEND\" \
    --rebuild-stale-index"]
