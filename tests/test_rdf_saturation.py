"""Tests for RDFS saturation: every rule, weight restriction, fixpoint."""

from hypothesis import given, settings, strategies as st

from repro.rdf import (
    RDFGraph,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
    Triple,
    URI,
    add_and_saturate,
    saturate,
)
from repro.rdf.schema import SchemaView


def _graph(*triples):
    graph = RDFGraph()
    for t in triples:
        graph.add(*t)
    return graph


class TestIndividualRules:
    def test_subclass_transitivity(self):
        # M.S.Degree ≺sc Degree ≺sc Qualification
        graph = _graph(
            ("MS", RDFS_SUBCLASS, URI("Degree")),
            ("Degree", RDFS_SUBCLASS, URI("Qualification")),
        )
        saturate(graph)
        assert Triple(URI("MS"), RDFS_SUBCLASS, URI("Qualification")) in graph

    def test_subproperty_transitivity(self):
        graph = _graph(
            ("workingWith", RDFS_SUBPROPERTY, URI("acquaintedWith")),
            ("acquaintedWith", RDFS_SUBPROPERTY, URI("knows")),
        )
        saturate(graph)
        assert Triple(URI("workingWith"), RDFS_SUBPROPERTY, URI("knows")) in graph

    def test_type_propagation_through_subclass(self):
        graph = _graph(
            ("ms1", RDF_TYPE, URI("MS")),
            ("MS", RDFS_SUBCLASS, URI("Degree")),
        )
        saturate(graph)
        assert Triple(URI("ms1"), RDF_TYPE, URI("Degree")) in graph

    def test_assertion_propagation_through_subproperty(self):
        graph = _graph(
            ("u1", URI("workingWith"), URI("u2")),
            ("workingWith", RDFS_SUBPROPERTY, URI("acquaintedWith")),
        )
        saturate(graph)
        assert Triple(URI("u1"), URI("acquaintedWith"), URI("u2")) in graph

    def test_domain_typing(self):
        # The paper's example: hasFriend ←↩d Person, u1 hasFriend u0
        # entails u1 type Person.
        graph = _graph(
            ("hasFriend", RDFS_DOMAIN, URI("Person")),
            ("u1", URI("hasFriend"), URI("u0")),
        )
        saturate(graph)
        assert Triple(URI("u1"), RDF_TYPE, URI("Person")) in graph

    def test_range_typing(self):
        # u1 hasFriend u0, hasFriend ↪→r Person entails u0 type Person.
        graph = _graph(
            ("hasFriend", RDFS_RANGE, URI("Person")),
            ("u1", URI("hasFriend"), URI("u0")),
        )
        saturate(graph)
        assert Triple(URI("u0"), RDF_TYPE, URI("Person")) in graph

    def test_range_typing_skips_literal_objects(self):
        graph = _graph(
            ("hasName", RDFS_RANGE, URI("Name")),
            ("u1", URI("hasName"), "bob"),  # literal object: no typing
        )
        saturate(graph)
        assert not any(
            wt.predicate == RDF_TYPE and wt.subject == URI("bob") for wt in graph
        )


class TestRuleInteraction:
    def test_subproperty_then_domain(self):
        # p ≺sp q, q ←↩d C, s p o  ⊢  s q o  ⊢  s type C
        graph = _graph(
            ("p", RDFS_SUBPROPERTY, URI("q")),
            ("q", RDFS_DOMAIN, URI("C")),
            ("s", URI("p"), URI("o")),
        )
        saturate(graph)
        assert Triple(URI("s"), URI("q"), URI("o")) in graph
        assert Triple(URI("s"), RDF_TYPE, URI("C")) in graph

    def test_deep_subclass_chain(self):
        triples = [(f"c{i}", RDFS_SUBCLASS, URI(f"c{i+1}")) for i in range(6)]
        triples.append(("x", RDF_TYPE, URI("c0")))
        graph = _graph(*triples)
        saturate(graph)
        for i in range(7):
            assert Triple(URI("x"), RDF_TYPE, URI(f"c{i}")) in graph

    def test_saturation_is_idempotent(self):
        graph = _graph(
            ("MS", RDFS_SUBCLASS, URI("Degree")),
            ("ms1", RDF_TYPE, URI("MS")),
        )
        first = saturate(graph)
        assert first > 0
        assert saturate(graph) == 0

    def test_incremental_equals_batch(self):
        base = [
            ("c0", RDFS_SUBCLASS, URI("c1")),
            ("c1", RDFS_SUBCLASS, URI("c2")),
            ("p", RDFS_DOMAIN, URI("c0")),
        ]
        extra = [Triple(URI("x"), URI("p"), URI("y"))]
        batch = _graph(*base)
        batch.add("x", "p", "y")
        saturate(batch)

        incremental = _graph(*base)
        saturate(incremental)
        add_and_saturate(incremental, extra)

        assert {wt.triple for wt in batch} == {wt.triple for wt in incremental}


class TestWeightRestriction:
    def test_weighted_premise_does_not_fire(self):
        # Entailment applies only to weight-1 triples.
        graph = RDFGraph()
        graph.add("u1", "hasFriend", URI("u0"), 0.5)
        graph.add("hasFriend", RDFS_DOMAIN, URI("Person"))
        saturate(graph)
        assert Triple(URI("u1"), RDF_TYPE, URI("Person")) not in graph

    def test_weighted_schema_does_not_fire(self):
        graph = RDFGraph()
        graph.add("u1", "hasFriend", URI("u0"))
        graph.add("hasFriend", RDFS_DOMAIN, URI("Person"), 0.6)
        saturate(graph)
        assert Triple(URI("u1"), RDF_TYPE, URI("Person")) not in graph

    def test_entailed_triples_have_weight_one(self):
        graph = _graph(
            ("ms1", RDF_TYPE, URI("MS")),
            ("MS", RDFS_SUBCLASS, URI("Degree")),
        )
        saturate(graph)
        assert graph.weight(URI("ms1"), RDF_TYPE, URI("Degree")) == 1.0


class TestSchemaView:
    def test_accessors(self):
        graph = _graph(
            ("MS", RDFS_SUBCLASS, URI("Degree")),
            ("follow", RDFS_SUBPROPERTY, URI("social")),
            ("follow", RDFS_DOMAIN, URI("Person")),
            ("follow", RDFS_RANGE, URI("Person")),
            ("ms1", RDF_TYPE, URI("MS")),
        )
        saturate(graph)
        view = SchemaView(graph)
        assert URI("MS") in view.subclasses(URI("Degree"))
        assert URI("Degree") in view.superclasses(URI("MS"))
        assert URI("follow") in view.subproperties(URI("social"))
        assert URI("social") in view.superproperties(URI("follow"))
        assert view.domain(URI("follow")) == {URI("Person")}
        assert view.range(URI("follow")) == {URI("Person")}
        assert URI("ms1") in view.instances(URI("MS"))
        assert URI("MS") in view.types(URI("ms1"))
        assert set(view.properties_specializing(URI("social"))) == {
            URI("social"),
            URI("follow"),
        }


# ---------------------------------------------------------------------------
# Property-based: saturation computes the true transitive closure
# ---------------------------------------------------------------------------
_class_names = st.integers(min_value=0, max_value=7).map(lambda i: URI(f"c{i}"))


class TestSaturationProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(_class_names, _class_names), max_size=15))
    def test_subclass_closure_matches_reachability(self, edges):
        graph = RDFGraph()
        for a, b in edges:
            graph.add(a, RDFS_SUBCLASS, b)
        saturate(graph)
        # Reference: reachability in the subclass digraph.
        adjacency = {}
        for a, b in edges:
            adjacency.setdefault(a, set()).add(b)
        for a, _ in edges:
            reachable, stack = set(), [a]
            while stack:
                node = stack.pop()
                for nxt in adjacency.get(node, ()):
                    if nxt not in reachable:
                        reachable.add(nxt)
                        stack.append(nxt)
            for b in reachable:
                assert Triple(a, RDFS_SUBCLASS, b) in graph
