"""Tests for the concrete S3k score and its feasibility properties."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import S3kScore
from repro.rdf import S3_CONTAINS


class TestConstruction:
    def test_rejects_gamma_at_most_one(self):
        with pytest.raises(ValueError):
            S3kScore(gamma=1.0)
        with pytest.raises(ValueError):
            S3kScore(gamma=0.5)

    def test_rejects_eta_outside_unit(self):
        with pytest.raises(ValueError):
            S3kScore(eta=0.0)
        with pytest.raises(ValueError):
            S3kScore(eta=1.0)

    def test_c_gamma(self):
        assert S3kScore(gamma=2.0).c_gamma == pytest.approx(0.5)
        assert S3kScore(gamma=1.25).c_gamma == pytest.approx(0.2)


class TestPathAggregation:
    def test_single_path(self):
        score = S3kScore(gamma=2.0)
        assert score.aggregate_paths([(0.5, 2)]) == pytest.approx(0.5 * 0.5 / 4)

    def test_empty_path_set(self):
        assert S3kScore().aggregate_paths([]) == 0.0

    def test_incremental_equals_batch(self):
        # Property 1: prox computed layer by layer equals the aggregate.
        score = S3kScore(gamma=1.5)
        layers = {1: [0.3, 0.2], 2: [0.1], 3: [0.8, 0.05, 0.01]}
        batch = score.aggregate_paths(
            [(pp, n) for n, pps in layers.items() for pp in pps]
        )
        incremental = 0.0
        for n in (1, 2, 3):
            incremental += score.prox_increment(incremental, layers[n], n)
        assert incremental == pytest.approx(batch)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1, allow_nan=False),
                st.integers(min_value=1, max_value=10),
            ),
            max_size=30,
        )
    )
    def test_aggregate_monotone_in_path_addition(self, pairs):
        # Adding a path never decreases the proximity.
        score = S3kScore(gamma=2.0)
        total = score.aggregate_paths(pairs)
        extended = score.aggregate_paths(pairs + [(0.5, 3)])
        assert extended >= total


class TestTailBounds:
    def test_tail_bound_formula(self):
        score = S3kScore(gamma=2.0)
        assert score.prox_tail_bound(0) == pytest.approx(0.5)
        assert score.prox_tail_bound(3) == pytest.approx(1 / 16)

    def test_tail_bound_tends_to_zero(self):
        score = S3kScore(gamma=1.25)
        values = [score.prox_tail_bound(n) for n in range(0, 100, 10)]
        assert all(b > a for a, b in zip(values[1:], values))
        assert values[-1] < 1e-8

    def test_tail_dominates_worst_case_mass(self):
        # Even if the *entire* unit mass sits at length n+1, n+2, ... the
        # bound holds: Cγ Σ_{j>n} γ^{-j} = γ^{-(n+1)}.
        score = S3kScore(gamma=2.0)
        for n in range(6):
            worst = score.aggregate_paths([(1.0, j) for j in range(n + 1, 60)])
            assert worst <= score.prox_tail_bound(n) + 1e-12

    def test_unexplored_source_bound(self):
        score = S3kScore(gamma=2.0)
        # mass at length ≥ n: Cγ Σ_{j≥n} γ^{-j} = γ^{-n}
        for n in range(1, 6):
            worst = score.aggregate_paths([(1.0, j) for j in range(n, 60)])
            assert worst <= score.unexplored_source_bound(n) + 1e-12


class TestCombine:
    def test_product_of_keyword_sums(self):
        score = S3kScore(eta=0.5)
        tuples = [
            (0, S3_CONTAINS, 0, 0.4),  # keyword 0: 1.0 * 0.4
            (0, S3_CONTAINS, 1, 0.2),  # keyword 0: 0.5 * 0.2
            (1, S3_CONTAINS, 2, 0.8),  # keyword 1: 0.25 * 0.8
        ]
        expected = (0.4 + 0.1) * 0.2
        assert score.combine(2, tuples) == pytest.approx(expected)

    def test_missing_keyword_zeroes_score(self):
        score = S3kScore()
        tuples = [(0, S3_CONTAINS, 0, 0.9)]
        assert score.combine(2, tuples) == 0.0

    def test_lca_behaviour_without_social(self):
        # With prox = 1, the LCA of two keyword occurrences beats any node
        # containing only one of them (which scores 0) and any higher
        # ancestor (penalized by η).
        score = S3kScore(eta=0.5)
        lca = score.combine(2, [(0, S3_CONTAINS, 1, 1.0), (1, S3_CONTAINS, 1, 1.0)])
        higher = score.combine(2, [(0, S3_CONTAINS, 2, 1.0), (1, S3_CONTAINS, 2, 1.0)])
        assert lca > higher > 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            max_size=20,
        ),
        st.floats(min_value=0.01, max_value=0.2),
    )
    def test_soundness_monotone_in_prox(self, entries, bump):
        # Property 3: raising any proximity never lowers the score.
        score = S3kScore()
        base = [(k, S3_CONTAINS, d, p) for k, d, p in entries]
        bumped = [(k, S3_CONTAINS, d, min(1.0, p + bump)) for k, d, p in entries]
        assert score.combine(3, bumped) >= score.combine(3, base) - 1e-15


class TestScoreBound:
    def test_bound_dominates_any_score(self):
        # Property 4: with all proximities ≤ B, the score is ≤ Bscore.
        score = S3kScore(eta=0.5)
        prox_bound = 0.3
        tuples = [
            (0, S3_CONTAINS, 0, 0.3),
            (0, S3_CONTAINS, 1, 0.25),
            (1, S3_CONTAINS, 0, 0.1),
        ]
        weights = [1 + 0.5, 1.0]  # per-keyword Σ η^dist bounds
        value = score.combine(2, tuples)
        assert value <= score.score_bound(weights, prox_bound) + 1e-12

    def test_bound_tends_to_zero_with_b(self):
        score = S3kScore()
        values = [score.score_bound([3.0, 2.0], 10.0**-i) for i in range(1, 8)]
        assert all(b < a for a, b in zip(values, values[1:]))
        assert values[-1] < 1e-10

    def test_bound_caps_prox_at_one(self):
        score = S3kScore()
        assert score.score_bound([2.0], 5.0) == pytest.approx(2.0)

    def test_structural_weight(self):
        score = S3kScore(eta=0.5)
        assert score.structural_weight(0) == 1.0
        assert score.structural_weight(3) == pytest.approx(0.125)


class TestPrecomputedSchedules:
    """The lazily grown ``tail_bound_at`` / ``threshold_at`` schedules must
    return the exact bits of the scalar hooks they memoize — the batched
    exploration loop certifies stops against the schedule values."""

    def test_tail_bound_schedule_matches_scalar_hook(self):
        score = S3kScore(gamma=1.7)
        for n in (0, 1, 2, 5, 17, 40):
            assert score.tail_bound_at(n) == score.prox_tail_bound(n)

    def test_tail_bound_schedule_grows_out_of_order(self):
        score = S3kScore()
        late = score.tail_bound_at(9)
        early = score.tail_bound_at(2)
        assert late == score.prox_tail_bound(9)
        assert early == score.prox_tail_bound(2)

    def test_threshold_schedule_matches_scalar_hooks(self):
        score = S3kScore(gamma=2.0, eta=0.5)
        weights = (1.5, 2.0)
        for n in (0, 1, 3, 8, 25):
            expected = score.score_bound(
                weights, score.unexplored_source_bound(n)
            )
            assert score.threshold_at(weights, n) == expected

    def test_threshold_schedule_keyed_by_weight_bounds(self):
        score = S3kScore()
        a = score.threshold_at((1.0,), 4)
        b = score.threshold_at((2.0, 0.5), 4)
        assert a == score.score_bound((1.0,), score.unexplored_source_bound(4))
        assert b == score.score_bound(
            (2.0, 0.5), score.unexplored_source_bound(4)
        )
        # re-asking an already-grown schedule replays the cached value
        assert score.threshold_at((1.0,), 4) == a

    def test_schedules_accept_list_weight_bounds(self):
        score = S3kScore()
        assert score.threshold_at([1.5], 2) == score.threshold_at((1.5,), 2)
