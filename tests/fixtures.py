"""Shared test fixtures: the paper's running examples as S3 instances."""

from repro.core import S3Instance
from repro.documents import Document, build_document
from repro.rdf import RDFS_SUBCLASS, URI, Literal
from repro.social import Tag


def figure3_instance():
    """The instance of Figure 3 (reconstructed).

    Users u0..u3; document URI0 with fragments URI0.0, URI0.0.0, URI0.1 and
    document URI1; tags a0 (on URI0.0.0, by u2, keyword k2) and a1 (on
    URI0.0, by u3); URI1 comments on URI0.1.

    The out-edges of the fragments of URI0 are arranged so that Example 2.3
    holds exactly: ``out(u0) = {→URI0 (1), →u3 (0.3)}`` and
    ``out(neigh(URI0))`` totals 4.
    """
    instance = S3Instance()
    for user in ("u0", "u1", "u2", "u3"):
        instance.add_user(user)
    instance.add_social_edge("u0", "u3", 0.3)
    instance.add_social_edge("u1", "u3", 0.5)
    instance.add_social_edge("u3", "u1", 0.5)
    instance.add_social_edge("u2", "u1", 0.7)

    root = build_document("URI0", "doc")
    mid = root.add_child(URI("URI0.0"), "section")
    mid.add_child(URI("URI0.0.0"), "para", ["k0"])
    root.add_child(URI("URI0.1"), "para", ["k1"])
    instance.add_document(Document(root), posted_by="u0")

    other = build_document("URI1", "doc", ["k2"])
    instance.add_document(Document(other), posted_by="u1")
    instance.add_comment_edge("URI1", "URI0.1")

    instance.add_tag(Tag(URI("a0"), URI("URI0.0.0"), URI("u2"), keyword="k2"))
    instance.add_tag(Tag(URI("a1"), URI("URI0.0"), URI("u3")))
    instance.saturate()
    return instance


def figure1_instance():
    """The motivating example of Figure 1.

    * u1 friend of u0; u2, u3, u4 other users;
    * d0 posted by u0, with fragments d0.3.2 (position (3, 2)) and d0.5.1
      (position (5, 1)) among others;
    * d1 posted by u2, replies to d0, mentions the entity kb:MS;
    * d2 posted by u3, comments on d0.3.2, contains "degre";
    * u4 tags d0.5.1 with "university";
    * knowledge base: kb:MS ≺sc "degre" (an M.S. is a degree).
    """
    instance = S3Instance()
    for user in ("u0", "u1", "u2", "u3", "u4"):
        instance.add_user(user)
    instance.add_social_edge("u1", "u0", 1.0, relation="hasFriend")
    instance.add_social_edge("u0", "u1", 1.0, relation="hasFriend")

    # d0: make positions line up with the paper's URIs (3rd and 5th child).
    d0 = build_document("d0", "article", ["opinion"])
    for i in range(1, 6):
        section = d0.add_child(URI(f"d0.{i}"), "section")
        if i == 3:
            section.add_child(URI("d0.3.1"), "para")
            section.add_child(URI("d0.3.2"), "para", ["debate"])
        if i == 5:
            section.add_child(URI("d0.5.1"), "para", ["campus"])
    instance.add_document(Document(d0), posted_by="u0")

    d1 = build_document("d1", "text", [URI("kb:MS"), "ualberta", "2012"])
    instance.add_document(Document(d1), posted_by="u2")
    instance.add_comment_edge("d1", "d0", relation="repliesTo")

    d2 = build_document("d2", "text", ["degre", "give", "opportun"])
    instance.add_document(Document(d2), posted_by="u3")
    instance.add_comment_edge("d2", "d0.3.2")

    instance.add_tag(Tag(URI("t:u4"), URI("d0.5.1"), URI("u4"), keyword="university"))

    instance.add_knowledge([(URI("kb:MS"), RDFS_SUBCLASS, Literal("degre"))])
    instance.saturate()
    return instance


def two_community_instance():
    """Two user communities around two topical documents.

    Used to check that social proximity drives ranking: the same keyword
    appears in both documents, but each seeker should see their community's
    document first.
    """
    instance = S3Instance()
    for i in range(6):
        instance.add_user(f"u{i}")
    # Community A: u0-u1-u2, Community B: u3-u4-u5, weak bridge u2-u3.
    for a, b in (("u0", "u1"), ("u1", "u0"), ("u1", "u2"), ("u2", "u1"),
                 ("u3", "u4"), ("u4", "u3"), ("u4", "u5"), ("u5", "u4")):
        instance.add_social_edge(a, b, 0.9)
    instance.add_social_edge("u2", "u3", 0.1)
    instance.add_social_edge("u3", "u2", 0.1)

    doc_a = build_document("docA", "post", ["python", "databas"])
    instance.add_document(Document(doc_a), posted_by="u1")
    doc_b = build_document("docB", "post", ["python", "network"])
    instance.add_document(Document(doc_b), posted_by="u4")
    instance.saturate()
    return instance
