"""The async serving path: deadline-driven micro-batching + collapsing.

Contracts under test (ISSUE 3):

* **size flush** — a window reaching ``max_batch_size`` dispatches
  immediately (the deadline timer never fires);
* **deadline flush** — an under-full window dispatches once the latency
  budget elapses;
* **collapsing** — identical requests, whether still waiting in the
  window or already dispatched and computing, join one computation;
* **bit-identity** — concurrent ``await engine.asearch(...)`` returns
  exactly what sequential ``S3kSearch.search`` returns, on fixtures and
  randomized instances;
* **invalidation** — a mutation through the facade is visible to the
  next async answer.
"""

import asyncio
import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import Engine, EngineConfig, QueryRequest, S3kSearch, Tag, URI
from repro.core.search import SearchResult
from repro.engine import Batcher

from .fixtures import figure1_instance, two_community_instance
from .instance_gen import VOCABULARY, random_instance

#: Generous overall timeout: a hung flush (the failure mode these tests
#: guard) fails fast instead of wedging the suite.
TIMEOUT = 30.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def _result_for(request: QueryRequest) -> SearchResult:
    """A minimal synthetic kernel answer (unit tests of the Batcher)."""
    return SearchResult(
        seeker=request.seeker,
        keywords=request.keywords,
        k=request.k,
        results=[],
        iterations=0,
        terminated_by="threshold",
        elapsed_seconds=0.0,
        candidates_examined=0,
        components_processed=0,
        components_discarded=0,
    )


class TestFlushModes:
    def test_size_flush_beats_far_deadline(self):
        engine = Engine(
            figure1_instance(),
            config=EngineConfig(max_batch_size=2, batch_deadline=60.0),
        )

        async def go():
            responses = await asyncio.gather(
                engine.asearch(("u1", ["degre"], 3)),
                engine.asearch(("u0", ["debate"], 2)),
            )
            await engine.aclose()
            return responses

        responses = run(go())
        stats = engine.stats()["batcher"]
        assert stats["size_flushes"] == 1
        assert stats["deadline_flushes"] == 0
        assert stats["batches"] == 1
        assert all(r.flush_reason == "size" for r in responses)
        assert all(r.batch_size == 2 for r in responses)

    def test_deadline_flush_dispatches_underfull_window(self):
        engine = Engine(
            figure1_instance(),
            config=EngineConfig(max_batch_size=100, batch_deadline=0.02),
        )

        async def go():
            responses = await asyncio.gather(
                engine.asearch(("u1", ["degre"], 3)),
                engine.asearch(("u0", ["debate"], 2)),
                engine.asearch(("u4", ["university"], 1)),
            )
            await engine.aclose()
            return responses

        responses = run(go())
        stats = engine.stats()["batcher"]
        assert stats["deadline_flushes"] >= 1
        assert stats["size_flushes"] == 0
        assert {r.flush_reason for r in responses} == {"deadline"}

    def test_batch_deadline_zero_dispatches_each_request(self):
        engine = Engine(
            figure1_instance(),
            config=EngineConfig(max_batch_size=8, batch_deadline=0.0),
        )

        async def go():
            responses = await asyncio.gather(
                engine.asearch(("u1", ["degre"], 3)),
                engine.asearch(("u0", ["debate"], 2)),
            )
            await engine.aclose()
            return responses

        responses = run(go())
        assert all(r.batch_size == 1 for r in responses)
        assert engine.stats()["batcher"]["batches"] == 2


class TestCollapsing:
    def test_window_collapsing_of_identical_requests(self):
        engine = Engine(
            figure1_instance(),
            config=EngineConfig(max_batch_size=100, batch_deadline=0.02),
        )
        query = ("u1", ["degre"], 3)

        async def go():
            responses = await asyncio.gather(
                *[engine.asearch(query) for _ in range(5)],
                engine.asearch(("u0", ["debate"], 2)),
            )
            await engine.aclose()
            return responses

        responses = run(go())
        stats = engine.stats()["batcher"]
        assert stats["submitted"] == 6
        assert stats["computed"] == 2  # one per *unique* request
        assert stats["collapsed"] == 4
        assert stats["collapse_rate"] == 3.0
        first = responses[0].result.results
        assert all(r.result.results == first for r in responses[:5])
        assert sum(1 for r in responses[:5] if r.collapsed) == 4

    def test_inflight_collapsing_joins_running_computation(self):
        """A request identical to one already dispatched (still computing)
        must await that computation, not occupy a new batch slot."""
        release = threading.Event()
        calls = []

        def compute(requests):
            calls.append(list(requests))
            assert release.wait(TIMEOUT)
            return [_result_for(r) for r in requests]

        executor = ThreadPoolExecutor(max_workers=1)
        request = QueryRequest(seeker="u1", keywords=("degre",), k=3)

        async def go():
            batcher = Batcher(
                compute, max_batch_size=1, max_delay=0.0, executor=executor
            )
            first = asyncio.create_task(batcher.submit(request))
            await asyncio.sleep(0.05)  # batch dispatched; compute blocked
            second = asyncio.create_task(batcher.submit(request))
            await asyncio.sleep(0.05)
            release.set()
            served = await asyncio.gather(first, second)
            await batcher.aclose()
            return batcher, served

        try:
            batcher, (first, second) = run(go())
        finally:
            release.set()
            executor.shutdown(wait=True)
        assert len(calls) == 1  # one computation for both waiters
        assert not first.collapsed and second.collapsed
        assert second.result is first.result
        assert batcher.collapsed == 1 and batcher.computed == 1

    def test_collapse_disabled_duplicates_each_get_answered(self):
        """With collapsing off, equal concurrent requests must occupy two
        window slots — both waiters complete (regression: a dict-keyed
        window overwrote the first waiter's future and stranded it)."""
        engine = Engine(
            figure1_instance(),
            config=EngineConfig(
                max_batch_size=2, batch_deadline=60.0, collapse=False
            ),
        )
        query = ("u1", ["degre"], 3)

        async def go():
            responses = await asyncio.gather(
                engine.asearch(query), engine.asearch(query)
            )
            await engine.aclose()
            return responses

        first, second = run(go())
        assert first.result.results == second.result.results
        stats = engine.stats()["batcher"]
        assert stats["computed"] == 2 and stats["collapsed"] == 0

    def test_bad_request_does_not_poison_its_micro_batch(self):
        """A failing request (unknown seeker) sharing a window with valid
        requests must fail alone; its neighbors still get answers."""
        engine = Engine(
            figure1_instance(),
            config=EngineConfig(max_batch_size=100, batch_deadline=0.02),
        )

        async def go():
            outcomes = await asyncio.gather(
                engine.asearch(("u1", ["degre"], 3)),
                engine.asearch(("nobody", ["degre"], 3)),
                engine.asearch(("u0", ["debate"], 2)),
                return_exceptions=True,
            )
            await engine.aclose()
            return outcomes

        good, bad, also_good = run(go())
        assert isinstance(bad, KeyError) and "nobody" in str(bad)
        kernel = S3kSearch(engine.instance)
        assert good.result.results == kernel.search("u1", ["degre"], k=3).results
        assert (
            also_good.result.results == kernel.search("u0", ["debate"], k=2).results
        )

    def test_compute_failure_propagates_to_every_waiter(self):
        def compute(requests):
            raise RuntimeError("kernel exploded")

        async def go():
            batcher = Batcher(compute, max_batch_size=2, max_delay=60.0)
            request_a = QueryRequest(seeker="u1", keywords=("a",), k=1)
            request_b = QueryRequest(seeker="u2", keywords=("b",), k=1)
            results = await asyncio.gather(
                batcher.submit(request_a),
                batcher.submit(request_b),
                return_exceptions=True,
            )
            await batcher.aclose()
            return results

        results = run(go())
        assert all(isinstance(r, RuntimeError) for r in results)


class TestCancellationIsolation:
    """A waiter cancelled mid-flush (what an expired serving deadline
    does via ``asyncio.wait_for``) must not poison its co-batched
    neighbors or leak the in-flight-collapse map (ISSUE 6)."""

    def _blocked_compute(self):
        release = threading.Event()

        def compute(requests):
            assert release.wait(TIMEOUT)
            return [_result_for(r) for r in requests]

        return release, compute

    def test_cancelled_waiter_mid_flush_spares_neighbors(self):
        release, compute = self._blocked_compute()
        executor = ThreadPoolExecutor(max_workers=1)
        request_a = QueryRequest(seeker="u1", keywords=("a",), k=1)
        request_b = QueryRequest(seeker="u2", keywords=("b",), k=1)

        async def go():
            batcher = Batcher(
                compute, max_batch_size=2, max_delay=60.0, executor=executor
            )
            task_a = asyncio.create_task(batcher.submit(request_a))
            task_b = asyncio.create_task(batcher.submit(request_b))
            # Yield until the size flush dispatched the window (no
            # timers: the second submit flushes synchronously).
            while not batcher._inflight:
                await asyncio.sleep(0)
            task_a.cancel()  # deadline hit while the batch is computing
            release.set()
            served_b = await task_b
            with pytest.raises(asyncio.CancelledError):
                await task_a
            await batcher.aclose()
            return batcher, served_b

        try:
            batcher, served_b = run(go())
        finally:
            release.set()
            executor.shutdown(wait=True)
        assert served_b.result.seeker == request_b.seeker
        assert served_b.batch_size == 2  # the neighbor rode the same batch
        assert batcher._inflight == {}  # no leak in the collapse map
        assert batcher._window == [] and batcher._window_futures == {}

    def test_cancelled_collapsed_waiter_leaves_original_running(self):
        release, compute = self._blocked_compute()
        executor = ThreadPoolExecutor(max_workers=1)
        request = QueryRequest(seeker="u1", keywords=("a",), k=1)

        async def go():
            batcher = Batcher(
                compute, max_batch_size=1, max_delay=0.0, executor=executor
            )
            original = asyncio.create_task(batcher.submit(request))
            while not batcher._inflight:
                await asyncio.sleep(0)
            rider = asyncio.create_task(batcher.submit(request))
            while batcher.collapsed == 0:
                await asyncio.sleep(0)
            rider.cancel()  # the joined waiter gives up...
            release.set()
            served = await original  # ...the original still completes
            with pytest.raises(asyncio.CancelledError):
                await rider
            await batcher.aclose()
            return batcher, served

        try:
            batcher, served = run(go())
        finally:
            release.set()
            executor.shutdown(wait=True)
        assert served.result.seeker == request.seeker
        assert not served.collapsed
        assert batcher.computed == 1 and batcher.collapsed == 1
        assert batcher._inflight == {}


class TestBitIdentity:
    def _assert_concurrent_matches_sequential(self, instance, queries):
        engine = Engine(
            instance,
            config=EngineConfig(
                max_batch_size=4, batch_deadline=0.005, result_cache_size=0
            ),
        )
        kernel = S3kSearch(instance, result_cache_size=0)

        async def go():
            responses = await asyncio.gather(
                *[engine.asearch(query) for query in queries]
            )
            await engine.aclose()
            return responses

        responses = run(go())
        for query, response in zip(queries, responses):
            request = QueryRequest.from_obj(query)
            single = kernel.search(
                request.seeker,
                request.keywords,
                k=request.k,
                semantic=request.semantic,
            )
            assert response.result.results == single.results
            assert response.result.iterations == single.iterations
            assert response.result.terminated_by == single.terminated_by

    def test_figure1_concurrent_grid(self):
        queries = [
            (seeker, keywords, k)
            for seeker in ("u0", "u1", "u4")
            for keywords in (["debate"], ["degre"], ["university", "degre"])
            for k in (1, 3)
        ]
        self._assert_concurrent_matches_sequential(figure1_instance(), queries)

    def test_two_communities_concurrent(self):
        queries = [(f"u{i}", ["python"], 2) for i in range(6)]
        self._assert_concurrent_matches_sequential(two_community_instance(), queries)

    def test_randomized_instances_concurrent(self):
        rng = random.Random(7)
        for _ in range(5):
            instance = random_instance(rng)
            seekers = sorted(instance.users)
            queries = [
                (
                    rng.choice(seekers),
                    rng.sample(VOCABULARY, rng.randint(1, 2)),
                    rng.choice([1, 3, 5]),
                )
                for _ in range(6)
            ]
            self._assert_concurrent_matches_sequential(instance, queries)

    def test_mixed_settings_in_one_window(self):
        instance = figure1_instance()
        engine = Engine(
            instance, config=EngineConfig(max_batch_size=100, batch_deadline=0.02)
        )
        kernel = S3kSearch(instance)
        plain = QueryRequest(seeker="u1", keywords=("degre",), k=3, semantic=False)
        semantic = QueryRequest(seeker="u1", keywords=("degre",), k=3, semantic=True)

        async def go():
            responses = await asyncio.gather(
                engine.asearch(plain), engine.asearch(semantic)
            )
            await engine.aclose()
            return responses

        without, with_semantics = run(go())
        assert (
            without.result.results
            == kernel.search("u1", ["degre"], k=3, semantic=False).results
        )
        assert (
            with_semantics.result.results
            == kernel.search("u1", ["degre"], k=3, semantic=True).results
        )


class TestAsyncLifecycle:
    def test_mutation_through_facade_visible_to_async_path(self):
        instance = figure1_instance()
        engine = Engine(instance)
        before = run(self._one(engine, ("u1", ["campus"], 5)))
        engine.add_tag(Tag(URI("t:new"), URI("d0.3.1"), URI("u0"), keyword="campus"))
        after = run(self._one(engine, ("u1", ["campus"], 5)))
        fresh = S3kSearch(engine.instance).search("u1", ["campus"], k=5)
        assert after.result.results == fresh.results
        assert after.result.results != before.result.results
        # The tag write rides the delta path — no full rebuild.
        stats = engine.stats()
        assert stats["engine"]["kernel_rebuilds"] == 0
        assert stats["maintenance"]["deltas_applied"] == 1

    @staticmethod
    async def _one(engine, query):
        response = await engine.asearch(query)
        await engine.aclose()
        return response

    def test_batcher_survives_event_loop_changes(self):
        """Each ``asyncio.run`` gets a fresh loop; the engine must retire
        the old batcher and keep aggregate counters."""
        engine = Engine(figure1_instance())
        run(self._one(engine, ("u1", ["degre"], 3)))
        run(self._one(engine, ("u0", ["debate"], 2)))
        stats = engine.stats()["batcher"]
        assert stats["submitted"] == 2
        assert stats["batches"] == 2

    def test_serve_lines_round_trip(self):
        import json

        engine = Engine(figure1_instance())
        lines = [
            '{"seeker": "u1", "keywords": ["degre"], "k": 3}',
            "",
            '{"seeker": "u1", "keywords": ["degre"], "k": 3, "id": "dup"}',
            "not json",
        ]
        written = []

        from repro.engine import serve_lines

        counters = run(serve_lines(engine, lines, written.append))
        assert counters == {"requests": 3, "answered": 2, "mutated": 0, "errors": 1}
        records = {record["id"]: record for record in map(json.loads, written)}
        assert records[0]["results"] == records["dup"]["results"]
        assert "error" in records[3]
