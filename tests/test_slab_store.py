"""The :class:`SlabStore` placement protocol and its three backends.

Contracts under test:

* **round-trip fidelity** — every backend returns arrays equal to what
  was put, across the dtypes the ConnectionIndex slabs actually use
  (int8 / int32 / intp / 2-D bool), including Fortran-ordered and
  zero-length members, with the caller's metadata string intact;
* **zero-copy placement** — the mmap backend hands back read-only
  ``np.memmap`` views over the sidecar files (not heap copies), and a
  reopened store over the same directory serves the same bundles; the
  shm backend supports cross-handle ``attach`` by segment prefix;
* **immutability** — slabs are write-once per name; the uncompressed
  npz member parser refuses compressed archives outright (a compressed
  member cannot be mapped, only inflated — silently copying would
  defeat the whole point of placement).
"""

import numpy as np
import pytest

from repro.storage import (
    HeapSlabStore,
    MmapSlabStore,
    ShmSlabStore,
    open_slab_store,
)
from repro.storage.slab_store import npz_member_layout


def _bundle():
    """Arrays shaped like a ConnectionIndex component slab."""
    return {
        "pair_types": np.array([0, 1, 1, 2], dtype=np.int8),
        "atom_ptr": np.array([0, 2, 4], dtype=np.intp),
        "ev_node": np.array([3, 1, 4, 1], dtype=np.int32),
        "coverage": np.asfortranarray(
            np.array([[True, False], [False, True]], dtype=bool)
        ),
        "empty": np.array([], dtype=np.int32),
    }


def _store_for(backend, tmp_path):
    return open_slab_store(backend, directory=tmp_path / "slabs")


BACKENDS = ("heap", "mmap", "shm")


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    store = _store_for(request.param, tmp_path)
    yield store
    store.close()


class TestRoundTrip:
    def test_arrays_and_meta_survive(self, store):
        bundle = _bundle()
        store.put("component_0", bundle, meta='{"ident": 0}')
        back = store.get("component_0")
        assert set(back) == set(bundle)
        for name, array in bundle.items():
            np.testing.assert_array_equal(back[name], array)
            assert back[name].dtype == array.dtype
        assert store.meta("component_0") == '{"ident": 0}'
        assert "component_0" in store
        assert store.names() == ["component_0"]

    def test_fortran_order_preserved(self, store):
        store.put("f", {"coverage": _bundle()["coverage"]})
        back = store.get("f")["coverage"]
        assert back.flags["F_CONTIGUOUS"]
        np.testing.assert_array_equal(back, _bundle()["coverage"])

    def test_write_once_per_name(self, store):
        store.put("once", {"a": np.arange(3)})
        with pytest.raises(ValueError, match="already stored"):
            store.put("once", {"a": np.arange(3)})

    def test_unknown_name_raises(self, store):
        with pytest.raises(KeyError):
            store.get("nope")

    def test_stats_report_backend_and_count(self, store):
        store.put("one", {"a": np.arange(4)})
        stats = store.stats()
        assert stats["slabs"] == 1
        assert stats["backend"] in BACKENDS


class TestMmapBacked:
    def test_views_are_readonly_memmaps(self, tmp_path):
        store = MmapSlabStore(tmp_path / "slabs")
        store.put("c", {"ev_node": np.arange(16, dtype=np.int32)})
        view = store.get("c")["ev_node"]
        assert isinstance(view, np.memmap)
        assert not view.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 7

    def test_reopen_serves_same_bundles(self, tmp_path):
        directory = tmp_path / "slabs"
        first = MmapSlabStore(directory)
        bundle = _bundle()
        first.put("component_3", bundle, meta="header")
        first.close()
        reopened = MmapSlabStore(directory)
        assert reopened.names() == ["component_3"]
        assert reopened.meta("component_3") == "header"
        for name, array in bundle.items():
            np.testing.assert_array_equal(reopened.get("component_3")[name], array)

    def test_compressed_npz_is_refused(self, tmp_path):
        path = tmp_path / "z.npz"
        np.savez_compressed(path, a=np.arange(1000))
        with open(path, "rb") as handle:
            with pytest.raises(ValueError, match="compressed"):
                npz_member_layout(handle)

    def test_layout_matches_numpy_load(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, **_bundle())
        with open(path, "rb") as handle:
            layout = npz_member_layout(handle)
        for name, array in _bundle().items():
            member = layout[name]
            assert member.dtype == array.dtype
            assert member.shape == array.shape


class TestShmBacked:
    def test_attach_by_prefix(self, tmp_path):
        owner = ShmSlabStore()
        bundle = _bundle()
        owner.put("component_1", bundle, meta="m")
        attached = ShmSlabStore.attach(owner.prefix, ["component_1"])
        try:
            for name, array in bundle.items():
                np.testing.assert_array_equal(
                    attached.get("component_1")[name], array
                )
            assert attached.meta("component_1") == "m"
        finally:
            attached.close(unlink=False)
            owner.close()

    def test_owner_close_unlinks(self):
        owner = ShmSlabStore()
        owner.put("c", {"a": np.arange(8)})
        prefix = owner.prefix
        owner.close()
        with pytest.raises((FileNotFoundError, KeyError)):
            ShmSlabStore.attach(prefix, ["c"])


class TestFactory:
    def test_mmap_requires_directory(self):
        with pytest.raises(ValueError, match="sidecar directory"):
            open_slab_store("mmap")

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown slab backend"):
            open_slab_store("tape")

    def test_heap_is_default_reference(self):
        store = open_slab_store("heap")
        assert isinstance(store, HeapSlabStore)
        store.close()


class TestReadOnlyEnforcement:
    """``get`` hands out frozen views on every backend: the slabs are
    shared (CoW heap pages, shm segments, mmap'd sidecars), so an
    in-place write must raise instead of corrupting other readers."""

    def test_every_backend_serves_frozen_views(self, store):
        store.put("component_0", _bundle(), meta="m")
        for name, view in store.get("component_0").items():
            assert not view.flags.writeable, name

    def test_mutation_raises_on_every_backend(self, store):
        store.put("component_0", _bundle())
        back = store.get("component_0")
        with pytest.raises((ValueError, RuntimeError)):
            back["ev_node"][0] = 99
        with pytest.raises((ValueError, RuntimeError)):
            back["coverage"][0, 0] = False
        with pytest.raises((ValueError, RuntimeError)):
            back["atom_ptr"] += 1
        with pytest.raises((ValueError, RuntimeError)):
            back["ev_node"].sort()

    def test_freezing_never_touches_the_callers_arrays(self, store):
        bundle = _bundle()
        store.put("component_0", bundle)
        store.get("component_0")
        assert bundle["ev_node"].flags.writeable
        bundle["ev_node"][0] = 7  # the caller's own copy stays mutable

    def test_contents_identical_after_freezing(self, store):
        bundle = _bundle()
        store.put("component_0", bundle)
        back = store.get("component_0")
        for name, array in bundle.items():
            np.testing.assert_array_equal(back[name], array)
