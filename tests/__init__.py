"""Test package for the S3 reproduction.

Making ``tests`` a package lets the suite's relative imports
(``from .fixtures import ...``) resolve under ``python -m pytest``.
"""
