"""Tests for the UIT model, the S3→UIT adapter and the TopkS baseline."""

import pytest

from repro.baselines import TopkSSearcher, UITDataset, uit_from_instance
from repro.rdf import URI

from .fixtures import figure1_instance, two_community_instance


def _toy_uit():
    """Small hand-built UIT dataset with two communities."""
    dataset = UITDataset()
    dataset.add_link("a", "b", 0.9)
    dataset.add_link("b", "a", 0.9)
    dataset.add_link("b", "c", 0.5)
    dataset.add_link("c", "d", 0.8)
    dataset.add_triple("b", "i1", "jazz")
    dataset.add_triple("b", "i1", "jazz")  # multiplicity 2
    dataset.add_triple("c", "i2", "jazz")
    dataset.add_triple("d", "i3", "rock")
    return dataset


class TestUITDataset:
    def test_link_weight_bounds(self):
        dataset = UITDataset()
        with pytest.raises(ValueError):
            dataset.add_link("a", "b", 1.4)

    def test_duplicate_link_keeps_max(self):
        dataset = UITDataset()
        dataset.add_link("a", "b", 0.2)
        dataset.add_link("a", "b", 0.7)
        dataset.add_link("a", "b", 0.4)
        assert dataset.links_of("a")["b"] == 0.7

    def test_triple_multiplicity(self):
        dataset = _toy_uit()
        assert dataset.taggers("i1", "jazz")["b"] == 2
        assert dataset.tag_count("i1", "jazz") == 2
        assert dataset.max_tag_count("jazz") == 2

    def test_reachable_items(self):
        dataset = _toy_uit()
        assert dataset.reachable_items(["jazz"]) == {"i1", "i2"}
        assert dataset.reachable_items(["rock", "jazz"]) == {"i1", "i2", "i3"}
        assert dataset.reachable_items(["zzz"]) == set()


class TestTopkS:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            TopkSSearcher(_toy_uit(), alpha=1.5)

    def test_social_proximity_shortest_path(self):
        # prox(a, c) = 0.9 * 0.5 through the only path.
        dataset = _toy_uit()
        searcher = TopkSSearcher(dataset, alpha=1.0)
        scores = searcher.exact_scores("a", ["jazz"])
        # i1 tagged twice by b at prox 0.9; i2 tagged once by c at 0.45.
        assert scores["i1"] == pytest.approx(2 * 0.9)
        assert scores["i2"] == pytest.approx(0.45)

    def test_content_only_alpha_zero(self):
        dataset = _toy_uit()
        searcher = TopkSSearcher(dataset, alpha=0.0)
        scores = searcher.exact_scores("a", ["jazz"])
        assert scores["i1"] == pytest.approx(1.0)  # 2/2
        assert scores["i2"] == pytest.approx(0.5)  # 1/2

    def test_search_matches_exact_scores(self):
        dataset = _toy_uit()
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
            searcher = TopkSSearcher(dataset, alpha=alpha)
            result = searcher.search("a", ["jazz", "rock"], k=3)
            exact = searcher.exact_scores("a", ["jazz", "rock"])
            expected = sorted(exact, key=lambda i: (-exact[i], i))[:3]
            assert result.items == expected
            for ranked in result.results:
                assert ranked.lower == pytest.approx(exact[ranked.item])

    def test_unknown_keyword_empty(self):
        searcher = TopkSSearcher(_toy_uit())
        result = searcher.search("a", ["zzz"], k=3)
        assert result.items == []

    def test_max_users_caps_exploration(self):
        searcher = TopkSSearcher(_toy_uit(), alpha=1.0)
        result = searcher.search("a", ["jazz"], k=2, max_users=1)
        assert result.users_visited <= 1

    def test_disconnected_seeker_scores_content_only(self):
        dataset = _toy_uit()
        dataset.add_user("loner")
        searcher = TopkSSearcher(dataset, alpha=0.5)
        scores = searcher.exact_scores("loner", ["jazz"])
        # Social part contributes nothing except the seeker itself.
        assert scores["i1"] == pytest.approx(0.5 * 1.0)

    def test_search_on_larger_random_graph(self):
        import random

        rng = random.Random(3)
        dataset = UITDataset()
        users = [f"u{i}" for i in range(30)]
        for u in users:
            for v in rng.sample(users, 4):
                if u != v:
                    dataset.add_link(u, v, rng.uniform(0.2, 1.0))
        for i in range(40):
            for _ in range(rng.randint(1, 4)):
                dataset.add_triple(
                    rng.choice(users), f"i{i}", rng.choice(["x", "y", "z"])
                )
        for alpha in (0.25, 0.75):
            searcher = TopkSSearcher(dataset, alpha=alpha)
            for seeker in users[:5]:
                result = searcher.search(seeker, ["x", "y"], k=5)
                exact = searcher.exact_scores(seeker, ["x", "y"])
                expected = sorted(exact, key=lambda i: (-exact[i], i))[:5]
                got_scores = sorted((exact[i] for i in result.items), reverse=True)
                want_scores = sorted((exact[i] for i in expected), reverse=True)
                assert got_scores == pytest.approx(want_scores)


class TestAdapter:
    def test_items_are_components(self):
        instance = figure1_instance()
        dataset, doc_to_item = uit_from_instance(instance)
        # d0, d1, d2 all belong to the same comment-connected component.
        assert doc_to_item[URI("d0")] == doc_to_item[URI("d1")] == doc_to_item[URI("d2")]

    def test_keywords_become_triples_with_poster(self):
        instance = figure1_instance()
        dataset, doc_to_item = uit_from_instance(instance)
        item = doc_to_item[URI("d2")]
        # d2 ("degre...") was posted by u3.
        assert dataset.taggers(item, "degre").get("u3", 0) >= 1

    def test_tag_keywords_become_triples_with_author(self):
        instance = figure1_instance()
        dataset, doc_to_item = uit_from_instance(instance)
        item = doc_to_item[URI("d0.5.1")]
        assert dataset.taggers(item, "university").get("u4", 0) == 1

    def test_social_links_carry_weights(self):
        instance = two_community_instance()
        dataset, _ = uit_from_instance(instance)
        assert dataset.links_of("u0")["u1"] == pytest.approx(0.9)
        assert dataset.links_of("u2")["u3"] == pytest.approx(0.1)

    def test_all_document_nodes_mapped(self):
        instance = figure1_instance()
        _, doc_to_item = uit_from_instance(instance)
        assert set(instance.node_to_document) <= set(doc_to_item)
