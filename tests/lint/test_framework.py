"""Framework tests: suppressions, import resolution, scoping, CLI.

These exercise the linter's plumbing — the parts every rule leans on —
independent of any particular invariant.
"""

import ast
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.repro_lint import (
    Finding,
    default_config,
    format_findings,
    lint_file,
    lint_paths,
)
from tools.repro_lint.base import ImportMap, dotted_name, walk_functions
from tools.repro_lint.config import RuleScope, path_matches
from tools.repro_lint.suppressions import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSuppressions:
    def test_trailing_comment_suppresses_its_line(self):
        source = "import time\ntime.sleep(1)  # repro-lint: disable=no-sleep-tests\n"
        suppressions = parse_suppressions(source)
        assert suppressions.suppressed("no-sleep-tests", 2)
        assert not suppressions.suppressed("no-sleep-tests", 1)

    def test_own_line_comment_covers_the_following_line(self):
        source = textwrap.dedent(
            """\
            import time
            # repro-lint: disable=determinism
            stamp = time.time()
            """
        )
        suppressions = parse_suppressions(source)
        assert suppressions.suppressed("determinism", 2)
        assert suppressions.suppressed("determinism", 3)
        assert not suppressions.suppressed("determinism", 4)

    def test_disable_file_covers_everything(self):
        source = "# repro-lint: disable-file=fork-safety\nx = 1\n"
        suppressions = parse_suppressions(source)
        assert suppressions.suppressed("fork-safety", 40)
        assert not suppressions.suppressed("determinism", 40)

    def test_all_keyword_and_comma_lists(self):
        source = textwrap.dedent(
            """\
            a = 1  # repro-lint: disable=async-blocking, determinism
            b = 2  # repro-lint: disable=all
            """
        )
        suppressions = parse_suppressions(source)
        assert suppressions.suppressed("async-blocking", 1)
        assert suppressions.suppressed("determinism", 1)
        assert not suppressions.suppressed("fork-safety", 1)
        assert suppressions.suppressed("fork-safety", 2)

    def test_directive_inside_a_string_is_inert(self):
        source = 'text = "# repro-lint: disable=all"\n'
        suppressions = parse_suppressions(source)
        assert not suppressions.suppressed("determinism", 1)

    def test_suppression_filters_a_real_finding(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "ranker.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro-lint: disable=determinism\n"
        )
        findings = lint_file(bad, default_config(), root=tmp_path)
        assert findings == []


class TestImportResolution:
    def _imports(self, source):
        return ImportMap(ast.parse(source))

    def test_module_alias(self):
        imports = self._imports("import time as t\n")
        assert imports.resolve("t") == "time"

    def test_from_import_and_alias(self):
        imports = self._imports("from time import sleep as nap\n")
        assert imports.resolve("nap") == "time.sleep"

    def test_dotted_name_through_alias(self):
        tree = ast.parse("import numpy as np\nnp.random.rand(3)\n")
        call = tree.body[1].value
        assert dotted_name(call.func, ImportMap(tree)) == "numpy.random.rand"

    def test_dynamic_base_has_no_name(self):
        tree = ast.parse("store.get(n)['a'].sort()\n")
        call = tree.body[0].value
        assert dotted_name(call.func, ImportMap(tree)) is None

    def test_walk_functions_qualifies_methods(self):
        tree = ast.parse(
            textwrap.dedent(
                """\
                def helper(): ...
                class ShardedEngine:
                    def __init__(self): ...
                    async def route(self):
                        def inner(): ...
                """
            )
        )
        names = [name for name, _ in walk_functions(tree)]
        assert names == [
            "helper",
            "ShardedEngine.__init__",
            "ShardedEngine.route",
            "ShardedEngine.route.inner",
        ]


class TestScoping:
    def test_prefix_matching_is_component_wise(self):
        assert path_matches("src/repro/core/search.py", ("src/repro/core",))
        assert not path_matches("src/repro/core2/x.py", ("src/repro/core",))
        assert path_matches("anything/at/all.py", ("",))

    def test_rule_scope_excludes_win(self):
        scope = RuleScope(paths=("tests",), excludes=("tests/lint",))
        assert scope.applies_to("tests/test_engine.py")
        assert not scope.applies_to("tests/lint/test_rules.py")

    def test_fixture_directory_is_globally_excluded(self):
        config = default_config()
        assert config.excluded("tests/lint/fixtures/determinism_bad.py")
        assert not config.excluded("tests/lint/test_rules.py")

    def test_default_scopes_keep_rules_off_foreign_paths(self):
        config = default_config()
        engine_only = config.scope("async-blocking")
        assert engine_only.applies_to("src/repro/engine/batcher.py")
        assert not engine_only.applies_to("src/repro/core/search.py")
        sharded_only = config.scope("fork-safety")
        assert sharded_only.applies_to("src/repro/engine/sharded.py")
        assert not sharded_only.applies_to("src/repro/engine/server.py")

    def test_select_rejects_unknown_rules(self):
        with pytest.raises(KeyError):
            default_config().select(["no-such-rule"])


class TestRunner:
    def test_parse_error_is_a_loud_finding(self, tmp_path):
        broken = tmp_path / "src" / "repro" / "core" / "broken.py"
        broken.parent.mkdir(parents=True)
        broken.write_text("def f(:\n")
        findings = lint_file(broken, default_config(), root=tmp_path)
        assert len(findings) == 1
        assert findings[0].rule == "parse-error"

    def test_lint_paths_orders_and_deduplicates(self, tmp_path):
        core = tmp_path / "src" / "repro" / "core"
        core.mkdir(parents=True)
        (core / "a.py").write_text("import time\nx = time.time()\n")
        (core / "b.py").write_text("import random\ny = random.random()\n")
        findings = lint_paths(
            [tmp_path / "src", core / "a.py"],  # a.py named twice
            root=tmp_path,
        )
        assert [Path(f.path).name for f in findings] == ["a.py", "b.py"]

    def test_formatter_shape(self):
        rendered = format_findings(
            [
                Finding("b.py", 2, 0, "determinism", "later"),
                Finding("a.py", 9, 4, "fork-safety", "earlier"),
            ]
        )
        assert rendered.splitlines() == [
            "a.py:9:4: [fork-safety] earlier",
            "b.py:2:0: [determinism] later",
            "2 findings",
        ]


def _run_cli(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
    )


class TestCli:
    def test_list_rules_names_every_rule(self):
        result = _run_cli("--list-rules")
        assert result.returncode == 0
        for rule in (
            "async-blocking",
            "slab-mutation",
            "fork-safety",
            "no-sleep-tests",
            "determinism",
        ):
            assert rule in result.stdout

    def test_clean_tree_exits_zero(self, tmp_path):
        core = tmp_path / "src" / "repro" / "core"
        core.mkdir(parents=True)
        core.joinpath("clean.py").write_text(
            "import random\n"
            "def pick(seed, items):\n"
            "    return random.Random(seed).choice(items)\n"
        )
        result = _run_cli("--root", str(tmp_path), str(tmp_path / "src"))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "repro-lint: clean" in result.stdout

    def test_violations_exit_nonzero_with_file_line(self, tmp_path):
        core = tmp_path / "src" / "repro" / "core"
        core.mkdir(parents=True)
        core.joinpath("bad.py").write_text(
            "import time\ndef stamp():\n    return time.time()\n"
        )
        result = _run_cli("--root", str(tmp_path), str(tmp_path / "src"))
        assert result.returncode == 1
        assert "bad.py:3:" in result.stdout
        assert "[determinism]" in result.stdout
        assert "1 finding" in result.stdout

    def test_select_limits_the_run(self, tmp_path):
        core = tmp_path / "src" / "repro" / "core"
        core.mkdir(parents=True)
        core.joinpath("bad.py").write_text(
            "import time\ndef stamp():\n    return time.time()\n"
        )
        result = _run_cli(
            "--select", "fork-safety",
            "--root", str(tmp_path), str(tmp_path / "src"),
        )
        assert result.returncode == 0  # determinism not selected

    def test_unknown_select_is_a_usage_error(self):
        result = _run_cli("--select", "no-such-rule", "src")
        assert result.returncode == 2
        assert "no-such-rule" in result.stderr

    def test_missing_path_is_a_usage_error(self, tmp_path):
        result = _run_cli(str(tmp_path / "does-not-exist"))
        assert result.returncode == 2


class TestMypyConfig:
    def test_config_parses_and_engine_storage_check(self):
        """CI runs mypy over engine + storage with mypy.ini; locally the
        dev container has no mypy, so this skips rather than installs."""
        pytest.importorskip("mypy")
        from mypy import api as mypy_api

        stdout, stderr, status = mypy_api.run(
            [
                "--config-file", str(REPO_ROOT / "mypy.ini"),
                str(REPO_ROOT / "src" / "repro" / "engine"),
                str(REPO_ROOT / "src" / "repro" / "storage"),
            ]
        )
        # Config errors exit 2; type findings exit 1 and are advisory in
        # CI until a baseline is pinned (see the lint job comment).
        assert status != 2, stderr
