"""Rule regression tests: every rule against its paired fixtures.

Each rule is pointed at its ``<rule>_bad.py`` fixture (every documented
violation pattern must be found, at the marked lines) and its
``<rule>_good.py`` twin (the closest legal spellings must stay
finding-free).  Path scopes are overridden so the fixtures — which live
in the globally excluded ``tests/lint/fixtures/`` — are reachable.
"""

from pathlib import Path

import pytest

from tools.repro_lint import default_config, lint_file

FIXTURES = Path(__file__).parent / "fixtures"
RULES = (
    "async-blocking",
    "slab-mutation",
    "fork-safety",
    "no-sleep-tests",
    "determinism",
)

#: rule → number of distinct violations its bad fixture stages
EXPECTED_BAD_FINDINGS = {
    "async-blocking": 8,
    "slab-mutation": 11,
    "fork-safety": 6,
    "no-sleep-tests": 4,
    "determinism": 10,
}


def _fixture(rule: str, kind: str) -> Path:
    return FIXTURES / f"{rule.replace('-', '_')}_{kind}.py"


def _run_rule_on(rule: str, path: Path):
    """Lint *path* with only *rule* enabled and its scope forced open."""
    config = (
        default_config()
        .select([rule])
        .override(rule, paths=("",), excludes=())
    )
    config = config.__class__(scopes=config.scopes, global_excludes=())
    return lint_file(path, config, root=path.parent)


class TestBadFixtures:
    @pytest.mark.parametrize("rule", RULES)
    def test_every_staged_violation_is_found(self, rule):
        findings = _run_rule_on(rule, _fixture(rule, "bad"))
        assert len(findings) == EXPECTED_BAD_FINDINGS[rule], [
            finding.render() for finding in findings
        ]
        assert all(finding.rule == rule for finding in findings)

    @pytest.mark.parametrize("rule", RULES)
    def test_findings_land_on_the_marked_lines(self, rule):
        """Every staged violation carries a ``# BAD`` marker on its
        line (or its enclosing statement's line for multi-line
        patterns); every finding must hit a marked region."""
        path = _fixture(rule, "bad")
        lines = path.read_text().splitlines()
        marked = {
            number
            for number, line in enumerate(lines, start=1)
            if "BAD" in line
        }
        for finding in _run_rule_on(rule, path):
            # A finding anchors on the statement; the marker sits on the
            # anchor line or within the following two physical lines
            # (decorated / multi-line statements).
            window = {finding.line, finding.line + 1, finding.line + 2}
            assert window & marked, finding.render()

    def test_bad_fixture_lines_are_exact_for_sleep(self):
        findings = _run_rule_on(
            "no-sleep-tests", _fixture("no-sleep-tests", "bad")
        )
        sleeps = [f for f in findings if "time.sleep" in f.message]
        assert [f.line for f in sleeps] == [9, 14]


class TestGoodFixtures:
    @pytest.mark.parametrize("rule", RULES)
    def test_legal_spellings_stay_clean(self, rule):
        findings = _run_rule_on(rule, _fixture(rule, "good"))
        assert findings == [], [finding.render() for finding in findings]


class TestDeterminismBudgetHookScoping:
    """The batch-major helpers of ISSUE 9 must stay outside the
    sanctioned monotonic-clock hooks: phase timing is read only in the
    ``search_many`` loop body, never in the bookkeeping it calls."""

    def test_batch_helpers_are_not_sanctioned_hooks(self):
        from tools.repro_lint.rules.determinism import _BUDGET_HOOKS

        assert "S3kSearch.search_many" in _BUDGET_HOOKS
        for helper in (
            "S3kSearch._refresh_bounds_batch",
            "S3kSearch._update_bounds",
            "S3kSearch._clean_screen",
            "S3kSearch._stop_screen",
            "S3kSearch._absorb_discovery",
        ):
            assert helper not in _BUDGET_HOOKS

    def test_helper_nested_inside_a_hook_is_still_flagged(self, tmp_path):
        # innermost-def attribution: a def nested in search_many has its
        # own qualname and is not sanctioned by the enclosing hook
        path = tmp_path / "kernel.py"
        path.write_text(
            "import time\n"
            "\n"
            "\n"
            "class S3kSearch:\n"
            "    def search_many(self, queries):\n"
            "        def tick():\n"
            "            return time.perf_counter()\n"
            "        return [tick() for _ in queries]\n"
        )
        findings = _run_rule_on("determinism", path)
        assert len(findings) == 1
        assert "tick" in findings[0].message

    def test_clock_read_in_hook_body_stays_clean(self, tmp_path):
        path = tmp_path / "kernel.py"
        path.write_text(
            "import time\n"
            "\n"
            "\n"
            "class S3kSearch:\n"
            "    def search_many(self, queries):\n"
            "        started = time.perf_counter()\n"
            "        return time.perf_counter() - started\n"
        )
        assert _run_rule_on("determinism", path) == []


class TestRuleMetadata:
    def test_all_five_rules_are_registered(self):
        from tools.repro_lint import registered_rules

        assert set(registered_rules()) == set(RULES)

    @pytest.mark.parametrize("rule", RULES)
    def test_rules_document_themselves(self, rule):
        from tools.repro_lint import registered_rules

        instance = registered_rules()[rule]
        assert instance.description
        assert instance.rationale
        assert instance.default_paths
