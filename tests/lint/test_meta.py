"""Meta-test: the real tree is clean, and seeded violations are caught.

The first half is the actual enforcement: ``src/`` and ``tests/`` must
produce zero findings under the default configuration — the same
invocation CI runs.  The second half proves the zero is meaningful by
seeding one violation per rule into a scratch tree shaped like the repo
and asserting each is caught.
"""

import textwrap
from pathlib import Path

import pytest

from tools.repro_lint import default_config, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

SEEDS = {
    "async-blocking": (
        "src/repro/engine/seeded.py",
        """\
        import time

        async def handle(request):
            time.sleep(0.01)
            return request
        """,
    ),
    "slab-mutation": (
        "src/repro/storage/seeded.py",
        """\
        def renumber(slab_store, name):
            arrays = slab_store.get(name)
            arrays["ev_node"][0] = 0
            return arrays
        """,
    ),
    "fork-safety": (
        "src/repro/engine/sharded.py",
        """\
        import threading

        class ShardedEngine:
            def __init__(self):
                self._pump = threading.Thread(target=print)
        """,
    ),
    "no-sleep-tests": (
        "tests/test_seeded.py",
        """\
        import time

        def test_waits():
            time.sleep(0.5)
        """,
    ),
    "determinism": (
        "src/repro/core/seeded.py",
        """\
        import random

        def tiebreak(candidates):
            return random.choice(candidates)
        """,
    ),
}


class TestRealTreeIsClean:
    def test_src_and_tests_have_zero_findings(self):
        findings = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests"],
            root=REPO_ROOT,
        )
        assert findings == [], "\n".join(f.render() for f in findings)


class TestSeededViolationsAreCaught:
    @pytest.mark.parametrize("rule", sorted(SEEDS))
    def test_one_seed_per_rule(self, rule, tmp_path):
        relpath, source = SEEDS[rule]
        seed = tmp_path / relpath
        seed.parent.mkdir(parents=True, exist_ok=True)
        seed.write_text(textwrap.dedent(source))
        findings = lint_paths([tmp_path], root=tmp_path)
        assert findings, f"seeded {rule} violation went undetected"
        assert {f.rule for f in findings} == {rule}
        assert all(Path(f.path).name == seed.name for f in findings)

    def test_seeds_vanish_under_file_suppression(self, tmp_path):
        relpath, source = SEEDS["determinism"]
        seed = tmp_path / relpath
        seed.parent.mkdir(parents=True)
        seed.write_text(
            "# repro-lint: disable-file=determinism\n"
            + textwrap.dedent(source)
        )
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_scopes_keep_seeds_inert_outside_their_layer(self, tmp_path):
        # The same unseeded-random code outside src/repro/core/ is legal:
        # determinism is a kernel invariant, not a global style rule.
        _, source = SEEDS["determinism"]
        elsewhere = tmp_path / "src" / "repro" / "engine" / "seeded.py"
        elsewhere.parent.mkdir(parents=True)
        elsewhere.write_text(textwrap.dedent(source))
        findings = lint_paths([tmp_path], root=tmp_path)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_default_config_matches_cli_default(self):
        # lint_paths(None config) and default_config() must agree, so the
        # meta-test above genuinely replays the CI invocation.
        config = default_config()
        findings = lint_paths(
            [REPO_ROOT / "src" / "repro" / "core"],
            config=config,
            root=REPO_ROOT,
        )
        assert findings == []
