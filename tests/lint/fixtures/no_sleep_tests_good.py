"""Legal spellings the no-sleep-tests rule must not flag."""

import asyncio
import time


def test_waits_on_the_harness_condition(router):
    generation = router.generation
    router.crash_worker(0)
    router.wait_for_respawn(0, generation)  # condition wait, no polling
    assert router.alive


async def test_yields_to_the_event_loop(batcher):
    await asyncio.sleep(0)  # a loop yield, not a nap
    assert batcher.stats()["batches"] >= 0


def test_measures_elapsed_time(engine):
    started = time.perf_counter()
    engine.search("u", ["alpha"])
    assert time.perf_counter() - started < 60  # reading clocks is fine


def test_loops_over_work_items(responses):
    while responses:  # no clock in the condition
        responses.pop()
