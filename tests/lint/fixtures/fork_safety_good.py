"""Legal spellings the fork-safety rule must not flag."""

import threading
from concurrent.futures import ThreadPoolExecutor


class ShardedEngine:
    def __init__(self, engine, shards):
        # Creating an unheld lock object is fine; acquiring it is not.
        self._close_lock = threading.Lock()
        self._hook_pool = None
        self._shards = list(range(shards))

    def _ensure_hook_pool(self):
        # Lazy post-fork creation: runs on the first async request,
        # long after the workers exist.
        if self._hook_pool is None:
            self._hook_pool = ThreadPoolExecutor(max_workers=8)
        return self._hook_pool

    def close(self):
        with self._close_lock:  # post-fork teardown path
            self._shards = []


class _Shard:
    def _start_locked(self, context):
        # The reader thread starts after this shard's fork completed;
        # _Shard is not on the rule's pre-fork list.
        reader = threading.Thread(target=self._read_loop, daemon=True)
        reader.start()

    def _read_loop(self):
        pass


def _worker_loop(conn, engine, worker_index, max_batch):
    # The child drops inherited serving plumbing and stays
    # single-threaded: drain the pipe, answer via the engine.
    engine._executor = None
    while True:
        try:
            batch = [conn.recv()]
        except (EOFError, OSError):
            break
        engine.search_many(batch)
