"""Legal spellings the slab-mutation rule must not flag."""

import numpy as np


def reads_a_mapped_slab(slab_store, name):
    arrays = slab_store.get(name)
    return arrays["ev_node"][0]  # reading shared slabs is the point


def copies_before_mutating(slab_store, name):
    arrays = slab_store.get(name)
    mine = arrays["atom_ptr"].copy()  # a copy breaks the sharing
    mine += 1
    return mine


def sorts_a_copy(slab_store, name):
    return np.sort(slab_store.get(name)["ev_pair"])  # copying variant


def mutates_a_private_array(n):
    scratch = np.zeros(n, dtype=np.int32)
    scratch[0] = 1  # freshly allocated, not store-adopted
    scratch += 1
    scratch.sort()
    return scratch


def builds_coverage_in_place(n_nodes, n_atoms, mask):
    has_evidence = np.zeros((n_nodes, n_atoms), dtype=bool)
    has_evidence[0] |= mask  # the offline build owns its arrays
    return has_evidence


def plain_dict_get_is_not_a_store(counters, key):
    bucket = counters.get(key)
    if bucket is not None:
        bucket[0] = 1  # a dict named 'counters' is not a slab store
    return bucket


def seeds_from_a_warm_slab(warm, n_nodes):
    seed = np.zeros(n_nodes, dtype=bool)
    seed[:] = warm.node_activity[0]  # reading the old slab is the point
    return seed


def copies_a_warm_field_before_mutating(warm):
    mine = warm.node_activity.copy()  # a copy breaks the sharing
    mine[0] = True
    mine.sort()
    return mine


def registers_a_rebuilt_slab(index, ident, fresh):
    index._slabs[ident] = fresh  # swapping the registry entry is the
    return index._slabs[ident]   # sanctioned copy-on-patch move
