"""Deliberate fork-safety violations (never imported).

The class/function names mirror ``repro.engine.sharded`` because the
rule targets qualified names on the pre-fork path.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

_WARM_LOCK = threading.Lock()
_WARM_LOCK.acquire()  # BAD: module import level runs before any fork


class ShardedEngine:
    def __init__(self, engine, shards):
        self._pool = ThreadPoolExecutor(max_workers=4)  # BAD: pre-fork
        self._lock = threading.Lock()
        with self._lock:  # BAD: lock held while workers fork below
            self._shards = [object() for _ in range(shards)]

    @classmethod
    def from_store(cls, store):
        loader = threading.Thread(target=store.load_instance)  # BAD
        loader.start()
        return cls(None, 2)

    def _place_slabs(self, store):
        self._placement_lock.acquire()  # BAD: acquisition pre-fork
        return 0


def _worker_loop(conn, engine, worker_index, max_batch):
    helper = threading.Thread(target=conn.recv)  # BAD: worker threads
    helper.start()
