"""Legal spellings the async-blocking rule must not flag."""

import asyncio
import time


async def yields_to_the_loop(request):
    await asyncio.sleep(0)  # asyncio.sleep is awaited, not blocking
    return request


async def runs_kernel_in_executor(loop, engine, requests):
    return await loop.run_in_executor(None, engine.search_many, requests)


async def waits_with_timeout(event):
    await asyncio.wait_for(event.wait(), timeout=1.0)


def measures_latency(started):
    return time.perf_counter() - started  # reading a clock is fine


def loops_without_clock(queue):
    while queue:
        queue.pop()


async def closure_shipped_to_executor(loop, path):
    def blocking_read():  # nested sync def: executed off-loop below
        with open(path) as handle:
            return handle.read()

    return await loop.run_in_executor(None, blocking_read)
