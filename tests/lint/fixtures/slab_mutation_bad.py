"""Deliberate slab-mutation violations (never imported)."""

import numpy as np


def writes_into_a_mapped_slab(slab_store, name):
    arrays = slab_store.get(name)
    arrays["ev_node"][0] = 99  # BAD: in-place write to a shared slab


def writes_without_a_local(store):
    store.get("component_0")["coverage"][0, 0] = False  # BAD: direct write


def augments_a_slab(slab_store, name):
    arrays = slab_store.get(name)
    pointers = arrays["atom_ptr"]
    pointers += 1  # BAD: += mutates the shared buffer in place


def sorts_in_place(slab_store, name):
    view = slab_store.get(name)["ev_pair"]
    view.sort()  # BAD: .sort() writes into the mapped pages


def targets_shared_memory_with_out(slab_store, name, mask):
    arrays = slab_store.get(name)
    np.logical_or(arrays["coverage"], mask, out=arrays["coverage"])  # BAD


def mutates_an_adoption_parameter(header, arrays):
    arrays["pair_types"][0] = 1  # BAD: adoption entry points share arrays


def fills_an_exported_bundle(slab):
    bundle = slab.arrays()
    bundle["candidate_order"].fill(0)  # BAD: .arrays() hands out the slabs


def patches_a_warm_seed_in_place(component, warm):
    warm.node_activity[0, 0] = True  # BAD: the warm seed is the old slab


def sorts_a_warm_field(warm):
    warm.tag_uris.sort()  # BAD: in-place sort of the adopted slab's field


def augments_through_a_field_alias(warm):
    activity = warm.node_activity
    activity += 1  # BAD: the alias still points into shared memory


def writes_a_looked_up_slab(index, ident):
    slab = index.slab(ident)
    slab.ev_node[0] = 3  # BAD: .slab() hands out the shared arrays
