"""Deliberate async-blocking violations (never imported)."""

import sqlite3
import subprocess
import time
from socket import create_connection
from time import sleep as nap


async def sleeps_on_the_loop(request):
    time.sleep(0.1)  # BAD: blocks every in-flight request
    return request


async def sleeps_through_an_alias(request):
    nap(0.1)  # BAD: from time import sleep as nap
    return request


async def opens_a_database(path):
    connection = sqlite3.connect(path)  # BAD: sync I/O on the loop
    return connection


async def dials_out(host):
    return create_connection((host, 80))  # BAD: blocking socket op


async def reads_a_file(path):
    with open(path) as handle:  # BAD: synchronous file I/O
        return handle.read()


async def shells_out(command):
    return subprocess.run(command)  # BAD: blocks until the child exits


def naps_in_sync_code(delay):
    time.sleep(delay)  # BAD: the serving tier never naps, sync or async


def polls_a_deadline(shard, deadline):
    while time.monotonic() < deadline:  # BAD: clock-polling busy-wait
        if shard.alive:
            return True
    return False
