"""Legal spellings the determinism rule must not flag."""

import random
import time

import numpy as np


def uses_a_seeded_instance(seed, candidates):
    rng = random.Random(seed)  # explicit seed: replayable
    return rng.choice(candidates)


def uses_a_seeded_generator(seed, n):
    return np.random.default_rng(seed).random(n)  # seeded generator


class S3kSearch:
    def _prepare_query(self, seeker, keywords):
        started = time.perf_counter()  # sanctioned anytime-budget hook
        return seeker, keywords, started

    def _check_stop(self, state):
        return (
            state.time_budget is not None
            and time.perf_counter() - state.started > state.time_budget
        )

    def search_many(self, queries):
        # sanctioned batched-loop hook: phase timing lives in the loop
        # body itself, never in the bookkeeping helpers it calls
        batch_started = time.perf_counter()
        answers = [self._check_stop(query) for query in queries]
        self.phase_seconds = time.perf_counter() - batch_started
        return answers


class ConnectionIndex:
    def slab(self, ident):
        started = time.perf_counter()  # sanctioned build-cost counter
        built = object()
        self.build_seconds = time.perf_counter() - started
        return built


def instance_rng_calls_are_fine(rng, items):
    return rng.sample(items, 2)  # method on a passed-in seeded instance
