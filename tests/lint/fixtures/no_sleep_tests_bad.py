"""Deliberate no-sleep-tests violations (never imported)."""

import time
from time import sleep


def test_waits_for_the_server_to_boot(server):
    server.start()
    time.sleep(0.2)  # BAD: racy on loaded CI, dead time everywhere else
    assert server.alive


def test_sleeps_through_an_alias(worker):
    sleep(0.05)  # BAD: from time import sleep
    assert worker.done


def test_polls_a_deadline(shard):
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:  # BAD: a nap in a trench coat
        if shard.respawned:
            break
    assert shard.respawned


def test_polls_wall_clock(queue):
    end = time.time() + 1.0
    while time.time() < end:  # BAD: wall-clock polling loop
        queue.drain()
