"""Deliberate determinism violations (never imported).

Shaped like core-kernel code: the rule scopes to ``src/repro/core/``.
"""

import random
import time

import numpy as np


def breaks_tie_with_global_rng(candidates):
    return random.choice(candidates)  # BAD: unseeded global RNG


def samples_with_numpy_global(weights):
    return np.random.rand(len(weights))  # BAD: numpy's global RNG


def constructs_unseeded_generator():
    return np.random.default_rng()  # BAD: no seed argument


def constructs_unseeded_random():
    return random.Random()  # BAD: OS-entropy seeding


def stamps_results_with_wall_clock(result):
    result.created_at = time.time()  # BAD: wall clock in a kernel
    return result


def times_outside_the_budget_hooks(matrix, border):
    started = time.perf_counter()  # BAD: not a sanctioned budget hook
    product = matrix @ border
    return product, time.perf_counter() - started  # BAD: same, again


class S3kSearch:
    def _score_candidates(self, candidates):
        return sorted(candidates, key=lambda c: random.random())  # BAD

    def _refresh_bounds_batch(self, batch, states):
        # The batch-major bookkeeping helpers are NOT budget hooks: only
        # search_many itself may time its phases.
        started = time.perf_counter()  # BAD: batch helper reads the clock
        for state in states:
            state.synced = False
        self.phase_seconds = time.perf_counter() - started  # BAD: same
