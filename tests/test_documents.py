"""Tests for the document substrate: trees, Dewey positions, parsers, text."""

import pytest
from hypothesis import given, strategies as st

from repro.documents import (
    Document,
    DocumentNode,
    build_document,
    extract_keywords,
    parse_json,
    parse_text,
    parse_xml,
    porter_stem,
    tokenize,
)
from repro.rdf import URI


def _sample_document():
    """d0 with fragments d0.3.2-style layout (smaller, same shape)."""
    root = build_document("d0", "article", ["intro"])
    s1 = root.add_child(URI("d0.1"), "section", ["first"])
    s2 = root.add_child(URI("d0.2"), "section")
    s2p1 = s2.add_child(URI("d0.2.1"), "para", ["university"])
    s2p2 = s2.add_child(URI("d0.2.2"), "para", ["degree"])
    return Document(root), root, s1, s2, s2p1, s2p2


class TestText:
    def test_tokenize_lowercases(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_tokenize_keeps_hashtags_and_mentions(self):
        assert "#edbt" in tokenize("great talk #EDBT")
        assert "@alice" in tokenize("cc @alice")

    def test_stemming_graduation_to_graduate(self):
        # The paper's own example: stemming replaces "graduation" with
        # "graduate" (modulo the Porter convention of a trailing stem form).
        assert porter_stem("graduation") == porter_stem("graduate")

    def test_stemming_plurals(self):
        assert porter_stem("universities") == porter_stem("university")
        assert porter_stem("degrees") == porter_stem("degree")

    def test_stemming_ing_forms(self):
        assert porter_stem("running") == porter_stem("runs")

    def test_short_words_unchanged(self):
        assert porter_stem("ms") == "ms"

    def test_extract_keywords_removes_stop_words(self):
        keywords = extract_keywords("the university of the north")
        assert "the" not in keywords
        assert "of" not in keywords

    def test_extract_keywords_stems(self):
        assert porter_stem("degree") in extract_keywords("Degrees matter")

    def test_extract_keywords_keeps_years(self):
        assert "2012" in extract_keywords("When I got my M.S. in 2012")

    @given(st.text(max_size=60))
    def test_extract_keywords_total(self, text):
        # The pipeline never crashes and never returns stop words.
        for keyword in extract_keywords(text):
            assert keyword
            assert keyword == keyword.lower()


class TestNode:
    def test_root_has_empty_dewey(self):
        root = build_document("d", "doc")
        assert root.dewey == ()
        assert root.is_root
        assert root.depth == 0

    def test_children_get_one_based_dewey(self):
        root = build_document("d", "doc")
        c1 = root.add_child(URI("d.1"), "sec")
        c2 = root.add_child(URI("d.2"), "sec")
        g = c2.add_child(URI("d.2.1"), "para")
        assert c1.dewey == (1,)
        assert c2.dewey == (2,)
        assert g.dewey == (2, 1)
        assert g.depth == 2

    def test_iter_subtree_document_order(self):
        _, root, s1, s2, s2p1, s2p2 = _sample_document()
        order = [n.uri for n in root.iter_subtree()]
        assert order == [root.uri, s1.uri, s2.uri, s2p1.uri, s2p2.uri]

    def test_ancestors_nearest_first(self):
        _, root, _, s2, s2p1, _ = _sample_document()
        assert [a.uri for a in s2p1.ancestors()] == [s2.uri, root.uri]


class TestDocument:
    def test_requires_root_node(self):
        root = build_document("d", "doc")
        child = root.add_child(URI("d.1"), "sec")
        with pytest.raises(ValueError):
            Document(child)

    def test_rejects_duplicate_uris(self):
        root = build_document("d", "doc")
        root.add_child(URI("dup"), "a")
        root.add_child(URI("dup"), "b")
        with pytest.raises(ValueError):
            Document(root)

    def test_fragments_of_document(self):
        doc, root, s1, s2, s2p1, s2p2 = _sample_document()
        assert doc.fragments() == {root.uri, s1.uri, s2.uri, s2p1.uri, s2p2.uri}

    def test_fragments_of_inner_node(self):
        doc, _, _, s2, s2p1, s2p2 = _sample_document()
        assert doc.fragments(s2.uri) == {s2.uri, s2p1.uri, s2p2.uri}

    def test_pos_matches_paper_example(self):
        # pos(d0.3.2, d0) may be (3, 2): the Dewey path of the fragment.
        doc, root, _, _, s2p1, _ = _sample_document()
        assert doc.pos(root.uri, s2p1.uri) == (2, 1)
        assert doc.structural_distance(root.uri, s2p1.uri) == 2

    def test_pos_of_self_is_empty(self):
        doc, root, *_ = _sample_document()
        assert doc.pos(root.uri, root.uri) == ()

    def test_pos_rejects_non_descendant(self):
        doc, _, s1, s2, *_ = _sample_document()
        with pytest.raises(ValueError):
            doc.pos(s1.uri, s2.uri)

    def test_ancestors_or_self(self):
        doc, root, _, s2, s2p1, _ = _sample_document()
        assert list(doc.ancestors_or_self(s2p1.uri)) == [s2p1.uri, s2.uri, root.uri]

    def test_vertical_neighbors_exclude_siblings(self):
        # Figure 3: URI0 and URI0.0.0 are vertical neighbors; URI0.0.0 and
        # URI0.1 are not.
        doc, root, s1, s2, s2p1, s2p2 = _sample_document()
        neighbors = doc.vertical_neighbors(s2p1.uri)
        assert s2.uri in neighbors and root.uri in neighbors
        assert s2p2.uri not in neighbors  # sibling
        assert s1.uri not in neighbors  # uncle
        assert s2p1.uri not in neighbors  # not self

    def test_vertical_neighbors_of_root_are_all_fragments(self):
        doc, root, s1, s2, s2p1, s2p2 = _sample_document()
        assert doc.vertical_neighbors(root.uri) == {s1.uri, s2.uri, s2p1.uri, s2p2.uri}

    def test_keywords_union(self):
        doc, *_ = _sample_document()
        assert {"intro", "first", "university", "degree"} <= doc.keywords()


class TestParsers:
    def test_parse_xml_structure(self):
        doc = parse_xml("d1", "<tweet><text>got my degree</text><date>2012</date></tweet>")
        assert len(doc) == 3
        root = doc.node(URI("d1"))
        assert root.name == "tweet"
        assert [c.name for c in root.children] == ["text", "date"]

    def test_parse_xml_content_is_stemmed(self):
        doc = parse_xml("d1", "<t><text>universities</text></t>")
        text_node = doc.node(URI("d1.1"))
        assert porter_stem("university") in text_node.keywords

    def test_parse_xml_uri_scheme(self):
        doc = parse_xml("d0", "<a><b/><c><d/></c></a>")
        assert URI("d0.2.1") in doc
        assert doc.pos(URI("d0"), URI("d0.2.1")) == (2, 1)

    def test_parse_json_objects_and_arrays(self):
        doc = parse_json("j1", '{"title": "great degree", "tags": ["a", "b"]}')
        root = doc.node(URI("j1"))
        assert [c.name for c in root.children] == ["title", "tags"]
        tags_node = root.children[1]
        assert [c.name for c in tags_node.children] == ["item", "item"]

    def test_parse_json_scalar_content(self):
        doc = parse_json("j1", '{"title": "universities"}')
        title = doc.node(URI("j1.1"))
        assert porter_stem("university") in title.keywords

    def test_parse_text_single_node(self):
        doc = parse_text("t1", "a degree gives opportunities")
        assert len(doc) == 1
        assert porter_stem("opportunity") in doc.node(URI("t1")).keywords

    def test_parse_text_sentence_fragments(self):
        # The Vodkaster construction: each stemmed sentence is a fragment.
        doc = parse_text(
            "c1", "Great movie. Watch it now!", sentence_fragments=True
        )
        root = doc.node(URI("c1"))
        assert len(root.children) == 2
        assert all(c.name == "sentence" for c in root.children)
