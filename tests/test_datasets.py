"""Tests for the I1/I2/I3 generators and instance statistics."""

import random

import pytest

from repro.core import S3kSearch, keyword_extension
from repro.datasets import (
    TextModel,
    TwitterConfig,
    VodkasterConfig,
    YelpConfig,
    build_ontology,
    build_twitter_instance,
    build_vodkaster_instance,
    build_yelp_instance,
    compute_stats,
    enrich_keywords,
)
from repro.rdf import RDFS_SUBPROPERTY, S3_SOCIAL, Literal, Triple, URI

SMALL_TW = TwitterConfig(n_users=60, n_statuses=150, seed=5)
SMALL_VDK = VodkasterConfig(n_users=40, n_movies=10, n_comments=60, seed=5)
SMALL_YELP = YelpConfig(n_users=50, n_businesses=10, n_reviews=80, seed=5)


@pytest.fixture(scope="module")
def twitter():
    return build_twitter_instance(SMALL_TW)


@pytest.fixture(scope="module")
def vodkaster():
    return build_vodkaster_instance(SMALL_VDK)


@pytest.fixture(scope="module")
def yelp():
    return build_yelp_instance(SMALL_YELP)


class TestTextModel:
    def test_zipf_skew(self):
        rng = random.Random(0)
        model = TextModel.build(rng, 100)
        words = model.words(rng, 5000)
        counts = {w: words.count(w) for w in set(words)}
        assert counts.get("w0", 0) > counts.get("w50", 0)

    def test_distinct_words(self):
        rng = random.Random(0)
        model = TextModel.build(rng, 50)
        distinct = model.distinct_words(rng, 10)
        assert len(distinct) == len(set(distinct)) <= 10


class TestOntology:
    def test_taxonomy_links_to_topic_literal(self):
        rng = random.Random(1)
        ontology = build_ontology(rng, ["movies"], classes_per_topic=3)
        assert any(
            p == "rdfs:subClassOf" and o == "movies" for _, p, o in ontology.triples
        )

    def test_enrichment_replaces_with_probability_one(self):
        rng = random.Random(1)
        ontology = build_ontology(rng, ["movies"])
        enriched = enrich_keywords(["movies", "other"], ontology, rng, probability=1.0)
        assert isinstance(enriched[0], URI)
        assert enriched[1] == "other"

    def test_enrichment_probability_zero_is_identity(self):
        rng = random.Random(1)
        ontology = build_ontology(rng, ["movies"])
        assert enrich_keywords(["movies"], ontology, rng, probability=0.0) == ["movies"]


class TestTwitterGenerator:
    def test_deterministic(self):
        a = build_twitter_instance(SMALL_TW)
        b = build_twitter_instance(SMALL_TW)
        assert len(a.instance.graph) == len(b.instance.graph)
        assert a.n_retweets == b.n_retweets

    def test_retweet_ratio_shape(self, twitter):
        # ~85% of statuses after the first are retweets (tags).
        ratio = twitter.n_retweets / twitter.n_tweets
        assert 0.7 <= ratio <= 0.95

    def test_tweets_have_three_part_structure(self, twitter):
        instance = twitter.instance
        root = next(iter(instance.documents.values())).root
        assert [child.name for child in root.children] == ["text", "date", "geo"]

    def test_similarity_edges_above_threshold(self, twitter):
        instance = twitter.instance
        weights = [
            wt.weight for wt in instance.graph.triples(predicate=S3_SOCIAL)
        ]
        assert weights, "expected some similarity edges"
        assert all(w > SMALL_TW.similarity_threshold for w in weights)

    def test_replies_become_comments(self, twitter):
        assert twitter.n_replies >= 1
        assert any(twitter.instance.comments_on(node) for node in
                   twitter.instance.node_to_document)

    def test_entity_extension_present(self, twitter):
        # Anchored words must have non-trivial extensions.
        instance = twitter.instance
        extended = [
            w for w in ("w0", "w1", "w2")
            if len(keyword_extension(instance, Literal(w))) > 1
        ]
        assert extended

    def test_searchable(self, twitter):
        engine = S3kSearch(twitter.instance)
        seeker = sorted(twitter.instance.users)[0]
        result = engine.search(seeker, ["w0"], k=3)
        assert result.terminated_by == "threshold"


class TestVodkasterGenerator:
    def test_follow_edges_are_subproperty(self, vodkaster):
        instance = vodkaster.instance
        assert (
            Triple(URI("vdk:follow"), RDFS_SUBPROPERTY, S3_SOCIAL) in instance.graph
        )

    def test_comment_chains_to_first_comment(self, vodkaster):
        instance = vodkaster.instance
        # every movie's later comments point at the first one
        commented = [n for n in instance.node_to_document if instance.comments_on(n)]
        assert len(commented) <= vodkaster.n_movies
        total_comments = sum(len(instance.comments_on(n)) for n in commented)
        assert total_comments == vodkaster.n_comments - vodkaster.n_movies

    def test_sentences_are_fragments(self, vodkaster):
        document = next(iter(vodkaster.instance.documents.values()))
        assert all(child.name == "sentence" for child in document.root.children)

    def test_no_knowledge_base(self, vodkaster):
        # I2 is not matched against a KB: extensions stay trivial.
        instance = vodkaster.instance
        for word in ("fr0", "fr1", "fr5"):
            assert keyword_extension(instance, Literal(word)) == {Literal(word)}


class TestYelpGenerator:
    def test_friend_edges_weight_one(self, yelp):
        instance = yelp.instance
        weights = {
            wt.weight for wt in instance.graph.triples(predicate=URI("yelp:friend"))
        }
        assert weights == {1.0}

    def test_reviews_chain_to_first(self, yelp):
        instance = yelp.instance
        total = sum(len(instance.comments_on(n)) for n in instance.node_to_document)
        assert total == yelp.n_reviews - yelp.n_businesses

    def test_enriched_with_entities(self, yelp):
        instance = yelp.instance
        entity_mentions = [
            wt
            for wt in instance.graph.triples(predicate=URI("S3:contains"))
            if isinstance(wt.object, URI) and str(wt.object).startswith("kb:e")
        ]
        assert entity_mentions


class TestStats:
    def test_rows_consistent(self, twitter):
        stats = compute_stats(twitter.instance)
        rows = stats.rows()
        assert rows["Users"] == SMALL_TW.n_users
        assert rows["Documents"] == twitter.n_documents
        assert stats.fragments_non_root == sum(
            len(d) - 1 for d in twitter.instance.documents.values()
        )
        assert stats.tags == len(twitter.instance.tags)

    def test_stats_on_empty_instance(self):
        from repro.core import S3Instance

        stats = compute_stats(S3Instance())
        assert stats.users == 0
        assert stats.avg_social_degree == 0.0
