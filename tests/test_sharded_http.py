"""The HTTP tier fronting the process-parallel sharded executor.

The PR 4 serving contracts must hold unchanged when ``shards > 1`` —
the router speaks the same ``QueryRequest``/``QueryResponse`` wire
format, so everything above it (admission control, deadlines, drain,
failure injection) is oblivious to the processes underneath:

* ``POST /search`` answers are bit-identical to the single-process
  server, for single bodies and batch envelopes;
* a worker crash mid-request answers a structured 503
  ``shard_unavailable`` — and after the router respawns the worker the
  same query answers 200 with identical results;
* **drain ordering** — the router quiesces (listener closed, in-flight
  requests flushed) *before* any worker process stops: a request parked
  at the injection gate during drain still answers 200, and only then
  do the workers exit;
* backpressure (429) and deadline expiry (504) shape exactly as on the
  in-process engine;
* a stale slab sidecar degrades the server (503 everywhere) before any
  worker forks.

Synchronization is the FaultInjector gate, ``wait_for_inflight`` and
the respawn generation watch — no sleeps.
"""

import asyncio

import pytest

from repro.core import ConnectionIndex, S3kSearch
from repro.engine import Engine, FaultInjector, HttpConfig
from repro.engine.http import http_call
from repro.rdf import URI
from repro.social import Tag
from repro.storage import SQLiteStore

from .fixtures import figure1_instance
from .http_harness import running_server, run

QUERY = {"seeker": "u1", "keywords": ["degre"], "k": 3}


@pytest.fixture()
def indexed_db(tmp_path):
    path = tmp_path / "indexed.db"
    instance = figure1_instance()
    with SQLiteStore(path) as store:
        store.save_instance(instance)
        store.save_connection_index(ConnectionIndex(instance).ensure_all())
    return path


def _reference_record(query=QUERY):
    engine = Engine(figure1_instance())
    record = engine.search(dict(query)).to_dict()
    return record


class TestWireParity:
    def test_search_stats_healthz(self, indexed_db):
        async def go():
            async with running_server(store=indexed_db, shards=2) as server:
                single = await http_call(server.port, "POST", "/search", body=QUERY)
                batch = await http_call(
                    server.port,
                    "POST",
                    "/search",
                    body={
                        "queries": [
                            QUERY,
                            {"seeker": "u0", "keywords": ["campus"], "k": 2},
                        ]
                    },
                )
                stats = await http_call(server.port, "GET", "/stats")
                health = await http_call(server.port, "GET", "/healthz")
                return single, batch, stats, health

        single, batch, stats, health = run(go())
        assert single.status == 200
        reference = _reference_record()
        assert single.json()["results"] == reference["results"]
        assert batch.status == 200
        records = batch.json()["results"]
        assert len(records) == 2
        assert records[0]["results"] == reference["results"]
        payload = stats.json()["engine"]
        assert payload["router"]["shards"] == 2
        assert "shard_0" in payload and "shard_1" in payload
        assert payload["router"]["slab_backend"] == "mmap"
        assert health.status == 200
        assert health.json()["queries_served"] >= 3

    def test_unknown_seeker_still_404s(self, indexed_db):
        async def go():
            async with running_server(store=indexed_db, shards=2) as server:
                return await http_call(
                    server.port,
                    "POST",
                    "/search",
                    body={"seeker": "nobody", "keywords": ["degre"]},
                )

        response = run(go())
        assert response.status == 404
        assert response.json()["error"]["type"] == "not_found"


class TestWorkerCrash:
    def test_crash_answers_structured_503_then_respawns_to_200(self, indexed_db):
        async def go():
            async with running_server(store=indexed_db, shards=2) as server:
                engine = server.engine
                target = engine.shard_of(engine._coerce(dict(QUERY)))
                generation = engine._shards[target].generation
                engine.crash_worker(target)
                crashed = await http_call(server.port, "POST", "/search", body=QUERY)
                await asyncio.to_thread(
                    engine.wait_for_respawn, target, generation
                )
                recovered = await http_call(
                    server.port, "POST", "/search", body=QUERY
                )
                stats = await http_call(server.port, "GET", "/stats")
                return crashed, recovered, stats

        crashed, recovered, stats = run(go())
        assert crashed.status == 503
        assert crashed.json()["error"]["type"] == "shard_unavailable"
        assert "respawning" in crashed.json()["error"]["message"]
        assert recovered.status == 200
        assert recovered.json()["results"] == _reference_record()["results"]
        assert stats.json()["engine"]["router"]["worker_respawns"] == 1


class TestDrainOrdering:
    def test_router_quiesces_before_workers_stop(self, indexed_db):
        """A request parked at the injection gate during drain answers
        200 — which is only possible if every worker is still alive
        until the router has flushed its in-flight work."""
        faults = FaultInjector()
        gate = faults.hold_kernel()

        async def go():
            async with running_server(
                store=indexed_db, shards=2, faults=faults
            ) as server:
                engine = server.engine
                parked = asyncio.ensure_future(
                    http_call(server.port, "POST", "/search", body=QUERY)
                )
                await server.wait_for_inflight(1)
                drain = asyncio.ensure_future(server.drain())
                await server.drain_started.wait()
                # The listener is closed, but no worker has been stopped:
                # the parked request still needs them.
                workers_alive_during_drain = [
                    shard.alive for shard in engine._shards
                ]
                gate.set()
                response = await parked
                await drain
                workers_alive_after_drain = [
                    shard.alive for shard in engine._shards
                ]
                return (
                    workers_alive_during_drain,
                    response,
                    workers_alive_after_drain,
                )

        during, response, after = run(go())
        assert during == [True, True]
        assert response.status == 200
        assert response.json()["results"] == _reference_record()["results"]
        assert after == [False, False]


class TestBackpressureAndDeadlines:
    def test_forced_queue_full_still_429s(self, indexed_db):
        faults = FaultInjector()
        faults.force_queue_full = True

        async def go():
            async with running_server(
                store=indexed_db, shards=2, faults=faults
            ) as server:
                return await http_call(server.port, "POST", "/search", body=QUERY)

        response = run(go())
        assert response.status == 429
        assert response.headers["retry-after"]

    def test_deadline_expiry_still_504s(self, indexed_db):
        faults = FaultInjector()
        gate = faults.hold_kernel()

        async def go():
            async with running_server(
                store=indexed_db, shards=2, faults=faults
            ) as server:
                response = await http_call(
                    server.port,
                    "POST",
                    "/search",
                    body=QUERY,
                    headers={"x-deadline-ms": "60"},
                )
                gate.set()
                return response

        response = run(go())
        assert response.status == 504
        assert response.json()["error"]["type"] == "deadline_exceeded"


class TestStaleSidecar:
    def test_stale_slabs_degrade_before_any_fork(self, tmp_path):
        path = tmp_path / "stale.db"
        instance = figure1_instance()
        with SQLiteStore(path) as store:
            store.save_instance(instance)
            store.save_connection_index(ConnectionIndex(instance).ensure_all())
            instance.add_tag(
                Tag(URI("t:late"), URI("d0.5.1"), URI("u2"), keyword="campus")
            )
            instance.saturate()
            store.save_instance(instance)

        async def go():
            async with running_server(store=path, shards=2) as server:
                health = await http_call(server.port, "GET", "/healthz")
                search = await http_call(server.port, "POST", "/search", body=QUERY)
                return server, health, search

        server, health, search = run(go())
        assert server.engine is None  # no engine, so no worker ever forked
        assert health.status == 503
        assert search.status == 503
        assert search.json()["error"]["type"] == "stale_index"

    def test_rebuild_opt_in_recovers_sharded(self, tmp_path):
        path = tmp_path / "stale.db"
        instance = figure1_instance()
        with SQLiteStore(path) as store:
            store.save_instance(instance)
            store.save_connection_index(ConnectionIndex(instance).ensure_all())
            instance.add_tag(
                Tag(URI("t:late"), URI("d0.5.1"), URI("u2"), keyword="campus")
            )
            instance.saturate()
            store.save_instance(instance)

        async def go():
            async with running_server(
                store=path, shards=2, stale_slabs="rebuild"
            ) as server:
                search = await http_call(
                    server.port,
                    "POST",
                    "/search",
                    body={"seeker": "u1", "keywords": ["campus"], "k": 5},
                )
                return search, server.engine.instance

        search, served_instance = run(go())
        assert search.status == 200
        reference = S3kSearch(served_instance).search("u1", ["campus"], k=5)
        assert [r["uri"] for r in search.json()["results"]] == [
            str(r.uri) for r in reference.results
        ]
