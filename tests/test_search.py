"""Tests for the S3k algorithm: worked cases, termination, oracle agreement."""

import random

import pytest

from repro.core import S3Instance, S3kScore, S3kSearch, exact_scores, exact_top_k
from repro.documents import Document, build_document
from repro.rdf import URI, Literal
from repro.social import Tag

from .fixtures import figure1_instance, two_community_instance
from .instance_gen import VOCABULARY, random_instance


class TestBasicSearch:
    def test_finds_document_with_keyword(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        result = engine.search("u1", ["debate"], k=3)
        assert URI("d0.3.2") in result.uris or URI("d0.3") in result.uris

    def test_unknown_seeker_raises(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        with pytest.raises(KeyError):
            engine.search("u:ghost", ["debate"])

    def test_unknown_keyword_returns_empty_fast(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        result = engine.search("u1", ["xyzzy"], k=5)
        assert result.results == []
        assert result.iterations == 0
        assert result.terminated_by == "threshold"

    def test_duplicate_keywords_deduplicated(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        result = engine.search("u1", ["debate", "debate"], k=3)
        assert result.keywords == (Literal("debate"),)

    def test_results_have_consistent_bounds(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        result = engine.search("u1", ["debate"], k=3)
        for ranked in result.results:
            assert 0.0 <= ranked.lower <= ranked.upper

    def test_no_vertical_neighbors_in_answer(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        result = engine.search("u1", ["debate"], k=5)
        uris = result.uris
        for i, a in enumerate(uris):
            neighborhood = instance.vertical_neighborhood(a)
            for b in uris[i + 1:]:
                assert b not in neighborhood


class TestSemanticDimension:
    def test_extension_finds_entity_mentions(self):
        # Query "degre": d1 mentions kb:MS which ≺sc "degre"; d2 contains
        # the literal.  Both reachable only thanks to the extension.
        instance = figure1_instance()
        engine = S3kSearch(instance)
        with_semantics = engine.search("u1", ["degre"], k=5)
        without = engine.search("u1", ["degre"], k=5, semantic=False)
        assert URI("d1") in with_semantics.candidate_uris
        assert URI("d1") not in without.candidate_uris
        assert with_semantics.extended_keyword_count > 1
        assert without.extended_keyword_count == 1

    def test_extension_never_loses_results(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        with_semantics = engine.search("u1", ["degre"], k=10)
        without = engine.search("u1", ["degre"], k=10, semantic=False)
        assert set(without.candidate_uris) <= set(with_semantics.candidate_uris)


class TestSocialDimension:
    def test_seeker_community_ranks_first(self):
        instance = two_community_instance()
        engine = S3kSearch(instance)
        from_a = engine.search("u0", ["python"], k=2)
        from_b = engine.search("u5", ["python"], k=2)
        assert from_a.uris[0] == URI("docA")
        assert from_b.uris[0] == URI("docB")

    def test_endorsement_by_friend_boosts(self):
        # Two identical documents posted by a stranger; the seeker's friend
        # endorses one of them — it must win.
        instance = S3Instance()
        for user in ("seeker", "friend", "stranger"):
            instance.add_user(user)
        instance.add_social_edge("seeker", "friend", 1.0)
        instance.add_social_edge("friend", "seeker", 1.0)
        for name in ("liked", "ignored"):
            instance.add_document(
                Document(build_document(name, "post", ["topic"])),
                posted_by="stranger",
            )
        instance.add_tag(Tag(URI("t:like"), URI("liked"), URI("friend")))
        instance.saturate()
        engine = S3kSearch(instance)
        result = engine.search("seeker", ["topic"], k=2)
        assert result.uris[0] == URI("liked")


class TestTermination:
    def test_threshold_termination_on_fixture(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        result = engine.search("u1", ["debate"], k=2)
        assert result.terminated_by == "threshold"
        assert result.iterations < 60

    def test_anytime_iteration_budget(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        result = engine.search("u1", ["debate"], k=2, max_iterations=1)
        assert result.iterations <= 1

    def test_anytime_returns_valid_subset(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        exhaustive = engine.search("u1", ["debate"], k=3)
        anytime = engine.search("u1", ["debate"], k=3, max_iterations=2)
        # Anytime results are candidates with positive upper bounds.
        for ranked in anytime.results:
            assert ranked.upper > 0
        assert set(exhaustive.uris)  # sanity: exhaustive found something

    def test_time_budget_interrupts(self):
        instance = figure1_instance()
        engine = S3kSearch(instance)
        result = engine.search("u1", ["debate"], k=2, time_budget=0.0)
        assert result.terminated_by in ("anytime", "threshold")


class TestMatrixNaiveEquivalence:
    def test_same_results_both_engines(self):
        instance = figure1_instance()
        fast = S3kSearch(instance, use_matrix=True)
        slow = S3kSearch(instance, use_matrix=False)
        for keywords in (["debate"], ["degre"], ["university", "degre"]):
            a = fast.search("u1", keywords, k=3)
            b = slow.search("u1", keywords, k=3)
            assert a.uris == b.uris
            for ra, rb in zip(a.results, b.results):
                assert ra.lower == pytest.approx(rb.lower)
                assert ra.upper == pytest.approx(rb.upper)


class TestOracleAgreement:
    """S3k must return the exact top-k as computed exhaustively."""

    def _check(self, instance, seeker, keywords, k):
        engine = S3kSearch(instance)
        result = engine.search(seeker, keywords, k=k)
        assert result.terminated_by == "threshold"
        expected = exact_top_k(instance, seeker, keywords, k)
        exact = exact_scores(instance, seeker, keywords)
        # Each returned document's exact score lies within its interval.
        for ranked in result.results:
            value = exact.get(ranked.uri, 0.0)
            assert ranked.lower - 1e-9 <= value <= ranked.upper + 1e-9
        # The returned score multiset matches the oracle's (ties may swap
        # equal-score documents, the achievable score profile is unique).
        got = sorted((exact.get(u, 0.0) for u in result.uris), reverse=True)
        want = sorted((s for _, s in expected), reverse=True)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g == pytest.approx(w, rel=1e-6, abs=1e-12)

    def test_figure1_queries(self):
        instance = figure1_instance()
        for keywords in (["debate"], ["degre"], ["university"], ["degre", "university"]):
            for k in (1, 3, 5):
                self._check(instance, "u1", keywords, k)

    def test_two_communities(self):
        instance = two_community_instance()
        for seeker in ("u0", "u2", "u5"):
            self._check(instance, seeker, ["python"], 2)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        instance = random_instance(rng)
        seekers = sorted(instance.users)
        for trial in range(3):
            seeker = rng.choice(seekers)
            n_kw = rng.randint(1, 2)
            keywords = rng.sample(VOCABULARY, n_kw)
            k = rng.choice([1, 3, 5])
            self._check(instance, seeker, keywords, k)
