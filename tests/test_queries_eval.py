"""Tests for workloads, the timing runner and the evaluation measures."""

import pytest

from repro.core import S3kSearch
from repro.datasets import TwitterConfig, build_twitter_instance
from repro.eval import (
    compare_engines,
    graph_reachability,
    intersection_size,
    latency_percentiles,
    normalized_footrule,
    semantic_reachability,
    spearman_footrule,
    format_latency_table,
    format_table,
)
from repro.queries import (
    QuerySpec,
    WorkloadBuilder,
    document_frequencies,
    frequency_buckets,
    run_workload,
    run_workload_batched,
    engine_runner,
)
from repro.rdf import Literal


@pytest.fixture(scope="module")
def twitter():
    return build_twitter_instance(TwitterConfig(n_users=60, n_statuses=150, seed=5))


class TestWorkloads:
    def test_document_frequencies_count_roots(self, twitter):
        frequencies = document_frequencies(twitter.instance)
        assert frequencies
        assert all(f >= 1 for f in frequencies.values())
        assert max(frequencies.values()) <= len(twitter.instance.documents)

    def test_frequency_buckets_disjoint_quartiles(self, twitter):
        frequencies = document_frequencies(twitter.instance)
        rare, common = frequency_buckets(frequencies)
        assert rare and common
        max_rare = max(frequencies[k] for k in rare)
        min_common = min(frequencies[k] for k in common)
        assert max_rare <= min_common

    def test_builder_grid_is_eight_workloads(self, twitter):
        builder = WorkloadBuilder(twitter.instance, seed=3)
        grid = builder.paper_grid(n_queries=4)
        assert len(grid) == 8
        names = {w.name for w in grid}
        assert "qset(+,1,5)" in names and "qset(-,5,10)" in names
        assert all(len(w) == 4 for w in grid)

    def test_vary_k_grid(self, twitter):
        builder = WorkloadBuilder(twitter.instance, seed=3)
        grid = builder.vary_k_grid(ks=(1, 5), n_queries=2)
        assert [w.k for w in grid] == [1, 5, 1, 5]
        assert all(w.n_keywords == 1 for w in grid)

    def test_workload_keywords_come_from_right_bucket(self, twitter):
        frequencies = document_frequencies(twitter.instance)
        rare, common = frequency_buckets(frequencies)
        builder = WorkloadBuilder(twitter.instance, seed=3)
        workload = builder.build("-", 1, 5, 10)
        for spec in workload.queries:
            assert all(kw in rare for kw in spec.keywords)

    def test_invalid_frequency_rejected(self, twitter):
        builder = WorkloadBuilder(twitter.instance, seed=3)
        with pytest.raises(ValueError):
            builder.build("x", 1, 5, 2)

    def test_runner_produces_quartiles(self, twitter):
        engine = S3kSearch(twitter.instance)
        builder = WorkloadBuilder(twitter.instance, seed=3)
        workload = builder.build("+", 1, 5, 6)
        summary = run_workload(engine_runner(engine), workload)
        quartiles = summary.quartiles()
        assert quartiles["min"] <= quartiles["q1"] <= quartiles["median"]
        assert quartiles["median"] <= quartiles["q3"] <= quartiles["max"]
        assert summary.median > 0
        assert len(summary.times) == 6


class TestBatchedRunner:
    def test_workload_batches_cover_all_queries(self, twitter):
        builder = WorkloadBuilder(twitter.instance, seed=3)
        workload = builder.build("+", 1, 5, 10)
        batches = workload.batches(4)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert [q for b in batches for q in b] == workload.queries
        assert workload.batches(0) == [workload.queries]

    def test_batched_results_match_sequential(self, twitter):
        engine = S3kSearch(twitter.instance)
        builder = WorkloadBuilder(twitter.instance, seed=3)
        workload = builder.build("+", 1, 5, 8)
        stats = run_workload_batched(engine, workload, batch_size=4)
        assert stats.n_queries == 8
        assert len(stats.batch_times) == 2
        assert stats.throughput > 0
        for spec, result in zip(workload.queries, stats.results):
            single = engine.search(spec.seeker, spec.keywords, k=spec.k)
            assert result.results == single.results

    def test_batched_latency_summary_shape(self, twitter):
        engine = S3kSearch(twitter.instance)
        builder = WorkloadBuilder(twitter.instance, seed=3)
        stats = run_workload_batched(
            engine, builder.build("+", 1, 5, 6), batch_size=3
        )
        summary = stats.latency_summary()
        assert set(summary) == {"mean", "p50", "p90", "p95", "p99", "max"}
        assert summary["p50"] <= summary["p99"] <= summary["max"]
        assert stats.deadline_misses == 0

    def test_deadline_misses_counted(self, twitter):
        engine = S3kSearch(twitter.instance)
        builder = WorkloadBuilder(twitter.instance, seed=3)
        workload = builder.build("+", 1, 5, 4)
        stats = run_workload_batched(
            engine, workload, batch_size=2, deadline=0.0
        )
        # A zero deadline forces the anytime stop on every non-trivial
        # query; trivially-empty queries may still finish by threshold.
        assert 0 <= stats.deadline_misses <= 4
        assert all(r.terminated_by in ("anytime", "threshold") for r in stats.results)


class TestLatencyPercentiles:
    def test_empty_series(self):
        summary = latency_percentiles([])
        assert summary["mean"] == summary["p99"] == summary["max"] == 0.0

    def test_single_value(self):
        summary = latency_percentiles([0.25])
        assert summary["mean"] == summary["p50"] == summary["max"] == 0.25

    def test_nearest_rank_tail(self):
        times = [float(i) for i in range(1, 101)]
        summary = latency_percentiles(times)
        assert summary["p50"] == 50.0
        assert summary["p90"] == 90.0
        assert summary["p99"] == 99.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)

    def test_format_latency_table(self):
        table = format_latency_table(
            {"batched": [0.010, 0.020], "single": [0.030]}, title="latency"
        )
        lines = table.splitlines()
        assert lines[0] == "latency"
        assert "mean (ms)" in lines[1] and "p99 (ms)" in lines[1]
        assert any("batched" in line for line in lines)


class TestFootrule:
    def test_identical_lists_zero(self):
        assert spearman_footrule(["a", "b", "c"], ["a", "b", "c"]) == 0
        assert normalized_footrule(["a", "b"], ["a", "b"]) == 0.0

    def test_disjoint_lists_max(self):
        # k=3 disjoint: 2k(k+1) − 2·k(k+1)/2 = k(k+1) = 12
        assert spearman_footrule(["a", "b", "c"], ["x", "y", "z"]) == 12
        assert normalized_footrule(["a", "b", "c"], ["x", "y", "z"]) == 1.0

    def test_swap_costs_rank_difference(self):
        value = spearman_footrule(["a", "b"], ["b", "a"])
        assert value == 2  # |1-2| + |2-1|

    def test_empty_lists(self):
        assert normalized_footrule([], []) == 0.0

    def test_different_lengths_normalized_in_unit_interval(self):
        value = normalized_footrule(["a", "b", "c", "d", "e"], ["x"])
        assert 0.0 <= value <= 1.0

    def test_more_agreement_means_smaller_distance(self):
        far = normalized_footrule(["a", "b", "c"], ["x", "y", "z"])
        near = normalized_footrule(["a", "b", "c"], ["a", "b", "z"])
        assert near < far


class TestOtherMeasures:
    def test_intersection_size(self):
        assert intersection_size(["a", "b"], ["b", "c"]) == pytest.approx(0.5)
        assert intersection_size([], []) == 0.0

    def test_graph_reachability(self):
        items = {"d1": "i1", "d2": "i2", "d3": "i3"}
        value = graph_reachability(["d1", "d2", "d3"], items, {"i1"})
        assert value == pytest.approx(2 / 3)
        assert graph_reachability([], items, {"i1"}) == 0.0

    def test_semantic_reachability(self):
        assert semantic_reachability(8, 10) == pytest.approx(0.8)
        assert semantic_reachability(0, 0) == 1.0

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["x", 1], ["yy", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]


class TestComparisonHarness:
    def test_report_fields_in_range(self, twitter):
        engine = S3kSearch(twitter.instance)
        builder = WorkloadBuilder(twitter.instance, seed=4)
        report = compare_engines(engine, [builder.build("+", 1, 5, 4)])
        assert report.queries == 4
        assert 0.0 <= report.graph_reachability <= 1.0
        assert 0.0 < report.semantic_reachability <= 1.0
        assert 0.0 <= report.l1 <= 1.0
        assert 0.0 <= report.intersection <= 1.0
        rows = report.rows()
        assert set(rows) == {
            "Graph reachability",
            "Semantic reachability",
            "L1",
            "Intersection size",
        }

    def test_empty_workloads(self, twitter):
        engine = S3kSearch(twitter.instance)
        report = compare_engines(engine, [])
        assert report.queries == 0
