"""Random S3 instance generator for property-based tests.

Builds small but structurally rich instances: users with weighted social
edges, documents with random trees, comments, keyword tags, endorsements
and a small subclass ontology — every feature the search algorithm has to
handle.  Deterministic given a :class:`random.Random`.
"""

from __future__ import annotations

import random
from typing import List

from repro.core import S3Instance
from repro.documents import Document, build_document
from repro.rdf import RDFS_SUBCLASS, URI, Literal
from repro.social import Tag

VOCABULARY = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
ENTITIES = [URI("kb:e0"), URI("kb:e1"), URI("kb:e2")]


def random_instance(rng: random.Random, n_users: int = 6, n_docs: int = 5) -> S3Instance:
    """One random, saturated instance."""
    instance = S3Instance()
    users = [instance.add_user(f"u{i}") for i in range(n_users)]

    # Social edges: sparse directed graph with random weights.
    for source in users:
        for target in users:
            if source != target and rng.random() < 0.35:
                instance.add_social_edge(source, target, round(rng.uniform(0.1, 1.0), 2))

    # Small ontology: each entity specializes one literal keyword.
    for entity in ENTITIES:
        keyword = rng.choice(VOCABULARY)
        instance.add_knowledge([(entity, RDFS_SUBCLASS, Literal(keyword))])

    def random_keywords() -> List[str]:
        kws: List[str] = rng.sample(VOCABULARY, rng.randint(0, 2))
        if rng.random() < 0.3:
            kws.append(rng.choice(ENTITIES))
        return kws

    documents: List[URI] = []
    all_nodes: List[URI] = []
    for d in range(n_docs):
        root = build_document(f"d{d}", "doc", random_keywords())
        nodes = [root]
        for j in range(rng.randint(0, 4)):
            parent = rng.choice(nodes)
            child = parent.add_child(
                URI(f"d{d}.n{j}"), "frag", random_keywords()
            )
            nodes.append(child)
        document = Document(root)
        instance.add_document(document, posted_by=rng.choice(users))
        documents.append(document.uri)
        all_nodes.extend(node.uri for node in nodes)

        # Randomly comment on an earlier document's node.
        if documents[:-1] and rng.random() < 0.6:
            target_doc = rng.choice(documents[:-1])
            target_nodes = list(instance.documents[target_doc].fragments())
            instance.add_comment_edge(document.uri, rng.choice(sorted(target_nodes)))

    # Tags: keyword tags, endorsements, tags on tags.
    tag_uris: List[URI] = []
    for t in range(rng.randint(0, 6)):
        subject: URI
        if tag_uris and rng.random() < 0.2:
            subject = rng.choice(tag_uris)
        else:
            subject = rng.choice(all_nodes)
        keyword = None
        if rng.random() < 0.6:
            keyword = rng.choice(VOCABULARY + ENTITIES)
        tag = Tag(URI(f"t{t}"), subject, rng.choice(users), keyword=keyword)
        instance.add_tag(tag)
        tag_uris.append(tag.uri)

    instance.saturate()
    return instance
