"""ConnectionIndex equivalence, persistence and the result cache (ISSUE 2).

The contract under test: the precomputed per-atom evidence of
:class:`repro.core.connection_index.ConnectionIndex` equals the
:class:`repro.core.connections.ComponentConnections` worklist fixpoint —
per atom and per union-of-extension — on the paper fixtures and on
randomized instances; ``search`` / ``search_many`` with the index enabled
stay bit-identical to the fixpoint engine (and hence to the exhaustive
oracle); a persisted index reloads into an equivalent warm state; and the
LRU result cache replays identical answers with working counters and
invalidation.
"""

import random

import pytest

from repro.core import (
    ComponentConnections,
    ComponentIndex,
    ConnectionIndex,
    S3kSearch,
    extend_query,
)
from repro.rdf import URI, Literal
from repro.storage import SQLiteStore

from .fixtures import figure1_instance, figure3_instance, two_community_instance
from .instance_gen import VOCABULARY, random_instance

#: Randomized instances checked for index/fixpoint agreement
#: (acceptance criterion: >= 50).
N_RANDOM_INSTANCES = 50


def _fixpoint_engine(instance) -> S3kSearch:
    """The PR 1 reference configuration: no index, no caches."""
    return S3kSearch(
        instance,
        use_connection_index=False,
        result_cache_size=0,
        plan_cache_size=0,
    )


def _assert_evidence_matches(instance, rng=None):
    """Per-atom and per-union evidence equality over every component."""
    component_index = ComponentIndex(instance)
    index = ConnectionIndex(instance, component_index)
    for component in component_index.components():
        atoms = sorted(component.keywords)
        for atom in atoms:
            oracle = ComponentConnections(instance, component, {atom: {atom}})
            assert index.keyword_evidence(component.ident, {atom}) == (
                oracle.evidence(atom)
            ), f"component {component.ident}, atom {atom!r}"
        if not atoms:
            continue
        local = rng if rng is not None else random.Random(component.ident)
        for _ in range(3):
            extension = set(
                local.sample(atoms, local.randint(1, min(3, len(atoms))))
            )
            keyword = next(iter(extension))
            oracle = ComponentConnections(
                instance, component, {keyword: extension}
            )
            assert index.keyword_evidence(component.ident, extension) == (
                oracle.evidence(keyword)
            ), f"component {component.ident}, extension {extension!r}"
            assert index.candidate_documents(
                component.ident, {keyword: extension}
            ) == oracle.candidate_documents()


class TestEvidenceEquivalence:
    def test_figure1(self):
        _assert_evidence_matches(figure1_instance())

    def test_figure3(self):
        _assert_evidence_matches(figure3_instance())

    def test_two_communities(self):
        _assert_evidence_matches(two_community_instance())

    def test_figure1_query_extension(self):
        # The paper's own extension: Ext("degre") ∋ kb:MS (d1's content) —
        # union of the two atom slices equals the multi-keyword fixpoint.
        instance = figure1_instance()
        component_index = ComponentIndex(instance)
        component = component_index.component_of(URI("d0"))
        extensions = extend_query(instance, (Literal("degre"),))
        index = ConnectionIndex(instance, component_index)
        oracle = ComponentConnections(instance, component, extensions)
        for keyword, extension in extensions.items():
            assert index.keyword_evidence(component.ident, extension) == (
                oracle.evidence(keyword)
            )

    def test_multi_keyword_candidates(self):
        instance = figure1_instance()
        component_index = ComponentIndex(instance)
        component = component_index.component_of(URI("d0"))
        terms = {
            Literal("debate"): {Literal("debate")},
            Literal("campus"): {Literal("campus")},
        }
        index = ConnectionIndex(instance, component_index)
        oracle = ComponentConnections(instance, component, terms)
        assert index.candidate_documents(component.ident, terms) == (
            oracle.candidate_documents()
        )

    def test_absent_keyword_has_no_candidates(self):
        instance = figure1_instance()
        component_index = ComponentIndex(instance)
        component = component_index.component_of(URI("d0"))
        terms = {Literal("zzz"): {Literal("zzz")}}
        index = ConnectionIndex(instance, component_index)
        assert index.keyword_evidence(component.ident, {Literal("zzz")}) == {}
        assert index.candidate_documents(component.ident, terms) == []

    @pytest.mark.parametrize("seed", range(N_RANDOM_INSTANCES))
    def test_randomized(self, seed):
        rng = random.Random(seed)
        _assert_evidence_matches(random_instance(rng), rng)


class TestSearchEquivalence:
    """Index-enabled engines answer bit-identically to the fixpoint path."""

    def test_figure1_grid(self):
        instance = figure1_instance()
        indexed = S3kSearch(instance)
        fixpoint = _fixpoint_engine(instance)
        for seeker in ("u0", "u1", "u4"):
            for keywords in (["debate"], ["degre"], ["university", "degre"]):
                for k in (1, 3, 5):
                    a = indexed.search(seeker, keywords, k=k)
                    b = fixpoint.search(seeker, keywords, k=k)
                    assert a.results == b.results
                    assert a.iterations == b.iterations
                    assert a.terminated_by == b.terminated_by

    @pytest.mark.parametrize("seed", range(N_RANDOM_INSTANCES))
    def test_randomized(self, seed):
        rng = random.Random(seed)
        instance = random_instance(rng)
        indexed = S3kSearch(instance, result_cache_size=0)
        fixpoint = _fixpoint_engine(instance)
        seekers = sorted(instance.users)
        queries = [
            (
                rng.choice(seekers),
                rng.sample(VOCABULARY, rng.randint(1, 2)),
                rng.choice([1, 3, 5]),
            )
            for _ in range(3)
        ]
        batch_indexed = indexed.search_many(queries)
        batch_fixpoint = fixpoint.search_many(queries)
        for query, a, b in zip(queries, batch_indexed, batch_fixpoint):
            assert a.results == b.results, query
            assert a.iterations == b.iterations
            assert a.terminated_by == b.terminated_by
            single = fixpoint.search(query[0], query[1], k=query[2])
            assert a.results == single.results


class TestPersistence:
    def test_round_trip_evidence_and_search(self, tmp_path):
        rng = random.Random(7)
        instance = random_instance(rng)
        index = ConnectionIndex(instance).ensure_all()
        path = tmp_path / "instance.db"
        with SQLiteStore(path) as store:
            store.save_instance(instance)
            assert store.save_connection_index(index) == len(
                index.component_index
            )
            assert store.connection_index_slab_count() == len(
                index.component_index
            )
        with SQLiteStore(path) as store:
            reloaded = store.load_instance()
            warm = store.load_connection_index(reloaded)
            # Every slab adopted: nothing rebuilds.
            assert len(warm._slabs) == len(warm.component_index)
            assert warm.build_seconds == 0.0
            fresh = ConnectionIndex(reloaded)
            for component in warm.component_index.components():
                for atom in sorted(component.keywords):
                    assert warm.keyword_evidence(
                        component.ident, {atom}
                    ) == fresh.keyword_evidence(component.ident, {atom})
            engine = S3kSearch(
                reloaded, connection_index=warm, result_cache_size=0
            )
            reference = _fixpoint_engine(reloaded)
            for seeker in sorted(reloaded.users)[:3]:
                a = engine.search(seeker, ["alpha"], k=3)
                b = reference.search(seeker, ["alpha"], k=3)
                assert a.results == b.results

    def test_stale_slabs_are_skipped(self, tmp_path):
        rng = random.Random(11)
        instance = random_instance(rng)
        index = ConnectionIndex(instance).ensure_all()
        path = tmp_path / "instance.db"
        with SQLiteStore(path) as store:
            store.save_instance(instance)
            store.save_connection_index(index)
            # A different instance: the stored slabs no longer match.
            other = random_instance(random.Random(12))
            warm = store.load_connection_index(other)
            # Whatever was not adopted rebuilds lazily and stays correct.
            _assert_evidence_matches(other)
            for component in warm.component_index.components():
                for atom in sorted(component.keywords):
                    oracle = ComponentConnections(
                        other, component, {atom: {atom}}
                    )
                    assert warm.keyword_evidence(
                        component.ident, {atom}
                    ) == oracle.evidence(atom)

    def test_mutation_invalidates_slabs(self):
        instance = figure1_instance()
        index = ConnectionIndex(instance).ensure_all()
        component_index = index.component_index
        component = component_index.component_of(URI("d0"))
        before = index.keyword_evidence(component.ident, {Literal("debate")})
        assert before
        # Mutating the instance bumps the version; the slab rebuilds and
        # still matches the fixpoint on the mutated instance.
        from repro.social import Tag

        instance.add_tag(
            Tag(URI("t:new"), URI("d0.1"), URI("u2"), keyword="debate")
        )
        instance.saturate()
        oracle = ComponentConnections(
            instance, component, {Literal("debate"): {Literal("debate")}}
        )
        assert index.keyword_evidence(component.ident, {Literal("debate")}) == (
            oracle.evidence(Literal("debate"))
        )


class TestResultCache:
    def test_hits_and_misses(self):
        engine = S3kSearch(figure1_instance())
        assert engine.cache_stats == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "maxsize": 1024,
        }
        first = engine.search("u1", ["debate"], k=3)
        assert engine.cache_stats["misses"] == 1
        replayed = engine.search("u1", ["debate"], k=3)
        assert engine.cache_stats["hits"] == 1
        assert replayed.results == first.results
        assert replayed.iterations == first.iterations

    def test_cache_generalizes_across_batches(self):
        engine = S3kSearch(figure1_instance())
        queries = [("u1", ["debate"], 3), ("u0", ["degre"], 3)]
        cold = engine.search_many(queries)
        warm = engine.search_many(queries)
        assert engine.cache_stats["hits"] == 2
        for a, b in zip(cold, warm):
            assert a.results == b.results

    def test_key_includes_semantics_and_k(self):
        engine = S3kSearch(figure1_instance())
        engine.search("u1", ["degre"], k=3)
        engine.search("u1", ["degre"], k=3, semantic=False)
        engine.search("u1", ["degre"], k=5)
        assert engine.cache_stats["hits"] == 0
        assert engine.cache_stats["misses"] == 3

    def test_budget_queries_bypass_cache(self):
        engine = S3kSearch(figure1_instance())
        engine.search("u1", ["debate"], k=3, max_iterations=1)
        engine.search("u1", ["debate"], k=3, time_budget=10.0)
        assert engine.cache_stats == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "maxsize": 1024,
        }

    def test_mutation_drops_cached_answers_and_plans(self):
        # Caches self-invalidate against S3Instance.version: a query after
        # a mutation recomputes (a miss) instead of replaying the
        # pre-mutation answer.  (Structural indexes are per-engine; full
        # freshness after mutations needs a new engine — see the
        # S3kSearch.invalidate docstring.)
        from repro.social import Tag

        instance = figure1_instance()
        engine = S3kSearch(instance)
        engine.search("u1", ["debate"], k=5)
        assert engine.cache_stats["size"] == 1
        instance.add_tag(
            Tag(URI("t:late"), URI("d0.1"), URI("u2"), keyword="zeta")
        )
        instance.saturate()
        engine.search("u1", ["debate"], k=5)
        assert engine.cache_stats["misses"] == 2
        assert engine.cache_stats["hits"] == 0
        assert engine.cache_stats["size"] == 1

    def test_invalidate_clears_entries(self):
        engine = S3kSearch(figure1_instance())
        engine.search("u1", ["debate"], k=3)
        assert engine.cache_stats["size"] == 1
        engine.invalidate()
        assert engine.cache_stats["size"] == 0
        engine.search("u1", ["debate"], k=3)
        assert engine.cache_stats["misses"] == 2

    def test_bounded_eviction(self):
        engine = S3kSearch(figure1_instance(), result_cache_size=2)
        for keywords in (["debate"], ["degre"], ["university"]):
            engine.search("u1", keywords, k=3)
        assert engine.cache_stats["size"] == 2
        # The oldest entry was evicted; re-asking it misses again.
        engine.search("u1", ["debate"], k=3)
        assert engine.cache_stats["hits"] == 0

    def test_disabled_cache(self):
        engine = S3kSearch(figure1_instance(), result_cache_size=0)
        engine.search("u1", ["debate"], k=3)
        engine.search("u1", ["debate"], k=3)
        assert engine.cache_stats == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "maxsize": 0,
        }

    def test_batch_stats_surface_cache_counters(self):
        from repro.queries import Workload, run_workload_batched
        from repro.queries.workload import QuerySpec

        engine = S3kSearch(figure1_instance())
        workload = Workload(name="w", frequency="+", n_keywords=1, k=3)
        workload.queries = [QuerySpec(URI("u1"), (Literal("debate"),), 3)] * 2
        run_workload_batched(engine, workload, batch_size=2)
        stats = run_workload_batched(engine, workload, batch_size=2)
        assert stats.cache_stats["hits"] >= 1
        assert stats.cache_stats["misses"] >= 1


class TestFrozenAdoption:
    """Adopted slab arrays are frozen: shm/mmap placements are shared
    across forked workers, so an in-place write must raise immediately
    — and freezing must not change a single answered bit."""

    def test_adopted_arrays_are_readonly(self, tmp_path):
        rng = random.Random(21)
        instance = random_instance(rng)
        index = ConnectionIndex(instance).ensure_all()
        path = tmp_path / "instance.db"
        with SQLiteStore(path) as store:
            store.save_instance(instance)
            store.save_connection_index(index)
        with SQLiteStore(path) as store:
            warm = store.load_connection_index(store.load_instance())
        for slab in warm._slabs.values():
            for name, array in slab.arrays().items():
                assert not array.flags.writeable, name
            with pytest.raises((ValueError, RuntimeError)):
                slab.ev_node[:] = 0

    def test_slab_store_adoption_is_readonly_and_bit_identical(self):
        from repro.storage import HeapSlabStore

        rng = random.Random(22)
        instance = random_instance(rng)
        built = ConnectionIndex(instance).ensure_all()
        store = HeapSlabStore()
        assert built.export_slabs(store) == len(built.component_index)
        adopted = ConnectionIndex(instance)
        assert adopted.adopt_slab_store(store, strict=True) == len(
            built.component_index
        )
        for slab in adopted._slabs.values():
            for name, array in slab.arrays().items():
                assert not array.flags.writeable, name
        # Bit-identity: the frozen index answers exactly like the
        # freshly built one and like the fixpoint oracle.
        reference = _fixpoint_engine(instance)
        engine = S3kSearch(
            instance, connection_index=adopted, result_cache_size=0
        )
        for seeker in sorted(instance.users)[:3]:
            a = engine.search(seeker, ["alpha"], k=3)
            b = reference.search(seeker, ["alpha"], k=3)
            assert a.results == b.results
            assert a.iterations == b.iterations
