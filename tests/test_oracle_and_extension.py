"""Tests for the exhaustive oracle and keyword extension edge cases."""

import random

import pytest

from repro.core import (
    ProximityIndex,
    S3Instance,
    S3kScore,
    exact_proximities,
    exact_scores,
    exact_top_k,
    extend_query,
    keyword_extension,
)
from repro.documents import Document, build_document
from repro.rdf import (
    RDF_TYPE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
    URI,
    Literal,
)

from .fixtures import figure1_instance, figure3_instance, two_community_instance
from .instance_gen import VOCABULARY, random_instance


class TestKeywordExtension:
    def test_contains_itself(self):
        instance = figure1_instance()
        assert Literal("nosuchword") in keyword_extension(instance, "nosuchword")

    def test_subclass_in_extension(self):
        instance = figure1_instance()
        extension = keyword_extension(instance, Literal("degre"))
        assert URI("kb:MS") in extension

    def test_transitive_subclass_via_saturation(self):
        instance = S3Instance()
        instance.add_knowledge(
            [
                (URI("kb:PhD"), RDFS_SUBCLASS, URI("kb:Postgrad")),
                (URI("kb:Postgrad"), RDFS_SUBCLASS, Literal("degre")),
            ]
        )
        instance.saturate()
        extension = keyword_extension(instance, Literal("degre"))
        assert URI("kb:PhD") in extension  # two levels, via closure

    def test_instances_of_class_in_extension(self):
        instance = S3Instance()
        instance.add_knowledge(
            [
                (URI("kb:e1"), RDF_TYPE, URI("kb:Uni")),
                (URI("kb:Uni"), RDFS_SUBCLASS, Literal("university")),
            ]
        )
        instance.saturate()
        # saturation derives kb:e1 type "university" (rdfs9), so the
        # entity is in the literal's extension.
        assert URI("kb:e1") in keyword_extension(instance, Literal("university"))

    def test_subproperty_in_extension(self):
        instance = S3Instance()
        instance.add_knowledge(
            [(URI("p:workedWith"), RDFS_SUBPROPERTY, URI("p:knows"))]
        )
        instance.saturate()
        assert URI("p:workedWith") in keyword_extension(instance, URI("p:knows"))

    def test_weighted_schema_triple_ignored(self):
        instance = S3Instance()
        instance.graph.add(URI("kb:Maybe"), RDFS_SUBCLASS, Literal("topic"), 0.5)
        instance.saturate()
        assert URI("kb:Maybe") not in keyword_extension(instance, Literal("topic"))

    def test_extend_query_maps_every_keyword(self):
        instance = figure1_instance()
        extended = extend_query(instance, ["degre", "university"])
        assert set(extended) == {Literal("degre"), Literal("university")}
        assert URI("kb:MS") in extended[Literal("degre")]


class TestExactProximities:
    def test_tolerance_tightens_result(self):
        instance = figure3_instance()
        score = S3kScore(gamma=2.0)
        loose, index = exact_proximities(instance, URI("u0"), score, tolerance=1e-2)
        tight, _ = exact_proximities(
            instance, URI("u0"), score, tolerance=1e-12, prox_index=index
        )
        # Tight run accumulates at least as much mass everywhere.
        assert (tight - loose).min() >= -1e-12

    def test_seeker_self_proximity(self):
        instance = figure3_instance()
        score = S3kScore(gamma=2.0)
        accumulated, index = exact_proximities(instance, URI("u0"), score)
        assert accumulated[index.node_index(URI("u0"))] >= score.c_gamma

    def test_all_proximities_in_unit_interval(self):
        instance = two_community_instance()
        accumulated, index = exact_proximities(instance, URI("u0"), S3kScore())
        for uri in sorted(instance.network_nodes()):
            assert 0.0 <= index.source_proximity(accumulated, uri) <= 1.0 + 1e-9


class TestExactScores:
    def test_zero_score_documents_excluded(self):
        instance = figure1_instance()
        scores = exact_scores(instance, "u1", ["debate"])
        assert all(value > 0 for value in scores.values())
        assert URI("d1") not in scores  # d1 does not contain "debate"

    def test_product_semantics(self):
        # A document matching only one of two keywords scores zero.
        instance = figure1_instance()
        both = exact_scores(instance, "u1", ["debate", "campus"])
        assert URI("d0") in both
        assert URI("d0.3.2") not in both

    def test_semantic_flag(self):
        instance = figure1_instance()
        with_semantics = exact_scores(instance, "u1", ["degre"])
        without = exact_scores(instance, "u1", ["degre"], semantic=False)
        assert URI("d1") in with_semantics
        assert URI("d1") not in without

    def test_closer_seeker_scores_higher(self):
        instance = two_community_instance()
        near = exact_scores(instance, "u0", ["python"])[URI("docA")]
        far = exact_scores(instance, "u5", ["python"])[URI("docA")]
        assert near > far


class TestExactTopK:
    def test_respects_k(self):
        # "degre" matches d2 and, via the extension, d1 and d0 — distinct
        # trees, so at least two neighbor-free answers exist.
        instance = figure1_instance()
        assert len(exact_top_k(instance, "u1", ["degre"], 1)) == 1
        assert len(exact_top_k(instance, "u1", ["degre"], 2)) == 2

    def test_all_candidates_in_one_chain_yield_single_answer(self):
        # "debate" occurs only in d0.3.2: every candidate is a vertical
        # neighbor of the others, so the answer has exactly one element
        # regardless of k (Definition 3.2's exclusion).
        instance = figure1_instance()
        assert len(exact_top_k(instance, "u1", ["debate"], 5)) == 1

    def test_excludes_vertical_neighbors(self):
        instance = figure1_instance()
        picked = exact_top_k(instance, "u1", ["debate"], 5)
        uris = [uri for uri, _ in picked]
        for i, a in enumerate(uris):
            neighborhood = instance.vertical_neighborhood(a)
            assert not any(b in neighborhood for b in uris[i + 1:])

    def test_scores_descending(self):
        instance = figure1_instance()
        picked = exact_top_k(instance, "u1", ["degre"], 5)
        values = [value for _, value in picked]
        assert values == sorted(values, reverse=True)

    def test_deeper_fragment_wins_ties(self):
        # A fragment and its ancestor with identical evidence: the deeper
        # one has the higher score (no η penalty), so it is picked.
        instance = S3Instance()
        instance.add_user("u")
        root = build_document("doc", "doc")
        child = root.add_child(URI("doc.1"), "sec", ["topic"])
        instance.add_document(Document(root), posted_by="u")
        instance.saturate()
        [(winner, _)] = exact_top_k(instance, "u", ["topic"], 1)
        assert winner == URI("doc.1")


class TestNaiveMatrixAgreementRandom:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        rng = random.Random(100 + seed)
        instance = random_instance(rng, n_users=5, n_docs=4)
        matrix_index = ProximityIndex(instance, use_matrix=True)
        naive_index = ProximityIndex(instance, use_matrix=False)
        seeker = sorted(instance.users)[0]
        border_m = matrix_index.start_vector(seeker)
        border_n = naive_index.start_vector(seeker)
        for _ in range(6):
            border_m = matrix_index.step(border_m)
            border_n = naive_index.step(border_n)
            assert border_m == pytest.approx(border_n, abs=1e-12)
            # Substochastic mass: the total never exceeds 1.
            assert border_m.sum() <= 1.0 + 1e-9
