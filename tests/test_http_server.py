"""The HTTP serving tier, built test-first (ISSUE 6).

Contracts under test:

* **wire format** — ``POST /search`` answers the exact
  ``QueryResponse.to_dict()`` record of the JSONL loop, bit-identical
  to the kernel, for single and batch bodies; request ids propagate
  into the ``X-Request-Id`` header, the body, and the server log;
* **error shaping** — malformed bodies 400, unknown endpoints/seekers
  404, wrong method 405, all with the shared structured error record;
* **backpressure** — the bounded admission queue answers 429 with
  ``Retry-After`` on overflow and admits again once capacity frees;
* **deadlines** — an expired per-request deadline answers 504 while
  co-batched neighbors are untouched;
* **graceful drain** — drain stops accepting, answers mid-drain
  requests 503 + ``Connection: close``, flushes in-flight work, and
  terminates; SIGTERM triggers the same path;
* **stale slabs** — a store whose persisted index predates a mutation
  serves 503 from ``/healthz`` and ``/search`` (degraded, not dead),
  and ``stale_slabs="rebuild"`` recovers to 200.

Every scenario synchronizes on the :class:`FaultInjector` kernel gate
and ``wait_for_inflight`` — there is no ``time.sleep`` anywhere.
"""

import asyncio
import logging
import os
import signal

import pytest

from repro import S3kSearch, Tag, URI
from repro.core import ConnectionIndex
from repro.engine import Engine, EngineConfig, FaultInjector, HttpConfig
from repro.engine.http import HttpClientConnection, http_call
from repro.storage import SQLiteStore

from .fixtures import figure1_instance
from .http_harness import running_server, run

QUERY = {"seeker": "u1", "keywords": ["degre"], "k": 3}
OTHER = {"seeker": "u0", "keywords": ["debate"], "k": 2}


def _engine(**overrides):
    defaults = dict(max_batch_size=100, batch_deadline=0.002)
    defaults.update(overrides)
    return Engine(figure1_instance(), config=EngineConfig(**defaults))


class TestRoutingAndWireFormat:
    def test_healthz_and_stats_shapes(self):
        async def go():
            async with running_server(_engine()) as server:
                health = await http_call(server.port, "GET", "/healthz")
                stats = await http_call(server.port, "GET", "/stats")
                return health, stats

        health, stats = run(go())
        assert health.status == 200
        assert health.json()["status"] == "ok"
        payload = stats.json()
        assert payload["server"]["max_inflight"] == 64
        assert payload["server"]["draining"] is False
        assert "batcher" in payload["engine"]

    def test_single_search_is_bit_identical_to_kernel(self):
        engine = _engine()

        async def go():
            async with running_server(engine) as server:
                return await http_call(server.port, "POST", "/search", body=QUERY)

        response = run(go())
        assert response.status == 200
        record = response.json()
        reference = S3kSearch(engine.instance).search("u1", ["degre"], k=3)
        assert record["results"] == [
            {"uri": str(r.uri), "lower": r.lower, "upper": r.upper}
            for r in reference.results
        ]
        assert record["iterations"] == reference.iterations
        assert record["terminated_by"] == reference.terminated_by

    def test_batch_body_answers_in_order_with_per_item_errors(self):
        engine = _engine()

        async def go():
            async with running_server(engine) as server:
                return await http_call(
                    server.port,
                    "POST",
                    "/search",
                    body={
                        "queries": [
                            QUERY,
                            {"seeker": "nobody", "keywords": ["x"]},
                            OTHER,
                        ],
                        "id": "batch-1",
                    },
                )

        response = run(go())
        assert response.status == 200
        payload = response.json()
        assert payload["id"] == "batch-1"
        first, bad, third = payload["results"]
        kernel = S3kSearch(engine.instance)
        expected_first = kernel.search("u1", ["degre"], k=3)
        expected_third = kernel.search("u0", ["debate"], k=2)
        assert [r["uri"] for r in first["results"]] == [
            str(r.uri) for r in expected_first.results
        ]
        assert [r["uri"] for r in third["results"]] == [
            str(r.uri) for r in expected_third.results
        ]
        assert bad["error"]["status"] == 404
        assert bad["error"]["type"] == "not_found"
        assert bad["id"] == "batch-1/1"

    def test_error_statuses_are_structured(self):
        async def go():
            async with running_server(_engine()) as server:
                port = server.port
                return (
                    await http_call(port, "POST", "/search", body="not json"),
                    await http_call(
                        port,
                        "POST",
                        "/search",
                        body={"seeker": "u1", "keywords": ["w"], "bogus": 1},
                    ),
                    await http_call(
                        port,
                        "POST",
                        "/search",
                        body={"seeker": "nobody", "keywords": ["degre"]},
                    ),
                    await http_call(port, "GET", "/no-such-endpoint"),
                    await http_call(port, "GET", "/search"),
                )

        bad_json, bad_field, bad_seeker, bad_path, bad_method = run(go())
        for response, status, kind in (
            (bad_json, 400, "bad_request"),
            (bad_field, 400, "bad_request"),
            (bad_seeker, 404, "not_found"),
            (bad_path, 404, "not_found"),
            (bad_method, 405, "method_not_allowed"),
        ):
            assert response.status == status
            error = response.json()["error"]
            assert error["type"] == kind
            assert error["status"] == status
            assert error["message"]
        assert bad_method.headers["allow"] == "POST"

    def test_keep_alive_connection_serves_sequential_requests(self):
        async def go():
            async with running_server(_engine()) as server:
                connection = await HttpClientConnection.open(server.port)
                try:
                    first = await connection.request("POST", "/search", body=QUERY)
                    second = await connection.request("POST", "/search", body=OTHER)
                finally:
                    await connection.aclose()
                return first, second

        first, second = run(go())
        assert first.status == 200 and second.status == 200
        assert first.headers["connection"] == "keep-alive"

    def test_malformed_request_line_answers_400_and_closes(self):
        async def go():
            async with running_server(_engine()) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"NOT-HTTP\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                writer.close()
                return status_line

        assert b"400" in run(go())

    def test_request_id_propagates_to_header_body_and_log(self, caplog):
        async def go():
            async with running_server(_engine()) as server:
                tagged = await http_call(
                    server.port,
                    "POST",
                    "/search",
                    body=QUERY,
                    headers={"x-request-id": "trace-me"},
                )
                generated = await http_call(server.port, "POST", "/search", body=QUERY)
                return tagged, generated

        with caplog.at_level(logging.INFO, logger="repro.engine.http"):
            tagged, generated = run(go())
        assert tagged.headers["x-request-id"] == "trace-me"
        assert tagged.json()["id"] == "trace-me"
        assert generated.headers["x-request-id"].startswith("req-")
        assert any("id=trace-me" in message for message in caplog.messages)

    def test_request_id_cannot_inject_response_headers(self):
        # A body id carrying CRLF must not split the response: the
        # echoed x-request-id header is sanitized, no forged header
        # reaches the client, and the keep-alive framing stays intact.
        hostile = dict(QUERY, id="x\r\nx-injected: owned")

        async def go():
            async with running_server(_engine()) as server:
                connection = await HttpClientConnection.open(server.port)
                try:
                    first = await connection.request("POST", "/search", body=hostile)
                    # The connection is not desynced: a normal request
                    # on the same socket still parses cleanly.
                    second = await connection.request("POST", "/search", body=QUERY)
                finally:
                    await connection.aclose()
                return first, second

        first, second = run(go())
        assert first.status == 200
        assert "x-injected" not in first.headers
        assert first.headers["x-request-id"] == "xx-injected: owned"
        assert second.status == 200

    def test_non_latin1_request_id_still_gets_a_response(self):
        # "☃" is not latin-1 encodable; the echoed header must be
        # degraded (not raise UnicodeEncodeError and kill the
        # connection), while the JSON body keeps the exact id.
        snowman = dict(QUERY, id="☃")

        async def go():
            async with running_server(_engine()) as server:
                return await http_call(server.port, "POST", "/search", body=snowman)

        response = run(go())
        assert response.status == 200
        assert response.headers["x-request-id"] == "?"
        assert response.json()["id"] == "☃"

    @pytest.mark.parametrize("value", [b"abc", b"-5"])
    def test_bad_content_length_answers_400(self, value):
        async def go():
            async with running_server(_engine()) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    b"POST /search HTTP/1.1\r\nhost: localhost\r\n"
                    b"content-length: " + value + b"\r\n\r\n"
                )
                await writer.drain()
                status_line = await reader.readline()
                writer.close()
                return status_line

        assert b"400" in run(go())


class TestBackpressure:
    def test_forced_queue_full_trips_429_with_retry_after(self):
        faults = FaultInjector()
        faults.force_queue_full = True

        async def go():
            async with running_server(
                _engine(), faults=faults, config=HttpConfig(port=0, retry_after=7)
            ) as server:
                rejected = await http_call(server.port, "POST", "/search", body=QUERY)
                faults.force_queue_full = False
                accepted = await http_call(server.port, "POST", "/search", body=QUERY)
                return rejected, accepted, dict(server.counters)

        rejected, accepted, counters = run(go())
        assert rejected.status == 429
        assert rejected.headers["retry-after"] == "7"
        assert rejected.json()["error"]["type"] == "overloaded"
        assert accepted.status == 200
        assert counters["rejected_429"] == 1

    def test_real_overflow_rejects_then_recovers(self):
        faults = FaultInjector()
        faults.hold_kernel()

        async def go():
            async with running_server(
                _engine(), faults=faults, config=HttpConfig(port=0, max_inflight=1)
            ) as server:
                first = asyncio.create_task(
                    http_call(server.port, "POST", "/search", body=QUERY)
                )
                await server.wait_for_inflight(1)
                rejected = await http_call(server.port, "POST", "/search", body=OTHER)
                faults.release_kernel()
                completed = await first
                retried = await http_call(server.port, "POST", "/search", body=OTHER)
                return rejected, completed, retried

        rejected, completed, retried = run(go())
        assert rejected.status == 429
        assert completed.status == 200
        assert retried.status == 200  # capacity freed: admitted again

    def test_impossible_batch_answers_413_not_429(self):
        # A batch larger than max_inflight can never be admitted, so a
        # 429 + Retry-After would send the client into a futile retry
        # loop; it must get a 413 with a split-the-batch remedy instead.
        async def go():
            async with running_server(
                _engine(), config=HttpConfig(port=0, max_inflight=2)
            ) as server:
                return await http_call(
                    server.port,
                    "POST",
                    "/search",
                    body={"queries": [QUERY, OTHER, QUERY]},
                )

        response = run(go())
        assert response.status == 413  # 3 queries > 2 slots, even when idle
        error = response.json()["error"]
        assert error["type"] == "batch_too_large"
        assert "split" in error["message"]
        assert "retry-after" not in response.headers


class TestDeadlines:
    def test_deadline_expiry_answers_504_and_spares_neighbors(self):
        engine = _engine()
        faults = FaultInjector()
        faults.hold_kernel()

        async def go():
            async with running_server(engine, faults=faults) as server:
                neighbor = asyncio.create_task(
                    http_call(server.port, "POST", "/search", body=OTHER)
                )
                doomed = asyncio.create_task(
                    http_call(
                        server.port,
                        "POST",
                        "/search",
                        body=QUERY,
                        headers={"x-deadline-ms": "60"},
                    )
                )
                await server.wait_for_inflight(2)
                expired = await doomed  # the gate is held: expiry is certain
                faults.release_kernel()
                unaffected = await neighbor
                fresh = await http_call(server.port, "POST", "/search", body=QUERY)
                return expired, unaffected, fresh, dict(server.counters)

        expired, unaffected, fresh, counters = run(go())
        assert expired.status == 504
        assert expired.json()["error"]["type"] == "deadline_exceeded"
        assert counters["deadline_504"] == 1
        assert unaffected.status == 200
        reference = S3kSearch(engine.instance).search("u0", ["debate"], k=2)
        assert [r["uri"] for r in unaffected.json()["results"]] == [
            str(r.uri) for r in reference.results
        ]
        assert fresh.status == 200  # the engine survived the cancellation

    def test_generous_deadline_maps_onto_kernel_time_budget(self):
        async def go():
            async with running_server(_engine()) as server:
                return await http_call(
                    server.port,
                    "POST",
                    "/search",
                    body=QUERY,
                    headers={"x-deadline-ms": "5000"},
                )

        response = run(go())
        assert response.status == 200
        echoed = response.json()
        # The serving deadline minus the micro-batch window became the
        # kernel's anytime budget.
        assert 0 < echoed["time_budget"] < 5.0

    def test_nonpositive_deadline_is_a_400(self):
        async def go():
            async with running_server(_engine()) as server:
                return await http_call(
                    server.port,
                    "POST",
                    "/search",
                    body=QUERY,
                    headers={"x-deadline-ms": "0"},
                )

        response = run(go())
        assert response.status == 400
        assert "deadline" in response.json()["error"]["message"]


class TestGracefulDrain:
    def test_drain_flushes_inflight_rejects_midstream_then_terminates(self):
        engine = _engine()
        faults = FaultInjector()
        faults.hold_kernel()

        async def go():
            async with running_server(engine, faults=faults) as server:
                port = server.port
                # Keep-alive connections opened before the drain begins:
                # one carries the in-flight request, two inject mid-drain.
                busy = await HttpClientConnection.open(port)
                probe = await HttpClientConnection.open(port)
                health = await HttpClientConnection.open(port)
                inflight = asyncio.create_task(
                    busy.request("POST", "/search", body=QUERY)
                )
                await server.wait_for_inflight(1)
                drain = asyncio.create_task(server.drain())
                await server.drain_started.wait()
                # New connections are refused once drain begins.
                with pytest.raises(OSError):
                    await HttpClientConnection.open(port)
                # A request injected mid-drain on a live connection is
                # turned away, not hung.
                turned_away = await probe.request("POST", "/search", body=OTHER)
                liveness = await health.request("GET", "/healthz")
                # The in-flight request still completes: release the
                # kernel and collect its answer.
                faults.release_kernel()
                flushed = await inflight
                await drain
                terminated = server._terminated.is_set()
                for connection in (busy, probe, health):
                    await connection.aclose()
                return turned_away, liveness, flushed, terminated

        turned_away, liveness, flushed, terminated = run(go())
        assert turned_away.status == 503
        assert turned_away.json()["error"]["type"] == "draining"
        assert turned_away.headers["connection"] == "close"
        assert liveness.status == 503
        assert liveness.json()["status"] == "draining"
        assert flushed.status == 200
        assert flushed.headers["connection"] == "close"
        reference = S3kSearch(engine.instance).search("u1", ["degre"], k=3)
        assert [r["uri"] for r in flushed.json()["results"]] == [
            str(r.uri) for r in reference.results
        ]
        assert terminated

    def test_sigterm_triggers_the_drain_path(self):
        async def go():
            server = None
            async with running_server(_engine()) as started:
                server = started
                server.install_signal_handlers()
                before = await http_call(server.port, "POST", "/search", body=QUERY)
                os.kill(os.getpid(), signal.SIGTERM)
                await server.wait_terminated()
                with pytest.raises(OSError):
                    await HttpClientConnection.open(server.port)
                return before

        assert run(go()).status == 200


class TestStaleSlabs:
    @staticmethod
    def _stale_store(tmp_path):
        """A store whose persisted slabs predate an instance mutation."""
        path = tmp_path / "stale.db"
        instance = figure1_instance()
        with SQLiteStore(path) as store:
            store.save_instance(instance)
            store.save_connection_index(ConnectionIndex(instance).ensure_all())
            instance.add_tag(
                Tag(URI("t:late"), URI("d0.5.1"), URI("u2"), keyword="campus")
            )
            instance.saturate()
            store.save_instance(instance)
        return path

    def test_stale_slabs_serve_degraded_503s(self, tmp_path):
        path = self._stale_store(tmp_path)

        async def go():
            async with running_server(store=path) as server:
                return (
                    await http_call(server.port, "GET", "/healthz"),
                    await http_call(server.port, "POST", "/search", body=QUERY),
                    await http_call(server.port, "GET", "/stats"),
                )

        health, search, stats = run(go())
        assert health.status == 503
        assert health.json()["status"] == "stale_index"
        assert "re-run" in health.json()["error"]["message"]
        assert search.status == 503
        assert search.json()["error"]["type"] == "stale_index"
        assert stats.status == 200  # observability stays up while degraded
        assert stats.json()["error"]["type"] == "stale_index"
        assert "engine" not in stats.json()

    def test_rebuild_opt_in_recovers_to_200(self, tmp_path):
        path = self._stale_store(tmp_path)

        async def go():
            async with running_server(store=path, stale_slabs="rebuild") as server:
                health = await http_call(server.port, "GET", "/healthz")
                search = await http_call(
                    server.port,
                    "POST",
                    "/search",
                    body={"seeker": "u1", "keywords": ["campus"], "k": 5},
                )
                return health, search, server.engine

        health, search, engine = run(go())
        assert health.status == 200
        assert search.status == 200
        # The late tag is visible: answers match a fresh kernel over the
        # mutated instance.
        reference = S3kSearch(engine.instance).search("u1", ["campus"], k=5)
        assert [r["uri"] for r in search.json()["results"]] == [
            str(r.uri) for r in reference.results
        ]


class TestStatsCounters:
    def test_server_counters_track_traffic(self):
        async def go():
            async with running_server(_engine()) as server:
                await http_call(server.port, "POST", "/search", body=QUERY)
                await http_call(
                    server.port, "POST", "/search", body={"queries": [QUERY, OTHER]}
                )
                await http_call(server.port, "POST", "/search", body="broken")
                return (await http_call(server.port, "GET", "/stats")).json()

        payload = run(go())
        server_stats = payload["server"]
        assert server_stats["queries_answered"] == 3  # one single + two batched
        assert server_stats["errors"] == 1
        assert server_stats["peak_inflight"] >= 1
        assert payload["engine"]["engine"]["queries_served"] >= 3
