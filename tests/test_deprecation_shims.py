"""The deprecation shims must warn *and* delegate bit-identically.

PR 3 left two public names behind as thin shims over the typed request
layer: ``repro.core.search._coerce_query`` (the old ad-hoc query
coercion, now :meth:`QueryRequest.from_obj`) and
``repro.queries.runner.s3k_runner`` (now :func:`engine_runner`).  A
shim that drifts from its replacement is worse than no shim — these
tests pin both halves of the contract.
"""

import warnings

import pytest

from repro import Engine, QueryRequest, S3kSearch
from repro.core.search import _coerce_query
from repro.queries.runner import engine_runner, s3k_runner
from repro.queries.workload import QuerySpec

from .fixtures import figure1_instance


def _silently(callable_, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return callable_(*args, **kwargs)


class TestCoerceQueryShim:
    def test_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="QueryRequest.from_obj"):
            _coerce_query(("u1", ["degre"], 3), 5)

    def test_delegates_bit_identically_to_from_obj(self):
        shapes = [
            ("u1", ["degre"], 3),
            ("u1", ["degre"]),
            ["u0", ("debate", "degre"), 2],
            {"seeker": "u1", "keywords": ["degre", "degre"], "k": 2},
            {"seeker": "u4", "keywords": ["university"]},
            QuerySpec("u1", ("degre",), 4),
            QueryRequest(seeker="u0", keywords=("debate",), k=1),
        ]
        for shape in shapes:
            seeker, keywords, k = _silently(_coerce_query, shape, 7)
            request = QueryRequest.from_obj(shape, default_k=7)
            assert (seeker, keywords, k) == (
                request.seeker,
                request.keywords,
                request.k,
            ), f"shim diverged from from_obj on {shape!r}"

    def test_shim_rejects_what_from_obj_rejects(self):
        with pytest.raises(TypeError):
            _silently(_coerce_query, {"seeker": "u1"}, 5)
        with pytest.raises(TypeError):
            _silently(_coerce_query, 42, 5)


class TestS3kRunnerShim:
    def test_warns_deprecation(self):
        engine = Engine(figure1_instance())
        with pytest.warns(DeprecationWarning, match="engine_runner"):
            s3k_runner(engine)

    def test_delegates_bit_identically_over_engine(self):
        engine = Engine(figure1_instance())
        deprecated = _silently(s3k_runner, engine, k=3, semantic=True)
        current = engine_runner(engine, k=3, semantic=True)
        for spec in (
            QuerySpec("u1", ("degre",), 3),
            QuerySpec("u0", ("debate",), 2),
            QuerySpec("u4", ("university", "degre"), 1),
        ):
            old = deprecated(spec)
            new = current(spec)
            assert old.results == new.results
            assert old.result.iterations == new.result.iterations
            assert old.result.terminated_by == new.result.terminated_by

    def test_delegates_over_bare_kernel_too(self):
        kernel = S3kSearch(figure1_instance())
        deprecated = _silently(s3k_runner, kernel)
        current = engine_runner(kernel)
        spec = QuerySpec("u1", ("degre",), 3)
        assert deprecated(spec).results == current(spec).results
