"""End-to-end integration tests across generators, engines and measures."""

import pytest

from repro.baselines import TopkSSearcher, uit_from_instance
from repro.core import S3kScore, S3kSearch, exact_scores
from repro.datasets import (
    TwitterConfig,
    VodkasterConfig,
    YelpConfig,
    build_twitter_instance,
    build_vodkaster_instance,
    build_yelp_instance,
)
from repro.eval import compare_engines
from repro.queries import WorkloadBuilder, run_workload, engine_runner, topks_runner
from repro.rdf import URI


@pytest.fixture(scope="module")
def instances():
    return {
        "I1": build_twitter_instance(
            TwitterConfig(n_users=70, n_statuses=200, seed=77)
        ).instance,
        "I2": build_vodkaster_instance(
            VodkasterConfig(n_users=50, n_movies=12, n_comments=90, seed=77)
        ).instance,
        "I3": build_yelp_instance(
            YelpConfig(n_users=60, n_businesses=12, n_reviews=100, seed=77)
        ).instance,
    }


@pytest.mark.parametrize("name", ["I1", "I2", "I3"])
class TestEveryInstanceSearchable:
    def test_workload_terminates_by_threshold(self, instances, name):
        instance = instances[name]
        engine = S3kSearch(instance)
        builder = WorkloadBuilder(instance, seed=8)
        for spec in builder.build("+", 1, 5, 4).queries:
            result = engine.search(spec.seeker, spec.keywords, k=spec.k)
            assert result.terminated_by == "threshold"

    def test_results_agree_with_oracle_scores(self, instances, name):
        instance = instances[name]
        engine = S3kSearch(instance)
        builder = WorkloadBuilder(instance, seed=9)
        spec = builder.build("-", 1, 5, 1).queries[0]
        result = engine.search(spec.seeker, spec.keywords, k=spec.k)
        exact = exact_scores(instance, spec.seeker, spec.keywords)
        for ranked in result.results:
            value = exact.get(ranked.uri, 0.0)
            assert ranked.lower - 1e-9 <= value <= ranked.upper + 1e-9

    def test_topks_runs_on_flattened_instance(self, instances, name):
        instance = instances[name]
        dataset, _ = uit_from_instance(instance)
        searcher = TopkSSearcher(dataset, alpha=0.5)
        builder = WorkloadBuilder(instance, seed=10)
        workload = builder.build("+", 1, 5, 3)
        summary = run_workload(topks_runner(searcher), workload)
        assert len(summary.times) == 3

    def test_comparison_measures_defined(self, instances, name):
        instance = instances[name]
        engine = S3kSearch(instance)
        builder = WorkloadBuilder(instance, seed=11)
        report = compare_engines(engine, [builder.build("+", 1, 5, 3)])
        assert report.queries == 3
        if name == "I2":
            assert report.semantic_reachability == pytest.approx(1.0)


class TestGammaBehaviour:
    def test_larger_gamma_never_explores_more(self, instances):
        # A larger γ damps long paths harder, so the threshold triggers
        # at the same iteration or earlier.
        instance = instances["I1"]
        fast = S3kSearch(instance, score=S3kScore(gamma=4.0))
        slow = S3kSearch(instance, score=S3kScore(gamma=1.25))
        builder = WorkloadBuilder(instance, seed=12)
        total_fast = total_slow = 0
        for spec in builder.build("+", 1, 5, 4).queries:
            total_fast += fast.search(spec.seeker, spec.keywords, k=spec.k).iterations
            total_slow += slow.search(spec.seeker, spec.keywords, k=spec.k).iterations
        assert total_fast <= total_slow

    def test_eta_reorders_fragments(self, instances):
        # Small η strongly penalizes deep evidence, favouring fragments
        # close to the evidence; results must stay inside score bounds.
        instance = instances["I3"]
        sharp = S3kSearch(instance, score=S3kScore(eta=0.1))
        flat = S3kSearch(instance, score=S3kScore(eta=0.9))
        builder = WorkloadBuilder(instance, seed=13)
        spec = builder.build("+", 1, 5, 1).queries[0]
        for engine in (sharp, flat):
            result = engine.search(spec.seeker, spec.keywords, k=5)
            for ranked in result.results:
                assert 0 <= ranked.lower <= ranked.upper


class TestSociallyReachableItems:
    def test_disconnected_tagger_unreachable(self):
        from repro.baselines import UITDataset

        dataset = UITDataset()
        dataset.add_link("a", "b", 0.5)
        dataset.add_triple("b", "i1", "jazz")
        dataset.add_triple("z", "i2", "jazz")  # z disconnected from a
        reachable = dataset.socially_reachable_items("a", ["jazz"])
        assert reachable == {"i1"}
        # The tag-presence variant sees both.
        assert dataset.reachable_items(["jazz"]) == {"i1", "i2"}

    def test_seeker_own_tags_reachable(self):
        from repro.baselines import UITDataset

        dataset = UITDataset()
        dataset.add_triple("a", "i1", "jazz")
        assert dataset.socially_reachable_items("a", ["jazz"]) == {"i1"}


class TestWorkloadCoOccurrence:
    def test_multi_keyword_queries_have_answers(self, instances):
        # Co-occurrence sampling guarantees at least one document matches
        # all query keywords (before semantic extension).
        instance = instances["I1"]
        engine = S3kSearch(instance)
        builder = WorkloadBuilder(instance, seed=14)
        answered = 0
        queries = builder.build("+", 5, 5, 5).queries
        for spec in queries:
            result = engine.search(spec.seeker, spec.keywords, k=spec.k)
            answered += bool(result.results)
        assert answered >= len(queries) - 1  # allow one unlucky draw
