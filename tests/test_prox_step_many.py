"""``ProximityIndex.step_many``: the stacked mat-mat exploration step.

The batched step must equal the per-column sequential :meth:`step` —
bit for bit in matrix mode (scipy's CSR mat-mat accumulates each output
column in the same element order as its mat-vec), and within
``TIE_EPSILON`` in general — including when columns retire mid-flight as
their queries hit the threshold stop at different iterations.
"""

import random

import numpy as np
import pytest

from repro.core import ProximityIndex, S3kSearch
from repro.core.search import TIE_EPSILON

from .fixtures import figure1_instance, figure3_instance
from .instance_gen import random_instance


def _random_borders(index: ProximityIndex, rng: np.random.Generator, n: int):
    """Sparse-ish random border columns over the index's node universe."""
    borders = rng.random((index.size, n))
    borders[rng.random((index.size, n)) < 0.6] = 0.0
    return borders


@pytest.mark.parametrize("use_matrix", [True, False])
class TestStepManyEqualsStep:
    def test_random_borders(self, use_matrix):
        instance = figure1_instance()
        index = ProximityIndex(instance, use_matrix=use_matrix)
        rng = np.random.default_rng(7)
        borders = _random_borders(index, rng, 8)
        stepped = index.step_many(borders)
        assert stepped.shape == borders.shape
        for column in range(borders.shape[1]):
            expected = index.step(borders[:, column])
            assert np.allclose(stepped[:, column], expected, atol=TIE_EPSILON)

    def test_start_vectors(self, use_matrix):
        instance = figure3_instance()
        index = ProximityIndex(instance, use_matrix=use_matrix)
        seekers = [uri for uri in map(str, ("u0", "u1", "u2", "u3"))]
        from repro.rdf import URI

        columns = [index.start_vector(URI(s)) for s in seekers]
        stacked = np.column_stack(columns)
        stepped = index.step_many(stacked)
        for column, border in enumerate(columns):
            expected = index.step(border)
            assert np.allclose(stepped[:, column], expected, atol=TIE_EPSILON)

    def test_iterated_propagation_stays_aligned(self, use_matrix):
        """Several chained steps: mat-mat iterate == mat-vec iterate."""
        instance = figure1_instance()
        index = ProximityIndex(instance, use_matrix=use_matrix)
        rng = np.random.default_rng(13)
        borders = _random_borders(index, rng, 5)
        singles = [borders[:, column].copy() for column in range(5)]
        stacked = borders
        for _ in range(6):
            stacked = index.step_many(stacked)
            singles = [index.step(border) for border in singles]
        for column, single in enumerate(singles):
            assert np.allclose(stacked[:, column], single, atol=TIE_EPSILON)


class TestBitIdentityMatrixMode:
    def test_columns_bitwise_equal_matvec(self):
        """Matrix mode is exactly reproducible column-by-column."""
        instance = figure1_instance()
        index = ProximityIndex(instance, use_matrix=True)
        rng = np.random.default_rng(3)
        borders = _random_borders(index, rng, 16)
        stepped = index.step_many(borders)
        for column in range(16):
            assert np.array_equal(stepped[:, column], index.step(borders[:, column]))


class TestColumnRetirement:
    def test_narrowing_matrix_matches_per_column_step(self):
        """Dropping finished columns mid-flight never perturbs survivors.

        Mimics ``search_many``'s retirement: start with 6 columns, retire
        a couple every iteration, and check the survivors stay bitwise
        equal to independently stepped vectors.
        """
        instance = figure1_instance()
        index = ProximityIndex(instance, use_matrix=True)
        rng = np.random.default_rng(23)
        n_columns = 6
        matrix = _random_borders(index, rng, n_columns)
        vectors = {c: matrix[:, c].copy() for c in range(n_columns)}
        live = list(range(n_columns))
        retirement_order = [[], [4], [1, 5], [], [0, 2]]
        for retire in retirement_order:
            matrix = index.step_many(matrix)
            for original, column in zip(live, range(matrix.shape[1])):
                vectors[original] = index.step(vectors[original])
                assert np.array_equal(matrix[:, column], vectors[original])
            if retire:
                keep = [c for c in range(len(live)) if live[c] not in retire]
                matrix = np.ascontiguousarray(matrix[:, keep])
                live = [live[c] for c in keep]
        assert live  # sanity: some columns survived the schedule

    def test_search_many_retires_at_different_iterations(self):
        """End-to-end: queries stopping at different depths stay exact."""
        rng = random.Random(99)
        instance = random_instance(rng, n_users=8, n_docs=6)
        engine = S3kSearch(instance)
        seekers = sorted(instance.users)
        queries = [(s, ["alpha"], 2) for s in seekers[:4]] + [
            (seekers[0], ["beta", "gamma"], 3),
            (seekers[5], ["delta"], 1),
        ]
        batch = engine.search_many(queries)
        iteration_counts = {r.iterations for r in batch}
        for (seeker, keywords, k), batched in zip(queries, batch):
            single = engine.search(seeker, keywords, k=k)
            assert batched.results == single.results
            assert batched.iterations == single.iterations
        # The schedule exercised the retirement path (not all queries
        # stopped on the same lock-step iteration).
        assert len(iteration_counts) > 1


class TestValidation:
    def test_rejects_wrong_shape(self):
        index = ProximityIndex(figure1_instance())
        with pytest.raises(ValueError):
            index.step_many(np.zeros(index.size))
        with pytest.raises(ValueError):
            index.step_many(np.zeros((index.size + 1, 3)))

    def test_empty_matrix_is_noop(self):
        index = ProximityIndex(figure1_instance())
        empty = np.zeros((index.size, 0))
        result = index.step_many(empty)
        assert result.shape == (index.size, 0)
